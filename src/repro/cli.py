"""Command-line interface: ``python -m repro <command>``.

Subcommands covering the workflows a site operator runs:

``survey``
    The Fig. 6 hardware-variation survey: cluster sizes and bands.
``characterize``
    Characterize one mix (Figs. 4-5 data) and optionally save the JSON
    artefact for later planning.
``budgets``
    Table III for one or all mixes, from a fresh or saved
    characterization.
``grid``
    The full policy x mix x budget evaluation (Figs. 7-8), with CSV
    export.
``facility``
    The Fig. 1 facility-trace statistics.
``report`` / ``figures``
    The one-call reproduction report and the SVG figure set.
``telemetry``
    Exercise every instrumented layer and dump the metrics snapshot and
    event log — the observability smoke test.

``site``
    The arrival-driven site simulation, replayed under independent
    noise seeds for confidence intervals.
``stream``
    The event-driven streaming site engine under sustained Poisson
    load (rolling admission, bounded memory), or — with ``--serve`` —
    the asyncio daemon speaking the ``repro.stream.v1`` protocol;
    ``--daemon-smoke`` drives it with a synthetic client burst (the CI
    smoke).
``faults``
    Replay the named fault scenarios (budget drops, node loss, sensor
    blackouts, stuck caps) against the policies and report QoS loss and
    budget-overshoot watt-seconds; ``--check`` gates on zero planned
    overshoot (the CI resilience smoke).  ``REPRO_SMOKE=1`` shrinks the
    suite for CI.
``bench-compare``
    Diff two ``BENCH_<name>.json`` perf-trajectory bundles with
    per-metric tolerances; exits non-zero on regression (the CI
    perf gate).

Every command accepts ``--scale`` (nodes per job; 100 = paper scale) so
the same invocations work on a laptop and at full size.  ``grid``,
``characterize``, ``site``, and ``faults`` accept ``--telemetry-out
DIR`` to save the run's metrics snapshot, JSONL/CSV event logs, span
tree (``trace.json``), and provenance ledger (``provenance.json``).
``--workers N`` fans the grid cells and site replays over a process
pool, and ``--cache-dir DIR`` persists the characterization cache
between invocations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import __version__
from repro.analysis.render import render_table
from repro.core.registry import POLICY_NAMES
from repro.experiments.grid import ExperimentConfig, ExperimentGrid
from repro.faults.scenarios import SCENARIO_NAMES
from repro.experiments.metrics import savings_grid
from repro.experiments.takeaways import check_takeaways
from repro.workload.mixes import MIX_NAMES

__all__ = ["main", "build_parser"]

_EPILOG = """\
examples:
  repro --scale 5 survey                    quick variation survey
  repro characterize HighPower --save c.json
  repro --scale 10 grid --csv cells.csv --check
  repro --scale 10 --workers 4 grid         fan cells over 4 processes
  repro --cache-dir ~/.cache/repro grid     reuse physics between runs
  repro --scale 4 grid --telemetry-out /tmp/telemetry
  repro --workers 4 site --replays 8        replayed site simulation
  repro telemetry                           observability smoke test
  repro report -o report.md                 full reproduction report
  repro bench-compare base.json cand.json --tolerance 0.2

Scale 100 reproduces the paper (2000-node survey, 900-node mixes).
REPRO_WORKERS in the environment sets the default for --workers.
"""


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (clear error otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid positive int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _writable_dir(text: str) -> str:
    """argparse type: a directory we can create files in."""
    path = Path(text).expanduser()
    try:
        path.mkdir(parents=True, exist_ok=True)
        probe = path / ".repro-write-probe"
        probe.touch()
        probe.unlink()
    except OSError as exc:
        detail = exc.strerror or str(exc)
        raise argparse.ArgumentTypeError(
            f"directory {text!r} is not writable: {detail}"
        ) from None
    return str(path)


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    if args.scale >= 100:
        return ExperimentConfig(nodes_per_job=args.scale,
                                survey_nodes=max(2000, 25 * args.scale))
    return ExperimentConfig.small(nodes_per_job=args.scale)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified power-management stack reproduction "
                    "(Wilson et al., IPDPS-W 2021)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--scale", type=_positive_int, default=10,
                        metavar="NODES",
                        help="nodes per job (100 = paper scale; default 10)")
    parser.add_argument("--workers", type=_positive_int, default=None,
                        metavar="N",
                        help="worker processes for grid cells / site replays "
                             "(default: $REPRO_WORKERS or 1)")
    parser.add_argument("--cache-dir", type=_writable_dir, default=None,
                        metavar="DIR",
                        help="persist the characterization cache here "
                             "(memoizes characterize/simulate physics)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("survey", help="Fig. 6 hardware-variation survey")

    p_char = sub.add_parser("characterize",
                            help="characterize a mix (Figs. 4-5 data)")
    p_char.add_argument("mix", choices=MIX_NAMES)
    p_char.add_argument("--save", metavar="PATH",
                        help="write the characterization JSON here")
    p_char.add_argument("--telemetry-out", metavar="DIR",
                        help="dump the metrics snapshot and event log here")

    p_budget = sub.add_parser("budgets", help="Table III budgets")
    p_budget.add_argument("mix", nargs="?", choices=MIX_NAMES,
                          help="one mix (default: all)")

    p_grid = sub.add_parser("grid", help="full evaluation grid (Figs. 7-8)")
    p_grid.add_argument("--mix", action="append", choices=MIX_NAMES,
                        dest="mixes", help="restrict to a mix (repeatable)")
    p_grid.add_argument("--csv", metavar="PATH",
                        help="export the cell summaries as CSV")
    p_grid.add_argument("--check", action="store_true",
                        help="also run the takeaway checks")
    p_grid.add_argument("--telemetry-out", metavar="DIR",
                        help="dump the metrics snapshot and event log here "
                             "(also runs the runtime-layer probe)")

    sub.add_parser("facility", help="Fig. 1 facility-trace statistics")

    p_fsim = sub.add_parser(
        "facility-sim",
        help="hierarchical facility campaign: budget-broker tree over "
             "sharded multi-cluster site simulations (50k+ nodes)",
    )
    p_fsim.add_argument("--clusters", type=_positive_int, default=16,
                        metavar="N", help="leaf clusters (default 16)")
    p_fsim.add_argument("--nodes-per-cluster", type=_positive_int,
                        default=3200, metavar="N",
                        help="nodes per cluster (default 3200; the "
                             "defaults simulate 51 200 nodes)")
    p_fsim.add_argument("--jobs", type=_positive_int, default=48,
                        metavar="N",
                        help="arriving jobs per cluster (default 48)")
    p_fsim.add_argument("--window", type=float, default=300.0, metavar="S",
                        help="broker rebalance window (default 300 s)")
    p_fsim.add_argument("--horizon", type=float, default=3600.0,
                        metavar="S",
                        help="facility horizon (default 3600 s)")
    p_fsim.add_argument("--broker-policy", default="demand",
                        choices=("uniform", "demand", "priority"),
                        help="apportionment policy at the facility broker")
    p_fsim.add_argument("--policy", default="MixedAdaptive",
                        choices=POLICY_NAMES,
                        help="node-level allocation policy in the leaves")
    p_fsim.add_argument("--budget-fraction", type=float, default=None,
                        metavar="FRAC",
                        help="constant top budget as a fraction of "
                             "aggregate capacity (default: sample the "
                             "Fig. 1 trace for a time-varying budget)")
    p_fsim.add_argument("--no-feeder-dips", action="store_true",
                        dest="no_feeder_dips",
                        help="disable the local feeder-limit fault dips")
    p_fsim.add_argument("--seed", type=int, default=23,
                        help="facility seed (deterministic campaigns)")
    p_fsim.add_argument("--engine", default="sharded",
                        choices=("sharded", "fused"),
                        help="leaf execution: 'sharded' fans clusters over "
                             "workers; 'fused' advances all clusters in "
                             "lockstep through shared stacked engine passes "
                             "(bit-identical results)")
    p_fsim.add_argument("--rows", type=_positive_int, default=8,
                        metavar="N",
                        help="per-cluster table rows to print (default 8)")
    p_fsim.add_argument("--telemetry-out", metavar="DIR",
                        help="dump the metrics snapshot, event log, span "
                             "tree, and provenance ledger here")
    p_fsim.add_argument("--profile", action="store_true",
                        help="cProfile the campaign and write profile.pstats"
                             " + profile.txt (span-attributed hot frames) "
                             "under --telemetry-out (required)")

    p_site = sub.add_parser(
        "site", help="arrival-driven site simulation with noise replays"
    )
    p_site.add_argument("--policy", default="MixedAdaptive",
                        choices=POLICY_NAMES, help="allocation policy")
    p_site.add_argument("--jobs", type=_positive_int, default=6,
                        metavar="N", help="arriving jobs (default 6)")
    p_site.add_argument("--replays", type=_positive_int, default=4,
                        metavar="N",
                        help="independent noise replays (default 4)")
    p_site.add_argument("--telemetry-out", metavar="DIR",
                        help="dump the metrics snapshot, event log, span "
                             "tree, and provenance ledger here")

    p_stream = sub.add_parser(
        "stream",
        help="event-driven streaming site engine (sustained load / daemon)",
    )
    p_stream.add_argument("--policy", default="MixedAdaptive",
                          choices=POLICY_NAMES, help="allocation policy")
    p_stream.add_argument("--rate", type=float, default=1.5, metavar="PER_S",
                          help="Poisson arrival rate in jobs per simulated "
                               "second (default 1.5 ≈ 130k jobs/day)")
    p_stream.add_argument("--duration", type=float, default=600.0,
                          metavar="S",
                          help="simulated stream length (default 600 s)")
    p_stream.add_argument("--seed", type=int, default=0,
                          help="arrival-stream and noise seed")
    p_stream.add_argument("--batched", action="store_true",
                          help="route concurrent in-flight batch physics "
                               "through one vectorised stacked step "
                               "(bit-identical, much faster at high rates)")
    p_stream.add_argument("--admission-interval", type=float, default=None,
                          metavar="S",
                          help="quantise admission to one flush per S "
                               "simulated seconds so concurrent batches "
                               "pile up for the vectorised step")
    p_stream.add_argument("--per-job-batches", action="store_true",
                          help="split each admitted set into one batch "
                               "per job (more, smaller concurrent batches)")
    p_stream.add_argument("--max-pending", type=_positive_int, default=64,
                          metavar="N",
                          help="queue backpressure bound (default 64)")
    p_stream.add_argument("--budget-drop", type=float, default=None,
                          metavar="FRACTION",
                          help="drop the facility budget to this fraction "
                               "halfway through the stream")
    p_stream.add_argument("--serve", action="store_true",
                          help="run the asyncio daemon instead: prints "
                               "host:port, serves repro.stream.v1 clients "
                               "until one sends shutdown")
    p_stream.add_argument("--port", type=int, default=0,
                          help="daemon port (default 0 = OS-assigned)")
    p_stream.add_argument("--daemon-smoke", action="store_true",
                          dest="daemon_smoke",
                          help="start the daemon, drive it with a synthetic "
                               "client burst, and exit non-zero on any "
                               "protocol failure (the CI smoke)")
    p_stream.add_argument("--telemetry-out", metavar="DIR",
                          help="dump the metrics snapshot and event log here")
    p_stream.add_argument("--profile", action="store_true",
                          help="cProfile the stream run and write "
                               "profile.pstats + profile.txt "
                               "(span-attributed hot frames) under "
                               "--telemetry-out (required)")

    p_faults = sub.add_parser(
        "faults",
        help="replay named fault scenarios and score policy resilience",
    )
    p_faults.add_argument("--list", action="store_true", dest="list_only",
                          help="list the scenario names and exit")
    p_faults.add_argument("--scenario", action="append",
                          choices=SCENARIO_NAMES, dest="scenarios",
                          help="restrict to a scenario (repeatable; "
                               "default: the full standard suite)")
    p_faults.add_argument("--policy", action="append", choices=POLICY_NAMES,
                          dest="policies",
                          help="restrict to a policy (repeatable; "
                               "default: all five)")
    p_faults.add_argument("--check", action="store_true",
                          help="exit non-zero unless the compliance checks "
                               "hold (zero planned overshoot on feasible "
                               "scenarios)")
    p_faults.add_argument("--controller-study", action="store_true",
                          dest="controller_study",
                          help="run the scenarios against the authentic "
                               "balancer feedback loop (one batched "
                               "controller run) instead of the site suite")
    p_faults.add_argument("--telemetry-out", metavar="DIR",
                          help="dump the metrics snapshot, event log, span "
                               "tree, and provenance ledger here")

    p_bc = sub.add_parser(
        "bench-compare",
        help="diff two BENCH_<name>.json perf bundles (CI perf gate)",
    )
    p_bc.add_argument("baseline", metavar="BASELINE",
                      help="baseline BENCH_<name>.json path")
    p_bc.add_argument("candidate", metavar="CANDIDATE",
                      help="candidate BENCH_<name>.json path")
    p_bc.add_argument("--tolerance", type=float, default=0.10,
                      metavar="REL",
                      help="default relative tolerance (default 0.10)")
    p_bc.add_argument("--metric-tolerance", action="append",
                      dest="metric_tolerances", metavar="NAME=REL",
                      help="per-metric tolerance override (repeatable)")

    p_tel = sub.add_parser(
        "telemetry",
        help="exercise every instrumented layer and dump the telemetry",
    )
    p_tel.add_argument("-o", "--out", metavar="DIR",
                       help="write metrics.txt / events.jsonl / events.csv here")

    p_report = sub.add_parser(
        "report", help="full reproduction report (all tables + checks)"
    )
    p_report.add_argument("-o", "--output", metavar="PATH",
                          help="write Markdown here (default: stdout)")

    p_figs = sub.add_parser("figures", help="render the figures as SVG files")
    p_figs.add_argument("-o", "--output", metavar="DIR", default="figures",
                        help="output directory (default: ./figures)")
    return parser


def _run_runtime_probe(grid: ExperimentGrid, nodes: int = 4,
                       max_epochs: int = 100) -> None:
    """Exercise the authentic runtime feedback loop for telemetry.

    The evaluation grid characterizes analytically, so a plain ``grid``
    run never touches the per-job controller; this probe runs one real
    :class:`~repro.runtime.controller.Controller` convergence under the
    power balancer (with a tracer attached) so the runtime layer —
    controller timers, balancer convergence metrics, trace events — is
    represented in the dumped telemetry.
    """
    from repro.runtime.controller import Controller
    from repro.runtime.power_balancer import PowerBalancerAgent
    from repro.runtime.trace import attach_tracer
    from repro.workload.job import Job
    from repro.workload.kernel import KernelConfig

    job = Job(
        name="telemetry-probe",
        config=KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2),
        node_count=nodes,
    )
    agent = PowerBalancerAgent(
        job_budget_w=nodes * grid.model.power_model.tdp_w
    )
    controller = Controller(job, np.ones(nodes), agent, model=grid.model)
    writer = attach_tracer(controller)
    controller.run(max_epochs=max_epochs)
    writer.close()


def _dump_telemetry(out_dir: str, kind: str = "run", config: object = None,
                    inputs: Optional[dict] = None,
                    seed: Optional[int] = None) -> None:
    """Write the full observability bundle under ``out_dir``.

    ``metrics.txt`` + ``events.jsonl`` / ``events.csv`` (the classic
    dump), plus ``trace.json`` (the hierarchical span tree) and
    ``provenance.json`` (the schema'd run ledger).
    """
    from repro.telemetry import (
        TelemetrySummary, capture_ledger, get_bus, get_tracer, write_ledger,
    )

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    summary = TelemetrySummary.capture()
    metrics_path = out / "metrics.txt"
    metrics_path.write_text(summary.render() + "\n", encoding="utf-8")
    jsonl_path = get_bus().to_jsonl(out / "events.jsonl")
    csv_path = get_bus().to_csv(out / "events.csv")
    trace_path = get_tracer().to_json(out / "trace.json")
    ledger_path = write_ledger(
        capture_ledger(kind, config, inputs=inputs, seed=seed),
        out / "provenance.json",
    )
    print(f"\nWrote telemetry to {metrics_path}, {jsonl_path}, {csv_path}, "
          f"{trace_path}, {ledger_path}")


def _maybe_profile(profile: bool):
    """``profile_command()`` when profiling, else a null context."""
    if not profile:
        from contextlib import nullcontext

        return nullcontext(None)
    from repro.telemetry import profile_command

    return profile_command()


def _maybe_write_profile(out_dir: str, profiler) -> None:
    """Write the profile artifacts when a profiler was active."""
    if profiler is None:
        return
    from repro.telemetry import get_tracer, write_profile

    pstats_path, txt_path = write_profile(
        out_dir, profiler, get_tracer().finished()
    )
    print(f"Wrote profile to {pstats_path}, {txt_path}")


def _cmd_telemetry(grid: ExperimentGrid, out: Optional[str]) -> int:
    """The observability smoke test: touch every layer, dump everything."""
    from repro.core.registry import create_policy
    from repro.manager.admission import PowerAwareAdmission
    from repro.manager.queue import JobRequest
    from repro.manager.site_simulation import Arrival, run_site_simulation
    from repro.telemetry import TelemetrySummary
    from repro.workload.kernel import KernelConfig

    # Runtime layer: a real controller/balancer convergence run.
    _run_runtime_probe(grid)

    # Experiments + manager + sim layers: one grid cell.
    grid.run_cell(grid.config.mixes[0], "ideal", "MixedAdaptive")

    # Manager layer: admission + a short arrival-driven site shift.
    nodes = max(4, grid.config.nodes_per_job)
    cluster = grid.partition.subset(np.arange(3 * nodes))
    requests = [
        JobRequest(f"probe-job-{i}",
                   KernelConfig(intensity=float(2 ** (i + 1)),
                                waiting_fraction=0.25 * (i % 2), imbalance=1 + i % 2),
                   node_count=nodes, iterations=10)
        for i in range(3)
    ]
    PowerAwareAdmission(model=grid.model).decide(
        _submitted_queue(requests), budget_w=nodes * 3 * 240.0,
        nodes_available=len(cluster), mark=False,
    )
    run_site_simulation(
        [Arrival(time_s=float(i), request=r) for i, r in enumerate(requests)],
        cluster,
        create_policy("MixedAdaptive"),
        budget_w=nodes * 3 * 200.0,
    )

    print(TelemetrySummary.capture().render())
    if out:
        _dump_telemetry(out, kind="telemetry", config=grid.config)
    return 0


def _submitted_queue(requests):
    """A fresh queue with the given requests submitted."""
    from repro.manager.queue import JobQueue

    queue = JobQueue()
    for request in requests:
        queue.submit(request)
    return queue


def _cmd_survey(grid: ExperimentGrid) -> int:
    survey = grid.survey
    rows = []
    for name in ("low", "medium", "high"):
        freqs = survey.frequencies_ghz[survey.cluster_node_ids(name)]
        rows.append([name, freqs.size, f"{freqs.mean():.2f}",
                     f"{freqs.min():.2f}-{freqs.max():.2f}"])
    print(render_table(["cluster", "nodes", "mean GHz", "range GHz"], rows,
                       title=f"Variation survey ({grid.config.survey_nodes} "
                             f"nodes @ {grid.config.survey_cap_w:.0f} W caps)"))
    return 0


def _cmd_characterize(grid: ExperimentGrid, mix: str, save: Optional[str],
                      telemetry_out: Optional[str] = None) -> int:
    prepared = grid.prepare_mix(mix)
    char = prepared.characterization
    rows = []
    for j in range(char.job_count):
        block = char.job_slice(j)
        rows.append([
            prepared.scheduled.mix.jobs[j].name.split("-", 2)[-1],
            f"{float(np.mean(char.monitor_power_w[block])):.0f}",
            f"{float(np.mean(char.needed_power_w[block])):.0f}",
            f"{float(np.mean(char.waste_w()[block])):.0f}",
        ])
    print(render_table(
        ["job", "observed W/node", "needed W/node", "waste W/node"], rows,
        title=f"Characterization of {mix} ({char.host_count} hosts)",
    ))
    if save:
        from repro.io.serialize import save_characterization

        path = save_characterization(char, save)
        print(f"\nSaved characterization to {path}")
    if telemetry_out:
        _dump_telemetry(telemetry_out, kind="characterize", config=grid.config,
                        inputs={"mix": mix})
    return 0


def _cmd_budgets(grid: ExperimentGrid, mix: Optional[str]) -> int:
    from repro.experiments.tables import table3_budgets

    rows = [
        [r["mix"], r["min_kw"], r["ideal_kw"], r["max_kw"], r["total_tdp_kw"]]
        for r in table3_budgets(grid)
        if mix is None or r["mix"] == mix
    ]
    print(render_table(["mix", "min kW", "ideal kW", "max kW", "TDP kW"], rows,
                       title="Power budgets (Table III)"))
    return 0


def _cmd_grid(grid: ExperimentGrid, mixes: Optional[List[str]],
              csv: Optional[str], check: bool,
              telemetry_out: Optional[str] = None,
              workers: Optional[int] = None) -> int:
    if telemetry_out:
        # Cover the runtime layer too: the grid itself characterizes
        # analytically and never runs the per-job controller.
        _run_runtime_probe(grid)
    results = grid.run_all(mixes=mixes, workers=workers)
    savings = savings_grid(results)
    rows = []
    for (mix, level, policy) in sorted(savings):
        s = savings[(mix, level, policy)]
        rows.append([
            mix, level, policy,
            f"{100 * s.time_savings.mean:+.1f}%",
            f"{100 * s.energy_savings.mean:+.1f}%",
        ])
    print(render_table(
        ["mix", "budget", "policy", "time savings", "energy savings"], rows,
        title="Savings vs StaticCaps (Fig. 8)",
    ))
    if csv:
        from repro.io.serialize import save_grid_results

        path = save_grid_results(results, csv)
        print(f"\nWrote cell summaries to {path}")
    if check:
        if mixes is not None and set(mixes) != set(MIX_NAMES):
            print("\n(takeaway checks need the full mix set; skipping)")
        else:
            report = check_takeaways(results)
            print()
            for name, ok in report.checks.items():
                print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
            if not report.all_hold():
                return 1
    if telemetry_out:
        _dump_telemetry(telemetry_out, kind="grid", config=grid.config,
                        inputs={"mixes": list(mixes or MIX_NAMES),
                                "workers": workers})
    return 0


def _cmd_site(grid: ExperimentGrid, policy: str, jobs: int, replays: int,
              workers: Optional[int],
              telemetry_out: Optional[str] = None) -> int:
    """Replay one arrival stream under independent noise seeds."""
    from repro.manager.queue import JobRequest
    from repro.manager.site_simulation import Arrival
    from repro.parallel.tasks import site_replays
    from repro.workload.kernel import KernelConfig

    nodes = max(2, grid.config.nodes_per_job)
    cluster = grid.partition.subset(np.arange(3 * nodes))
    arrivals = [
        Arrival(
            time_s=float(i),
            request=JobRequest(
                f"site-job-{i}",
                KernelConfig(
                    intensity=float(2 ** (1 + i % 4)),
                    waiting_fraction=0.25 * (i % 3),
                    imbalance=1 + i % 3,
                ),
                node_count=nodes,
                iterations=grid.config.iterations,
            ),
        )
        for i in range(jobs)
    ]
    budget_w = 3 * nodes * 0.85 * grid.model.power_model.tdp_w
    results = site_replays(
        arrivals, cluster, policy, budget_w,
        replays=replays, workers=workers,
    )
    results = [r for r in results if r is not None]
    rows = [
        [i, len(r.batches), f"{r.makespan_s:.1f}",
         f"{r.mean_turnaround_s():.1f}", f"{r.peak_power_w() / 1000:.2f}"]
        for i, r in enumerate(results)
    ]
    print(render_table(
        ["replay", "batches", "makespan s", "turnaround s", "peak kW"], rows,
        title=f"Site simulation: {policy}, {jobs} jobs, "
              f"{budget_w / 1000:.1f} kW budget",
    ))
    makespans = np.array([r.makespan_s for r in results])
    turnarounds = np.array([r.mean_turnaround_s() for r in results])
    print(f"\nmakespan   {makespans.mean():.1f} +/- {makespans.std():.1f} s")
    print(f"turnaround {turnarounds.mean():.1f} +/- {turnarounds.std():.1f} s")
    if telemetry_out:
        _dump_telemetry(telemetry_out, kind="site", config=grid.config,
                        inputs={"policy": policy, "jobs": jobs,
                                "replays": replays,
                                "budget_w": float(budget_w),
                                "workers": workers})
    return 0


def _build_stream_engine(grid: ExperimentGrid, policy: str,
                         max_pending: int, seed: int,
                         batched: bool = False,
                         admission_interval_s: Optional[float] = None,
                         per_job_batches: bool = False):
    """A rolling engine sized like the ``site`` command's cluster."""
    from repro.core.registry import create_policy
    from repro.stream import SiteStreamEngine

    nodes = max(2, grid.config.nodes_per_job)
    cluster = grid.partition.subset(np.arange(4 * nodes))
    budget_w = 4 * nodes * 0.85 * grid.model.power_model.tdp_w
    engine = SiteStreamEngine(
        cluster, create_policy(policy), budget_w,
        rolling=True, max_pending=max_pending,
        record_jobs=False, record_batches=False,
        run_seed=seed,
        batched_physics=batched,
        admission_interval_s=admission_interval_s,
        per_job_batches=per_job_batches,
    )
    return engine, nodes, budget_w


def _cmd_stream(grid: ExperimentGrid, args: argparse.Namespace) -> int:
    """Sustained-load run, daemon service, or daemon smoke test."""
    if args.admission_interval is not None and args.admission_interval <= 0:
        print("error: --admission-interval must be positive",
              file=sys.stderr)
        return 2
    if args.profile:
        if not args.telemetry_out:
            print("error: --profile requires --telemetry-out",
                  file=sys.stderr)
            return 2
        if args.serve or args.daemon_smoke:
            print("error: --profile applies to batch runs, not --serve / "
                  "--daemon-smoke", file=sys.stderr)
            return 2
    engine, nodes, budget_w = _build_stream_engine(
        grid, args.policy, args.max_pending, args.seed,
        batched=args.batched,
        admission_interval_s=args.admission_interval,
        per_job_batches=args.per_job_batches,
    )
    if args.serve or args.daemon_smoke:
        import asyncio

        from repro.stream.daemon import StreamDaemon

        async def _serve() -> int:
            daemon = StreamDaemon(engine, port=args.port)
            host, port = await daemon.start()
            print(f"stream daemon listening on {host}:{port} "
                  f"({args.policy}, {budget_w / 1000:.1f} kW)")
            if args.daemon_smoke:
                try:
                    await _drive_daemon_smoke(host, port, nodes)
                finally:
                    await daemon.stop()
                return 0
            await daemon.serve_until_shutdown()
            return 0

        try:
            code = asyncio.run(_serve())
        except AssertionError as exc:
            print(f"daemon smoke FAILED: {exc}", file=sys.stderr)
            return 1
        if args.daemon_smoke:
            print("daemon smoke OK")
        return code

    from repro.stream import poisson_stream, synthetic_job_factory

    engine.tick_interval_s = max(args.duration / 10.0, 1.0)
    factory = synthetic_job_factory(
        node_count=nodes,
        iterations=grid.config.iterations,
        power_hint_w=0.8 * grid.model.power_model.tdp_w,
    )
    engine.attach_source(
        poisson_stream(args.rate, args.duration, factory, seed=args.seed)
    )
    if args.budget_drop is not None:
        if not 0.0 < args.budget_drop <= 1.0:
            print("error: --budget-drop must be in (0, 1]", file=sys.stderr)
            return 2
        engine.set_budget(args.budget_drop * budget_w,
                          time_s=args.duration / 2.0)
    with _maybe_profile(args.profile) as profiler:
        stats = engine.run()
    rows = [[k, f"{v:.3f}" if isinstance(v, float) else str(v)]
            for k, v in stats.snapshot().items()]
    print(render_table(
        ["statistic", "value"], rows,
        title=f"Streaming site engine: {args.policy}, "
              f"{args.rate:g} jobs/s x {args.duration:g} s, "
              f"{budget_w / 1000:.1f} kW",
    ))
    per_day = stats.arrivals * 86400.0 / max(stats.clock_s, 1e-9)
    print(f"\nsustained arrival rate ≈ {per_day:,.0f} jobs/day "
          f"(peak tracked jobs {stats.peak_tracked_jobs})")
    if args.telemetry_out:
        _dump_telemetry(args.telemetry_out, kind="stream",
                        config=grid.config,
                        inputs={"policy": args.policy,
                                "rate_per_s": args.rate,
                                "duration_s": args.duration,
                                "max_pending": args.max_pending,
                                "budget_w": float(budget_w)},
                        seed=args.seed)
        _maybe_write_profile(args.telemetry_out, profiler)
    return 0


async def _drive_daemon_smoke(host: str, port: int, nodes: int) -> None:
    """A synthetic client burst against a live daemon (CI smoke).

    Subscribes, submits a burst, and checks every reply frame validates
    against the wire schema; raises ``AssertionError`` on any failure.
    """
    import asyncio

    from repro.stream import messages as msg
    from repro.stream import synthetic_job_factory

    reader, writer = await asyncio.open_connection(host, port)
    events: List[dict] = []

    async def rpc(message: dict) -> dict:
        writer.write(msg.encode_message(message))
        await writer.drain()
        while True:
            frame = msg.decode_message(await reader.readline())
            problems = msg.validate_downstream(frame)
            assert not problems, f"invalid downstream frame: {problems}"
            if frame["type"] == "event":
                events.append(frame)
                continue
            return frame

    reply = await rpc(msg.subscribe_message(kinds=["batch_complete"]))
    assert reply["type"] == "ack", reply
    factory = synthetic_job_factory(node_count=nodes, prefix="smoke")
    for i in range(24):
        reply = await rpc(msg.submit_message(factory(i)))
        assert reply["type"] == "ack", reply
    reply = await rpc(msg.stats_message())
    assert reply["type"] == "stats", reply
    stats = reply["stats"]
    assert stats["arrivals"] == 24, stats
    assert stats["jobs_completed"] == 24, stats
    assert events, "no batch_complete events reached the subscriber"
    reply = await rpc(msg.set_budget_message(1000.0))
    assert reply["type"] == "ack", reply
    reply = await rpc({"schema": msg.STREAM_SCHEMA, "op": "nonsense"})
    assert reply["type"] == "error", reply
    print(f"  {stats['arrivals']} submitted, {stats['jobs_completed']} "
          f"completed in {stats['batches']} batches, "
          f"{len(events)} pub/sub frames")
    writer.close()
    await writer.wait_closed()


def _cmd_faults(scenarios: Optional[List[str]], policies: Optional[List[str]],
                check: bool, list_only: bool,
                controller_study: bool = False,
                telemetry_out: Optional[str] = None) -> int:
    """Replay named fault scenarios and score policy resilience."""
    from repro.experiments.resilience import run_resilience_suite
    from repro.faults.scenarios import STANDARD_SCENARIOS

    if list_only:
        rows = [[s.name, s.description] for s in STANDARD_SCENARIOS.values()]
        print(render_table(["scenario", "description"], rows,
                           title="Standard fault scenarios"))
        return 0
    if controller_study:
        from repro.experiments.resilience import controller_fault_study

        smoke = os.environ.get("REPRO_SMOKE") == "1"
        study = controller_fault_study(
            scenarios=scenarios,
            nodes=3 if smoke else 4,
            max_epochs=60 if smoke else 150,
        )
        print(study.render())
        if telemetry_out:
            ran = [o.scenario for o in study.outcomes]
            _dump_telemetry(telemetry_out, kind="faults",
                            inputs={"scenarios": ran,
                                    "controller_study": True})
        return 0
    if os.environ.get("REPRO_SMOKE") == "1":
        sizing = dict(jobs=4, nodes_per_job=3, iterations=8)
    else:
        sizing = dict(jobs=6, nodes_per_job=4, iterations=12)
    report = run_resilience_suite(
        scenarios=scenarios, policies=policies, **sizing
    )
    print(report.render())
    losses = report.qos_loss_by_policy()
    print("\nmean QoS loss over feasible scenarios:")
    for name, loss in losses.items():
        print(f"  {name:<16} {loss:+.1f}%")
    code = 0
    if check:
        print()
        checks = report.check()
        for name, ok in checks.items():
            print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        code = 0 if report.all_hold() else 1
    if telemetry_out:
        # Record what actually ran: unset filters mean the full suite,
        # not an empty one.
        ran_scenarios = list(dict.fromkeys(o.scenario
                                           for o in report.outcomes))
        ran_policies = list(dict.fromkeys(o.policy
                                          for o in report.outcomes))
        _dump_telemetry(telemetry_out, kind="faults",
                        inputs={"scenarios": ran_scenarios,
                                "policies": ran_policies,
                                **sizing})
    return code


def _cmd_bench_compare(baseline: str, candidate: str, tolerance: float,
                       metric_tolerances: Optional[List[str]]) -> int:
    """Diff two perf-trajectory bundles; non-zero exit on regression."""
    from repro.io.bench_artifacts import compare_artifacts, load_artifact

    per_metric = {}
    for spec in metric_tolerances or []:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            print(f"error: --metric-tolerance needs NAME=REL, got {spec!r}",
                  file=sys.stderr)
            return 2
        try:
            per_metric[name] = float(value)
        except ValueError:
            print(f"error: bad tolerance in {spec!r}", file=sys.stderr)
            return 2
    try:
        report = compare_artifacts(
            load_artifact(baseline), load_artifact(candidate),
            tolerance=tolerance, tolerances=per_metric,
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format_text())
    return 0 if report.ok else 1


def _cmd_facility() -> int:
    from repro.workload.facility import generate_facility_trace

    stats = generate_facility_trace().statistics()
    rows = [[k, f"{v:.3f}"] for k, v in stats.items()]
    print(render_table(["statistic", "value"], rows,
                       title="Facility trace statistics (Fig. 1)"))
    return 0


def _cmd_facility_sim(args: argparse.Namespace) -> int:
    """The hierarchical facility campaign (ROADMAP item 2)."""
    import time

    from repro.experiments.facility_scale import (
        FacilityCampaignConfig, campaign_rows, run_facility_campaign,
    )

    if args.profile and not args.telemetry_out:
        print("error: --profile requires --telemetry-out", file=sys.stderr)
        return 2
    config = FacilityCampaignConfig(
        clusters=args.clusters,
        nodes_per_cluster=args.nodes_per_cluster,
        jobs_per_cluster=args.jobs,
        window_s=args.window,
        horizon_s=args.horizon,
        broker_policy=args.broker_policy,
        policy=args.policy,
        budget_fraction=args.budget_fraction,
        feeder_dips=not args.no_feeder_dips,
        seed=args.seed,
    )
    start = time.perf_counter()
    with _maybe_profile(args.profile) as profiler:
        result = run_facility_campaign(config, workers=args.workers,
                                       engine=args.engine)
    wall_s = time.perf_counter() - start

    summary = result.summary()
    budget_src = "constant" if args.budget_fraction is not None \
        else "Fig. 1 trace"
    print(render_table(
        ["statistic", "value"],
        [[k, f"{v:,.1f}"] for k, v in summary.items()]
        + [["wall_s", f"{wall_s:.2f}"],
           ["clusters_per_s", f"{len(result.clusters) / wall_s:,.1f}"]],
        title=f"Facility campaign ({result.broker_policy} broker, "
              f"{budget_src} budget, {result.engine} engine)",
    ))
    rows = campaign_rows(result)[:args.rows]
    print(render_table(
        ["cluster", "nodes", "alloc span (W)", "done", "turnaround (s)",
         "rebal", "char hit%"],
        [[str(r["cluster"]), f"{r['nodes']:,.0f}",
          f"{r['min_allocation_w']:,.0f}-{r['max_allocation_w']:,.0f}",
          f"{r['jobs_completed']:.0f}", f"{r['mean_turnaround_s']:.2f}",
          f"{r['rebalances']:.0f}", f"{100.0 * r['char_hit_ratio']:.0f}"]
         for r in rows],
        title=f"First {len(rows)} clusters",
    ))
    if args.telemetry_out:
        _dump_telemetry(
            args.telemetry_out, kind="facility-sim", config=config,
            inputs={"clusters": len(result.clusters),
                    "nodes": result.total_nodes,
                    "broker_policy": result.broker_policy,
                    "engine": result.engine,
                    "epochs": len(result.epoch_s)},
            seed=config.seed,
        )
        _maybe_write_profile(args.telemetry_out, profiler)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.cache_dir:
        from repro.parallel import activate_cache

        activate_cache(cache_dir=args.cache_dir)
    if args.command == "facility":
        return _cmd_facility()
    if args.command == "facility-sim":
        return _cmd_facility_sim(args)
    if args.command == "bench-compare":
        return _cmd_bench_compare(args.baseline, args.candidate,
                                  args.tolerance, args.metric_tolerances)
    if args.command == "faults":
        return _cmd_faults(args.scenarios, args.policies, args.check,
                           args.list_only, args.controller_study,
                           args.telemetry_out)
    grid = ExperimentGrid(_make_config(args))
    if args.command == "survey":
        return _cmd_survey(grid)
    if args.command == "characterize":
        return _cmd_characterize(grid, args.mix, args.save, args.telemetry_out)
    if args.command == "budgets":
        return _cmd_budgets(grid, args.mix)
    if args.command == "grid":
        return _cmd_grid(grid, args.mixes, args.csv, args.check,
                         args.telemetry_out, workers=args.workers)
    if args.command == "site":
        return _cmd_site(grid, args.policy, args.jobs, args.replays,
                         args.workers, args.telemetry_out)
    if args.command == "stream":
        return _cmd_stream(grid, args)
    if args.command == "telemetry":
        return _cmd_telemetry(grid, args.out)
    if args.command == "report":
        from repro.experiments.report import build_report, write_report

        if args.output:
            path = write_report(grid, args.output)
            print(f"Wrote report to {path}")
        else:
            print(build_report(grid))
        return 0
    if args.command == "figures":
        from repro.experiments.svg_figures import render_all_figures

        written = render_all_figures(grid, args.output)
        for name in sorted(written):
            print(f"{name}: {written[name]}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
