"""Facility-scale hierarchical power simulation.

A facility → cluster → rack → node budget-broker tree over the existing
site-simulation physics: :mod:`repro.hierarchy.broker` is the pure
apportionment layer (pluggable uniform / demand-weighted / priority
policies), :mod:`repro.hierarchy.facility` plans the tree open loop and
runs the leaf clusters — sharded across
:class:`~repro.parallel.runner.ParallelRunner` workers, or fused
through cross-cluster stacked engine passes
(:mod:`repro.hierarchy.fused`) — under a strict determinism contract:
both engines and every worker count are bit-identical.
"""

from repro.hierarchy.broker import (
    BROKER_POLICIES,
    BudgetBroker,
    ChildSignal,
    apportion,
)
from repro.hierarchy.facility import (
    ClusterOutcome,
    ClusterSpec,
    FacilityConfig,
    FacilitySimulationResult,
    build_cluster,
    cluster_arrivals,
    facility_budget_series,
    run_facility_simulation,
)
from repro.hierarchy.fused import run_fused_facility_leaves

__all__ = [
    "BROKER_POLICIES",
    "BudgetBroker",
    "ChildSignal",
    "apportion",
    "ClusterOutcome",
    "ClusterSpec",
    "FacilityConfig",
    "FacilitySimulationResult",
    "build_cluster",
    "cluster_arrivals",
    "facility_budget_series",
    "run_facility_simulation",
    "run_fused_facility_leaves",
]
