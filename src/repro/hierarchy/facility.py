"""Facility-scale hierarchical power simulation (sharded multi-cluster).

The paper stops at one 918-node cluster under one static budget; its
own Fig. 1 motivates the real problem — a facility whose procured power
is chronically stranded and whose budget varies in time.  This module
scales the reproduction to that facility: a **budget-broker tree**

    facility ──▶ cluster ──▶ rack ──▶ node

where the facility broker samples a time-varying budget from the Fig. 1
synthetic trace (:func:`~repro.workload.facility.generate_facility_trace`,
rescaled to facility watts), apportions it to clusters each *epoch*
(``window_s``) under a pluggable policy, each cluster broker subdivides
its allocation across racks, and the node level is realised by the
existing site-simulation physics (the allocation policies already cap
per node).  Leaf clusters run the unmodified
:func:`~repro.manager.site_simulation.run_site_simulation`; their
time-varying allocations are delivered as ``BUDGET_CHANGE`` events on a
composed :class:`~repro.faults.schedule.FaultSchedule`.

Determinism contract
--------------------
The whole plan — epoch budgets, demand signals, allocations, leaf
schedules, per-cluster seeds — is computed *open loop* from the config
before any physics runs.  Cluster simulations are pure, independent
tasks fanned out over :class:`~repro.parallel.runner.ParallelRunner`
(results return in payload order), with per-cluster seeds derived via
``SeedSequence`` from ``(config.seed, "facility-cluster", name)``.
Therefore: **same config + seed ⇒ bit-identical
:class:`FacilitySimulationResult`, regardless of worker count.**  A
degenerate one-cluster facility under a constant budget composes an
empty schedule and is bit-identical to the plain site simulation (both
pinned by ``tests/property/test_hierarchy_properties.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.hardware.cluster import QUARTZ_CPU, QUARTZ_VARIATION, Cluster
from repro.hardware.node import NodePowerModel
from repro.hierarchy.broker import BudgetBroker, ChildSignal
from repro.manager.site_simulation import Arrival, SiteSimulationResult
from repro.parallel.runner import ParallelRunner
from repro.parallel.seeding import child_seed
from repro.stream.arrivals import synthetic_job_factory
from repro.telemetry import get_registry, enabled, span
from repro.units import ensure_positive
from repro.workload.facility import FacilityTraceConfig, generate_facility_trace

__all__ = [
    "ClusterOutcome",
    "ClusterSpec",
    "FacilityConfig",
    "FacilitySimulationResult",
    "build_cluster",
    "cluster_arrivals",
    "facility_budget_series",
    "run_facility_simulation",
]


@dataclass(frozen=True)
class ClusterSpec:
    """One leaf cluster of the facility tree.

    The workload is synthesised deterministically from the spec (the
    streaming job shapes, staggered arrivals), so a spec fully
    determines its cluster's simulation given the facility seed.
    """

    name: str
    node_count: int
    racks: int = 4
    nodes_per_job: int = 4
    jobs: int = 12
    iterations: int = 12
    spacing_s: float = 1.0
    power_hint_w: Optional[float] = 180.0
    uniform: bool = True
    weight: float = 1.0
    priority: int = 0
    floor_fraction: float = 0.05
    fault_schedule: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a cluster needs a name")
        ensure_positive(self.node_count, "node_count")
        ensure_positive(self.racks, "racks")
        ensure_positive(self.nodes_per_job, "nodes_per_job")
        ensure_positive(self.jobs, "jobs")
        ensure_positive(self.spacing_s, "spacing_s")
        ensure_positive(self.weight, "weight")
        if self.racks > self.node_count:
            raise ValueError("racks cannot exceed node_count")
        if not 0.0 < self.floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in (0, 1]")

    def rack_node_counts(self) -> Tuple[int, ...]:
        """Nodes per rack (as even as integer division allows)."""
        base, extra = divmod(self.node_count, self.racks)
        return tuple(base + (1 if r < extra else 0)
                     for r in range(self.racks))


@dataclass(frozen=True)
class FacilityConfig:
    """The whole facility: clusters, brokers, and the budget source.

    Exactly one budget source applies: ``budget_w`` (a constant top
    budget) or ``trace`` (the Fig. 1 synthetic trace, rescaled so the
    trace's utilisation fraction of its rating maps onto this
    facility's aggregate TDP capacity).  When neither is given the
    default trace config is used.
    """

    clusters: Tuple[ClusterSpec, ...]
    name: str = "facility"
    policy: str = "MixedAdaptive"
    broker_policy: str = "demand"
    window_s: float = 300.0
    horizon_s: float = 3600.0
    budget_w: Optional[float] = None
    trace: Optional[FacilityTraceConfig] = None
    noise_std: float = 0.004
    max_batches: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("a facility needs at least one cluster")
        names = [spec.name for spec in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        ensure_positive(self.window_s, "window_s")
        ensure_positive(self.horizon_s, "horizon_s")
        if self.budget_w is not None:
            ensure_positive(self.budget_w, "budget_w")
            if self.trace is not None:
                raise ValueError("give budget_w or trace, not both")

    @property
    def total_nodes(self) -> int:
        """Nodes across every cluster."""
        return sum(spec.node_count for spec in self.clusters)

    def epoch_times_s(self) -> Tuple[float, ...]:
        """Rebalance instants: one per ``window_s`` over the horizon."""
        epochs = max(1, int(math.ceil(self.horizon_s / self.window_s)))
        return tuple(e * self.window_s for e in range(epochs))


@dataclass(frozen=True)
class ClusterOutcome:
    """One cluster's slice of the facility result."""

    name: str
    node_count: int
    seed: int
    #: Facility-broker allocation per epoch.
    allocations_w: Tuple[float, ...]
    #: Rack-broker subdivision per epoch (one tuple per epoch).
    rack_allocations_w: Tuple[Tuple[float, ...], ...]
    result: SiteSimulationResult
    #: Characterization-sharing statistics for this cluster's shift —
    #: planner-memo hits/misses under the fused engine, shape-keyed
    #: store hits/misses under the sharded one.  Excluded from equality:
    #: the determinism contract covers the physics, and the two engines
    #: share characterizations through different mechanisms.
    char_cache_hits: int = field(default=0, compare=False)
    char_cache_misses: int = field(default=0, compare=False)

    @property
    def char_cache_hit_ratio(self) -> float:
        """Fraction of characterizations served from a shared cache."""
        total = self.char_cache_hits + self.char_cache_misses
        return self.char_cache_hits / total if total else 0.0

    @property
    def rebalances(self) -> int:
        """Epoch boundaries where this cluster's allocation moved."""
        return sum(
            1 for prev, cur in zip(self.allocations_w,
                                   self.allocations_w[1:])
            if cur != prev
        )


@dataclass(frozen=True)
class FacilitySimulationResult:
    """Everything the facility campaign produced (bit-comparable)."""

    name: str
    broker_policy: str
    window_s: float
    epoch_s: Tuple[float, ...]
    #: Top-level budget in force at each epoch.
    budgets_w: Tuple[float, ...]
    clusters: Tuple[ClusterOutcome, ...]
    #: Which leaf engine produced the physics (``sharded``/``fused``).
    #: Metadata, not physics: excluded from equality so the determinism
    #: contract ``fused_result == sharded_result`` holds by ``==``.
    engine: str = field(default="sharded", compare=False)
    #: Facility-broker rebalance count over the horizon.
    rebalances: int = field(default=0, compare=False)

    @property
    def total_nodes(self) -> int:
        """Nodes simulated across the facility."""
        return sum(c.node_count for c in self.clusters)

    @property
    def total_energy_j(self) -> float:
        """Energy across every cluster's shift."""
        return float(sum(c.result.total_energy_j for c in self.clusters))

    def completed_jobs(self) -> int:
        """Jobs completed facility-wide."""
        return sum(len(c.result.completed) for c in self.clusters)

    def mean_turnaround_s(self) -> float:
        """Mean turnaround over every completed job in the facility."""
        turnarounds = [
            t for c in self.clusters
            for t in c.result.job_turnaround_s.values()
        ]
        if not turnarounds:
            return 0.0
        return float(sum(turnarounds) / len(turnarounds))

    def allocated_w(self, epoch: int) -> float:
        """Watts the facility broker handed out at ``epoch``."""
        return float(sum(c.allocations_w[epoch] for c in self.clusters))

    def stranded_w(self) -> float:
        """Mean facility watts procured but never allocated (Fig. 1's
        stranded-power quantity, one level up)."""
        per_epoch = [
            budget - self.allocated_w(e)
            for e, budget in enumerate(self.budgets_w)
        ]
        return float(sum(per_epoch) / len(per_epoch))

    def char_cache_hit_ratio(self) -> float:
        """Facility-wide fraction of characterizations served shared."""
        hits = sum(c.char_cache_hits for c in self.clusters)
        misses = sum(c.char_cache_misses for c in self.clusters)
        total = hits + misses
        return hits / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """The campaign dashboard row."""
        return {
            "clusters": float(len(self.clusters)),
            "nodes": float(self.total_nodes),
            "epochs": float(len(self.epoch_s)),
            "mean_budget_w": float(sum(self.budgets_w) / len(self.budgets_w)),
            "stranded_w": self.stranded_w(),
            "jobs_completed": float(self.completed_jobs()),
            "total_energy_j": self.total_energy_j,
            "mean_turnaround_s": self.mean_turnaround_s(),
            "broker_rebalances": float(self.rebalances),
            "char_cache_hit_ratio": self.char_cache_hit_ratio(),
        }


# ----------------------------------------------------------------------
# deterministic leaf construction
# ----------------------------------------------------------------------
def build_cluster(spec: ClusterSpec, facility_seed: int) -> Cluster:
    """The hardware for one leaf, seeded from the facility identity."""
    return Cluster(
        node_count=spec.node_count,
        variation=None if spec.uniform else QUARTZ_VARIATION,
        seed=child_seed(facility_seed, "facility-hw", spec.name),
    )


def cluster_arrivals(spec: ClusterSpec) -> List[Arrival]:
    """The deterministic arrival stream one cluster replays.

    Staggered submissions of the streaming job shapes; every call
    builds fresh :class:`JobRequest` objects (requests are stateful), so
    a spec can be simulated any number of times.
    """
    factory = synthetic_job_factory(
        node_count=spec.nodes_per_job,
        iterations=spec.iterations,
        power_hint_w=spec.power_hint_w,
        prefix=spec.name,
    )
    return [
        Arrival(time_s=i * spec.spacing_s, request=factory(i))
        for i in range(spec.jobs)
    ]


def _power_model() -> NodePowerModel:
    """The shared node power model (all specs use the Quartz SKU)."""
    return NodePowerModel(QUARTZ_CPU, 2)


def facility_budget_series(
    config: FacilityConfig, capacity_w: float,
) -> Tuple[float, ...]:
    """The top-level budget at each epoch.

    Constant when ``budget_w`` is set; otherwise the synthetic facility
    trace sampled at each epoch instant and rescaled from its MW rating
    onto this facility's aggregate capacity (utilisation-preserving).
    """
    epochs = config.epoch_times_s()
    if config.budget_w is not None:
        return tuple(float(config.budget_w) for _ in epochs)
    trace_config = config.trace if config.trace is not None \
        else FacilityTraceConfig()
    trace = generate_facility_trace(trace_config)
    sample_s = 86_400.0 / trace_config.samples_per_day
    n = len(trace.power_mw)
    scale = capacity_w / trace_config.rating_mw
    return tuple(
        float(trace.power_mw[int(t / sample_s) % n]) * scale
        for t in epochs
    )


def _demand_series(
    spec: ClusterSpec, arrivals: Sequence[Arrival],
    epochs: Sequence[float], window_s: float, model: NodePowerModel,
) -> List[float]:
    """Per-epoch demand signal: the admission-style power estimate of
    the jobs arriving inside each window (hint-scaled, floored at the
    RAPL minimum — the same estimate the admission controller uses)."""
    estimates = []
    for arrival in arrivals:
        request = arrival.request
        floor_w = request.node_count * model.min_cap_w
        if request.power_hint_w is not None:
            estimate = max(request.power_hint_w * request.node_count,
                           floor_w)
        else:
            estimate = request.node_count * model.tdp_w
        estimates.append((arrival.time_s, estimate))
    series = []
    for t in epochs:
        series.append(float(sum(
            e for (at, e) in estimates if t <= at < t + window_s
        )))
    return series


def _cluster_cap_series(
    spec: ClusterSpec, capacity_w: float, epochs: Sequence[float],
) -> List[Optional[float]]:
    """Per-epoch allocation cap from the cluster's own fault schedule.

    A ``BUDGET_CHANGE`` event in a cluster's schedule is a *local*
    feeder limit: it caps what the facility broker may allocate (the
    freed watts rebalance to siblings) rather than being replayed
    inside the leaf simulation, which would double-apply it.
    """
    schedule = spec.fault_schedule
    if schedule is None or not schedule.of_kind(FaultKind.BUDGET_CHANGE):
        return [None] * len(epochs)
    return [min(schedule.budget_at(t, capacity_w), capacity_w)
            for t in epochs]


def _leaf_schedule(
    spec: ClusterSpec, epochs: Sequence[float],
    allocations: Sequence[float], facility_name: str,
) -> Optional[FaultSchedule]:
    """The fault schedule one leaf simulation replays: the cluster's own
    non-budget faults plus step ``BUDGET_CHANGE`` events wherever its
    allocation moves.  ``None`` (the guaranteed-no-op path) when there
    is nothing to inject."""
    events: List[FaultEvent] = []
    if spec.fault_schedule is not None:
        events.extend(
            e for e in spec.fault_schedule.events
            if e.kind is not FaultKind.BUDGET_CHANGE
        )
    for e in range(1, len(allocations)):
        if allocations[e] != allocations[e - 1]:
            events.append(FaultEvent(
                time_s=epochs[e], kind=FaultKind.BUDGET_CHANGE,
                budget_w=float(allocations[e]),
            ))
    if not events:
        return None
    return FaultSchedule(events=tuple(events),
                         name=f"{facility_name}:{spec.name}")


# ----------------------------------------------------------------------
# the sharded leaf task (module-level: must pickle into pool workers)
# ----------------------------------------------------------------------
def _cluster_task(payload) -> Tuple[SiteSimulationResult, Tuple[int, int]]:
    """Simulate one leaf; returns the result plus this task's delta of
    shape-keyed characterization-store hits/misses (``(0, 0)`` when no
    store is active in the executing process)."""
    from repro.core.registry import create_policy
    from repro.manager.site_simulation import run_site_simulation
    from repro.parallel.char_store import active_char_store

    (spec, facility_seed, policy_name, base_budget_w, schedule,
     noise_std, max_batches, run_seed) = payload
    store = active_char_store()
    hits0 = store.hits if store is not None else 0
    misses0 = store.misses if store is not None else 0
    result = run_site_simulation(
        cluster_arrivals(spec),
        build_cluster(spec, facility_seed),
        create_policy(policy_name),
        base_budget_w,
        noise_std=noise_std,
        max_batches=max_batches,
        run_seed=run_seed,
        fault_schedule=schedule,
    )
    if store is None:
        return result, (0, 0)
    return result, (store.hits - hits0, store.misses - misses0)


# ----------------------------------------------------------------------
# the campaign driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FacilityPlan:
    """The open-loop budget plan (internal; computed before physics)."""

    epochs: Tuple[float, ...]
    budgets_w: Tuple[float, ...]
    #: allocations[cluster][epoch]
    allocations_w: Tuple[Tuple[float, ...], ...]
    rack_allocations_w: Tuple[Tuple[Tuple[float, ...], ...], ...]
    rebalances: int = field(default=0, compare=False)


def _plan_facility(config: FacilityConfig) -> _FacilityPlan:
    """Apportion every epoch's budget down the tree, open loop."""
    model = _power_model()
    epochs = config.epoch_times_s()
    capacities = [spec.node_count * model.tdp_w for spec in config.clusters]
    budgets = facility_budget_series(config, float(sum(capacities)))

    demands = [
        _demand_series(spec, cluster_arrivals(spec), epochs,
                       config.window_s, model)
        for spec in config.clusters
    ]
    caps = [
        _cluster_cap_series(spec, capacity, epochs)
        for spec, capacity in zip(config.clusters, capacities)
    ]

    facility_broker = BudgetBroker(config.name, "facility",
                                   config.broker_policy)
    rack_brokers = [
        BudgetBroker(f"{spec.name}/racks", "rack", "uniform")
        for spec in config.clusters
    ]
    rack_signals = [
        [
            ChildSignal(name=f"{spec.name}/rack{r}",
                        capacity_w=nodes * model.tdp_w)
            for r, nodes in enumerate(spec.rack_node_counts())
        ]
        for spec in config.clusters
    ]

    per_epoch: List[Tuple[float, ...]] = []
    rack_per_epoch: List[List[Tuple[float, ...]]] = [
        [] for _ in config.clusters
    ]
    rebalances = 0
    previous: Optional[Tuple[float, ...]] = None
    for e, t in enumerate(epochs):
        signals = [
            ChildSignal(
                name=spec.name,
                capacity_w=capacities[i],
                floor_w=spec.floor_fraction * capacities[i],
                demand_w=demands[i][e],
                weight=spec.weight,
                priority=spec.priority,
                cap_w=caps[i][e],
            )
            for i, spec in enumerate(config.clusters)
        ]
        allocations = facility_broker.apportion(budgets[e], signals)
        if previous is not None and allocations != previous:
            rebalances += 1
            facility_broker.rebalanced(e, budgets[e], signals, allocations)
        previous = allocations
        per_epoch.append(allocations)
        for i in range(len(config.clusters)):
            rack_per_epoch[i].append(
                rack_brokers[i].apportion(allocations[i], rack_signals[i])
            )

    by_cluster = tuple(
        tuple(per_epoch[e][i] for e in range(len(epochs)))
        for i in range(len(config.clusters))
    )
    return _FacilityPlan(
        epochs=epochs,
        budgets_w=tuple(budgets),
        allocations_w=by_cluster,
        rack_allocations_w=tuple(
            tuple(rack_per_epoch[i]) for i in range(len(config.clusters))
        ),
        rebalances=rebalances,
    )


def _run_sharded_leaves(
    config: FacilityConfig,
    payloads: Sequence[tuple],
    workers: Optional[int],
) -> List[Tuple[SiteSimulationResult, Tuple[int, int]]]:
    """Fan the leaf tasks over a pool, sharing characterizations.

    If no shape-keyed characterization store is active, one is
    activated for the duration of the fan-out: memory-only when the run
    stays in-process, disk-backed (a temporary directory) when a pool
    is used so workers share each other's entries read-through.  A
    store the caller already activated is left in place (and its
    directory reused).
    """
    import tempfile

    from repro.parallel.char_store import (
        activate_char_store,
        active_char_store,
        deactivate_char_store,
    )

    runner = ParallelRunner(workers)
    existing = active_char_store()
    temp_dir = None
    try:
        if existing is None:
            cache_dir = None
            if runner.parallel and len(payloads) > 1:
                temp_dir = tempfile.TemporaryDirectory(
                    prefix="repro-char-store-"
                )
                cache_dir = temp_dir.name
            activate_char_store(cache_dir=cache_dir)
        return runner.map(_cluster_task, payloads)
    finally:
        if existing is None:
            deactivate_char_store()
        if temp_dir is not None:
            temp_dir.cleanup()


def run_facility_simulation(
    config: FacilityConfig,
    workers: Optional[int] = None,
    engine: str = "sharded",
) -> FacilitySimulationResult:
    """Run the whole facility: plan the budget tree, run the leaves.

    ``engine`` selects how leaf physics executes:

    * ``"sharded"`` — one pure task per cluster fanned over
      :class:`ParallelRunner` (``workers`` follows its semantics;
      ``None`` reads ``$REPRO_WORKERS``), with a shape-keyed
      characterization store shared across workers.
    * ``"fused"`` — all clusters advance in lockstep in-process and
      co-resident batches run through shared stacked engine passes
      (:mod:`repro.hierarchy.fused`); ``workers`` is ignored.

    The result is bit-identical across engines and worker counts — the
    plan is open loop, leaf tasks are pure, and the fused engine shares
    the scalar shift loop's statements.
    """
    if engine not in ("sharded", "fused"):
        raise ValueError(
            f"engine must be 'sharded' or 'fused', got {engine!r}"
        )
    with span("hierarchy.facility.run", facility=config.name,
              clusters=len(config.clusters), nodes=config.total_nodes,
              broker_policy=config.broker_policy, engine=engine,
              epochs=len(config.epoch_times_s())) as run_sp:
        with span("hierarchy.facility.plan"):
            plan = _plan_facility(config)
        seeds = [
            child_seed(config.seed, "facility-cluster", spec.name)
            for spec in config.clusters
        ]
        schedules = [
            _leaf_schedule(spec, plan.epochs, plan.allocations_w[i],
                           config.name)
            for i, spec in enumerate(config.clusters)
        ]
        base_budgets = [
            float(plan.allocations_w[i][0])
            for i in range(len(config.clusters))
        ]
        if engine == "fused":
            from repro.hierarchy.fused import run_fused_facility_leaves

            results, char_stats = run_fused_facility_leaves(
                config, base_budgets, schedules, seeds
            )
        else:
            payloads = [
                (
                    spec, config.seed, config.policy, base_budgets[i],
                    schedules[i], config.noise_std, config.max_batches,
                    seeds[i],
                )
                for i, spec in enumerate(config.clusters)
            ]
            with span("hierarchy.facility.shards",
                      shards=len(payloads)):
                shard_results = _run_sharded_leaves(
                    config, payloads, workers
                )
            results = [result for result, _ in shard_results]
            char_stats = [stats for _, stats in shard_results]
        outcomes = tuple(
            ClusterOutcome(
                name=spec.name,
                node_count=spec.node_count,
                seed=seeds[i],
                allocations_w=plan.allocations_w[i],
                rack_allocations_w=plan.rack_allocations_w[i],
                result=results[i],
                char_cache_hits=int(char_stats[i][0]),
                char_cache_misses=int(char_stats[i][1]),
            )
            for i, spec in enumerate(config.clusters)
        )
        facility = FacilitySimulationResult(
            name=config.name,
            broker_policy=config.broker_policy,
            window_s=config.window_s,
            epoch_s=plan.epochs,
            budgets_w=plan.budgets_w,
            clusters=outcomes,
            engine=engine,
            rebalances=plan.rebalances,
        )
        if enabled():
            registry = get_registry()
            registry.gauge("hierarchy.facility.nodes").set(
                float(facility.total_nodes))
            registry.counter("hierarchy.facility.runs").inc()
            registry.counter("hierarchy.broker.facility.rebalances_total") \
                .inc(plan.rebalances or 0)
        if run_sp is not None:
            run_sp.set_attribute("rebalances", plan.rebalances)
            run_sp.set_attribute("jobs_completed",
                                 facility.completed_jobs())
            run_sp.set_attribute("stranded_w", facility.stranded_w())
    return facility
