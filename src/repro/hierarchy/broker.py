"""Budget brokers — the apportionment layer of the facility tree.

A broker receives a time-varying power allocation from its parent and
splits it among its children.  The split is a *pure function* of the
budget and the children's signals (capacity, floor, demand, weight,
priority, fault cap), which is what makes the whole hierarchy trivially
shardable: every level can be planned open-loop before any leaf physics
runs, so cluster simulations never need to rendezvous mid-flight and
the result is bit-identical regardless of worker count.

Three policies ship (registered in :data:`BROKER_POLICIES`):

``uniform``
    Equal shares above the floors, waterfilled against each child's
    ceiling so watts a small child cannot take spill to its siblings.
``demand``
    Shares proportional to ``weight x max(demand, floor)`` — the
    demand-weighted split Bartolini et al.'s facility architecture
    applies between islands.
``priority``
    Strict priority order (ties broken by child index): each child is
    filled to ``min(ceiling, max(demand, floor))`` before the next sees
    a watt; leftover budget is then granted by headroom in the same
    order.

All policies share the same guard rails: every child's allocation is
clamped to its *ceiling* — ``min(capacity, fault cap)``, so a
fault-schedule budget event on a child caps it and the freed watts
rebalance to its siblings — and floors are granted first (scaled
proportionally when the budget cannot cover them all).  A broker never
allocates more than its own budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry import emit, enabled, get_registry

__all__ = [
    "BROKER_POLICIES",
    "BudgetBroker",
    "ChildSignal",
    "apportion",
]

#: Below this many watts a residual is considered fully granted; purely
#: a loop-termination guard, never added to any allocation.
_EPS_W = 1e-9


@dataclass(frozen=True)
class ChildSignal:
    """What a broker knows about one child when it splits a budget.

    Attributes
    ----------
    name:
        Child identity (cluster or rack name); used for telemetry only.
    capacity_w:
        The child's hardware ceiling (sum of node TDPs).
    floor_w:
        Watts the child should receive before any discretionary split
        (it cannot run anything useful below this).
    demand_w:
        The child's current demand signal — estimated draw of the work
        it wants to start.  Only the demand-aware policies read it.
    weight:
        Multiplier for the demand-weighted split (procurement share).
    priority:
        Higher wins under the ``priority`` policy.
    cap_w:
        Absolute allocation cap from the child's own fault schedule
        (a local feeder limit); ``None`` means no cap beyond capacity.
    """

    name: str
    capacity_w: float
    floor_w: float = 0.0
    demand_w: float = 0.0
    weight: float = 1.0
    priority: int = 0
    cap_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ValueError("capacity_w must be positive")
        if self.floor_w < 0:
            raise ValueError("floor_w must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.cap_w is not None and self.cap_w <= 0:
            raise ValueError("cap_w must be positive when set")

    @property
    def ceiling_w(self) -> float:
        """The hard allocation limit: capacity clamped by the fault cap."""
        if self.cap_w is None:
            return self.capacity_w
        return min(self.capacity_w, self.cap_w)


def _waterfill(amount_w: float, weights: Sequence[float],
               headroom_w: Sequence[float]) -> List[float]:
    """Split ``amount_w`` proportionally to ``weights``, respecting
    per-child headroom; watts a saturated child cannot take spill to the
    rest.  At least one child saturates per round, so the loop runs at
    most ``len(weights)`` times."""
    n = len(weights)
    grants = [0.0] * n
    active = [i for i in range(n)
              if headroom_w[i] > _EPS_W and weights[i] > 0.0]
    remaining = float(amount_w)
    for _ in range(n + 1):
        if remaining <= _EPS_W or not active:
            break
        total_weight = sum(weights[i] for i in active)
        granted = 0.0
        unsaturated: List[int] = []
        for i in active:
            share = remaining * weights[i] / total_weight
            room = headroom_w[i] - grants[i]
            if share < room:
                grants[i] += share
                granted += share
                unsaturated.append(i)
            else:
                granted += room
                grants[i] = headroom_w[i]
        remaining -= granted
        if len(unsaturated) == len(active):
            break  # nobody saturated: everything was granted this round
        active = unsaturated
    return grants


def _floors_first(
    budget_w: float, children: Sequence[ChildSignal],
) -> Tuple[Optional[List[float]], List[float], List[float], float]:
    """Grant floors (scaled when the budget cannot cover them) and
    return ``(final_or_None, base, ceilings, spare)``."""
    ceilings = [c.ceiling_w for c in children]
    floors = [min(c.floor_w, ceiling)
              for c, ceiling in zip(children, ceilings)]
    total_floor = sum(floors)
    if total_floor >= budget_w:
        if total_floor <= 0.0:
            return [0.0] * len(children), floors, ceilings, 0.0
        scale = budget_w / total_floor
        return [f * scale for f in floors], floors, ceilings, 0.0
    return None, floors, ceilings, budget_w - total_floor


def _policy_uniform(budget_w: float,
                    children: Sequence[ChildSignal]) -> List[float]:
    final, floors, ceilings, spare = _floors_first(budget_w, children)
    if final is not None:
        return final
    headroom = [c - f for c, f in zip(ceilings, floors)]
    extra = _waterfill(spare, [1.0] * len(children), headroom)
    return [f + e for f, e in zip(floors, extra)]


def _policy_demand(budget_w: float,
                   children: Sequence[ChildSignal]) -> List[float]:
    final, floors, ceilings, spare = _floors_first(budget_w, children)
    if final is not None:
        return final
    weights = [
        c.weight * max(c.demand_w, f, _EPS_W)
        for c, f in zip(children, floors)
    ]
    headroom = [c - f for c, f in zip(ceilings, floors)]
    extra = _waterfill(spare, weights, headroom)
    return [f + e for f, e in zip(floors, extra)]


def _policy_priority(budget_w: float,
                     children: Sequence[ChildSignal]) -> List[float]:
    final, floors, ceilings, spare = _floors_first(budget_w, children)
    if final is not None:
        return final
    order = sorted(range(len(children)),
                   key=lambda i: (-children[i].priority, i))
    allocs = list(floors)
    remaining = spare
    # Pass 1: demand-driven fills, highest priority first.
    for i in order:
        if remaining <= _EPS_W:
            break
        want = min(ceilings[i],
                   max(children[i].demand_w, floors[i])) - allocs[i]
        give = min(max(want, 0.0), remaining)
        allocs[i] += give
        remaining -= give
    # Pass 2: leftover budget by headroom, same order.
    for i in order:
        if remaining <= _EPS_W:
            break
        give = min(ceilings[i] - allocs[i], remaining)
        allocs[i] += give
        remaining -= give
    return allocs


#: Pluggable apportionment policies, by name.
BROKER_POLICIES: Dict[
    str, Callable[[float, Sequence[ChildSignal]], List[float]]
] = {
    "uniform": _policy_uniform,
    "demand": _policy_demand,
    "priority": _policy_priority,
}


def apportion(policy: str, budget_w: float,
              children: Sequence[ChildSignal]) -> Tuple[float, ...]:
    """Split ``budget_w`` among ``children`` under the named policy.

    Pure and deterministic: identical inputs yield bit-identical
    allocations.  A single child receives exactly
    ``min(budget_w, ceiling_w)`` — no float round-trip — which is what
    pins the degenerate one-cluster facility bit-identical to a plain
    :func:`~repro.manager.site_simulation.run_site_simulation`.
    """
    if policy not in BROKER_POLICIES:
        raise ValueError(
            f"unknown broker policy {policy!r}; "
            f"choose from {sorted(BROKER_POLICIES)}"
        )
    if budget_w <= 0:
        raise ValueError("budget_w must be positive")
    if not children:
        raise ValueError("a broker needs at least one child")
    if len(children) == 1:
        return (min(float(budget_w), children[0].ceiling_w),)
    return tuple(BROKER_POLICIES[policy](float(budget_w), children))


@dataclass(frozen=True)
class BudgetBroker:
    """One node of the budget tree: a named, levelled apportioner.

    ``level`` is purely descriptive ("facility", "cluster", "rack") and
    flows into telemetry so operators can see where watts moved.
    """

    name: str
    level: str
    policy: str = "uniform"

    def __post_init__(self) -> None:
        if self.policy not in BROKER_POLICIES:
            raise ValueError(
                f"unknown broker policy {self.policy!r}; "
                f"choose from {sorted(BROKER_POLICIES)}"
            )

    def apportion(self, budget_w: float,
                  children: Sequence[ChildSignal]) -> Tuple[float, ...]:
        """Split ``budget_w``; counts the apportionment in telemetry."""
        allocations = apportion(self.policy, budget_w, children)
        if enabled():
            get_registry().counter(
                f"hierarchy.broker.{self.level}.apportionments"
            ).inc()
        return allocations

    def rebalanced(self, epoch: int, budget_w: float,
                   children: Sequence[ChildSignal],
                   allocations: Sequence[float]) -> None:
        """Record that this broker's split changed at ``epoch``."""
        if not enabled():
            return
        get_registry().counter(
            f"hierarchy.broker.{self.level}.rebalances"
        ).inc()
        emit(
            "hierarchy.broker", "rebalance",
            broker=self.name, level=self.level, policy=self.policy,
            epoch=epoch, budget_w=float(budget_w),
            allocations={c.name: float(a)
                         for c, a in zip(children, allocations)},
        )
