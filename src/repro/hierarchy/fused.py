"""Fused cross-cluster facility engine: batched physics facility-wide.

The sharded facility engine fans leaf clusters over a process pool —
the right call on true multi-core hardware, but on a single core the
pool is pure serialization tax, and even with real cores each worker
still runs its cluster's physics one batch at a time.  The campaign
workload is extremely fusable, though: every cluster streams the same
synthetic job classes on the same node power model, so at any instant
the facility's co-resident batches are mostly *the same physics* —
identical job block structure and iteration counts, differing only in
caps, efficiencies, seeds, and budgets, which is precisely the per-row
axis of :func:`~repro.sim.batch.simulate_layout_batch`.

This engine advances **all clusters in lockstep inside one process**
and routes each round's co-resident batches — across clusters —
through shared stacked passes:

* Each cluster's shift loop runs as a
  :func:`~repro.manager.site_simulation.shift_rounds` generator in
  staged mode: the loop *yields* each planned batch instead of
  executing it inline, and receives the executed result back via
  ``send()``.  Control flow, RNG draws, seeds, and per-cluster
  accumulation order are the scalar loop's own statements — the staged
  and scalar modes share one function body.
* One shared :class:`~repro.manager.site_simulation.BatchPlanner`
  serves every cluster, so each job class is characterized once
  *facility-wide* — the in-process analogue of the sharded mode's
  :class:`~repro.parallel.char_store.SharedCharStore` — and all
  same-shape batches share one primed layout object, which keeps the
  stacked-layout cache hitting by identity across clusters.
* Each lockstep round collects the pending batches (in cluster order)
  and hands them to
  :func:`~repro.manager.site_simulation.execute_planned_batches`,
  which groups by ``(group_key, job boundaries, iterations)`` and runs
  one ``(S, hosts)`` engine pass per group.  The standard symmetric
  campaign's typical round is **one stacked pass for the whole
  facility**.

Determinism contract
--------------------
Fused ≡ sharded ≡ ``workers=1``, bit-identical (pinned by the
fused-identity property suite).  Per-cluster RNG streams are untouched
— seeds are derived and consumed inside each cluster's own generator —
and grouped-pass rows are element-identical to serial ``simulate_mix``
calls (the staged-pipeline contract).  Clusters whose fault schedules
carry engine-applicable events (host failures, sensor dropouts) never
stage: their generator runs the scalar per-batch path internally and
returns on its first advance.  Budget-only schedules — the shape every
facility leaf schedule takes (allocation steps only) — stage fully:
their engine call is the plain fault-free physics, and the degradation
ladder plus compliance accounting run in stages 1 and 3 with the
scalar float-operation order.

When does sharded still win?  On genuinely multi-core hosts with
*heterogeneous* clusters (little cross-cluster structure sharing) or
engine-fault-heavy schedules (nothing stages), N workers do N
clusters' scalar physics concurrently while the fused engine does them
serially.  The symmetric many-cluster campaign is the opposite regime:
fusion turns N serial engine calls per round into one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.registry import create_policy
from repro.manager.admission import PowerAwareAdmission
from repro.manager.power_manager import PowerManager
from repro.manager.site_simulation import (
    BatchPlanner,
    SiteSimulationResult,
    execute_planned_batches,
    shift_rounds,
)
from repro.telemetry import enabled, get_registry, span
from repro.units import ensure_positive

__all__ = ["run_fused_facility_leaves"]

#: Distinct sentinel for "prime the generator" (``None`` is a valid
#: ``send`` value only after the first yield, so priming uses ``next``).
_PRIME = object()


def run_fused_facility_leaves(
    config,
    budgets_w: Sequence[float],
    schedules: Sequence[object],
    seeds: Sequence[int],
) -> Tuple[List[SiteSimulationResult], List[Tuple[int, int]]]:
    """Advance every leaf cluster in lockstep through fused passes.

    Parameters mirror the sharded path's per-cluster payloads: the
    facility config, each cluster's base budget (its epoch-0
    allocation), its composed leaf fault schedule (``None`` = fault
    free), and its derived run seed.  Returns the per-cluster
    :class:`SiteSimulationResult` list in cluster order — bit-identical
    to the sharded engine's — plus per-cluster
    ``(char_hits, char_misses)`` characterization-memo statistics.
    """
    from repro.hierarchy.facility import build_cluster, cluster_arrivals

    specs = config.clusters
    n = len(specs)
    manager = PowerManager()
    policy = create_policy(config.policy)
    planner = BatchPlanner(manager, policy)

    results: List[Optional[SiteSimulationResult]] = [None] * n
    stats = [[0, 0] for _ in range(n)]
    generators = []

    def advance(i: int, value):
        """One generator step with char-stat attribution to cluster i."""
        hits0, misses0 = planner.char_hits, planner.char_misses
        try:
            if value is _PRIME:
                batch = next(generators[i])
            else:
                batch = generators[i].send(value)
        except StopIteration as stop:
            results[i] = stop.value
            batch = None
        stats[i][0] += planner.char_hits - hits0
        stats[i][1] += planner.char_misses - misses0
        return batch

    rounds = 0
    passes = 0
    with span("hierarchy.facility.fused", clusters=n) as fused_sp:
        for i, spec in enumerate(specs):
            # The scalar path validates inside run_site_simulation; the
            # fused engine must reject the same degenerate budgets.
            ensure_positive(budgets_w[i], "budget_w")
            cluster = build_cluster(spec, config.seed)
            schedule = schedules[i]
            injecting = schedule is not None and schedule.active
            efficiencies = cluster.efficiencies
            uniform = bool((efficiencies == efficiencies[0]).all())
            generators.append(shift_rounds(
                cluster_arrivals(spec),
                cluster,
                policy,
                float(budgets_w[i]),
                PowerAwareAdmission(model=manager.model),
                manager,
                config.noise_std,
                config.max_batches,
                seeds[i],
                schedule,
                None,   # degradation config (the sharded default)
                1.0,    # reaction_s (the sharded default)
                injecting,
                planner=planner,
                staged=True,
                uniform_hosts=uniform,
            ))

        # Prime: run every cluster to its first staged batch (or, for
        # non-stageable / trivially short streams, to completion).
        pending: Dict[int, object] = {}
        for i in range(n):
            batch = advance(i, _PRIME)
            if batch is not None:
                pending[i] = batch

        # Lockstep rounds: fuse all co-resident batches into grouped
        # stacked passes, feed each row back, collect the next round.
        while pending:
            rounds += 1
            indices = sorted(pending)
            batches = [pending[i] for i in indices]
            executions = execute_planned_batches(
                batches, manager, config.noise_std
            )
            passes += len({
                (b.mix.layout().job_boundaries.tobytes(),
                 b.mix.common_iterations())
                for b in batches
            })
            pending = {}
            for i, execution in zip(indices, executions):
                batch = advance(i, execution)
                if batch is not None:
                    pending[i] = batch

        if fused_sp is not None:
            fused_sp.set_attribute("rounds", rounds)
            fused_sp.set_attribute("stacked_passes", passes)
            fused_sp.set_attribute("char_hits", planner.char_hits)
            fused_sp.set_attribute("char_misses", planner.char_misses)
        if enabled():
            registry = get_registry()
            registry.counter("hierarchy.fused.rounds").inc(rounds)
            registry.counter("hierarchy.fused.stacked_passes").inc(passes)
            registry.counter("hierarchy.fused.char_hits").inc(
                planner.char_hits)
            registry.counter("hierarchy.fused.char_misses").inc(
                planner.char_misses)

    return results, [tuple(s) for s in stats]
