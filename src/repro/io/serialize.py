"""JSON (de)serialization for characterizations, budgets, and results.

Formats are versioned (``"format"`` key) so cached artefacts from older
library versions fail loudly instead of silently misparsing.  Arrays are
stored as plain lists — characterizations are hundreds of floats, far
below any size where a binary format would matter, and JSON keeps the
artefacts human-diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.characterization.budgets import PowerBudgets
from repro.characterization.mix_characterization import MixCharacterization

__all__ = [
    "characterization_to_dict",
    "characterization_from_dict",
    "save_characterization",
    "load_characterization",
    "budgets_to_dict",
    "budgets_from_dict",
    "save_grid_results",
]

_CHAR_FORMAT = "repro.mix-characterization.v1"
_BUDGET_FORMAT = "repro.power-budgets.v1"


def characterization_to_dict(char: MixCharacterization) -> Dict:
    """A JSON-ready dict of one mix characterization."""
    return {
        "format": _CHAR_FORMAT,
        "mix_name": char.mix_name,
        "job_boundaries": char.job_boundaries.tolist(),
        "monitor_power_w": char.monitor_power_w.tolist(),
        "needed_power_w": char.needed_power_w.tolist(),
        "needed_cap_w": char.needed_cap_w.tolist(),
        "min_cap_w": char.min_cap_w,
        "tdp_w": char.tdp_w,
    }


def characterization_from_dict(data: Dict) -> MixCharacterization:
    """Rebuild a characterization; validates the format tag."""
    if data.get("format") != _CHAR_FORMAT:
        raise ValueError(
            f"unsupported characterization format {data.get('format')!r}; "
            f"expected {_CHAR_FORMAT!r}"
        )
    return MixCharacterization(
        mix_name=data["mix_name"],
        job_boundaries=np.asarray(data["job_boundaries"], dtype=int),
        monitor_power_w=np.asarray(data["monitor_power_w"], dtype=float),
        needed_power_w=np.asarray(data["needed_power_w"], dtype=float),
        needed_cap_w=np.asarray(data["needed_cap_w"], dtype=float),
        min_cap_w=float(data["min_cap_w"]),
        tdp_w=float(data["tdp_w"]),
    )


def save_characterization(char: MixCharacterization,
                          path: Union[str, Path]) -> Path:
    """Write a characterization to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(characterization_to_dict(char), indent=2), encoding="utf-8"
    )
    return path


def load_characterization(path: Union[str, Path]) -> MixCharacterization:
    """Read a characterization from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return characterization_from_dict(data)


def budgets_to_dict(budgets: PowerBudgets) -> Dict:
    """A JSON-ready dict of one mix's Table III budgets."""
    return {
        "format": _BUDGET_FORMAT,
        "mix_name": budgets.mix_name,
        "min_w": budgets.min_w,
        "ideal_w": budgets.ideal_w,
        "max_w": budgets.max_w,
        "total_tdp_w": budgets.total_tdp_w,
    }


def budgets_from_dict(data: Dict) -> PowerBudgets:
    """Rebuild budgets; validates the format tag."""
    if data.get("format") != _BUDGET_FORMAT:
        raise ValueError(
            f"unsupported budgets format {data.get('format')!r}; "
            f"expected {_BUDGET_FORMAT!r}"
        )
    return PowerBudgets(
        mix_name=data["mix_name"],
        min_w=float(data["min_w"]),
        ideal_w=float(data["ideal_w"]),
        max_w=float(data["max_w"]),
        total_tdp_w=float(data["total_tdp_w"]),
    )


def save_grid_results(results, path: Union[str, Path]) -> Path:
    """Persist a grid's flat result rows as CSV (plotting-friendly).

    Accepts a :class:`~repro.experiments.grid.GridResults`; the CSV holds
    one row per (mix, budget level, policy) cell with the Fig. 7-level
    summary metrics.
    """
    from repro.analysis.export import write_csv

    return write_csv(results.rows(), path)
