"""JSON (de)serialization for characterizations, budgets, and results.

Formats are versioned (``"format"`` key) so cached artefacts from older
library versions fail loudly instead of silently misparsing.  Arrays are
stored as plain lists — characterizations are hundreds of floats, far
below any size where a binary format would matter, and JSON keeps the
artefacts human-diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.characterization.budgets import PowerBudgets
from repro.characterization.mix_characterization import MixCharacterization
from repro.sim.results import MixRunResult

__all__ = [
    "characterization_to_dict",
    "characterization_from_dict",
    "save_characterization",
    "load_characterization",
    "budgets_to_dict",
    "budgets_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_grid_results",
]

_CHAR_FORMAT = "repro.mix-characterization.v1"
_BUDGET_FORMAT = "repro.power-budgets.v1"
_RESULT_FORMAT = "repro.mix-run-result.v1"


def characterization_to_dict(char: MixCharacterization) -> Dict:
    """A JSON-ready dict of one mix characterization."""
    return {
        "format": _CHAR_FORMAT,
        "mix_name": char.mix_name,
        "job_boundaries": char.job_boundaries.tolist(),
        "monitor_power_w": char.monitor_power_w.tolist(),
        "needed_power_w": char.needed_power_w.tolist(),
        "needed_cap_w": char.needed_cap_w.tolist(),
        "min_cap_w": char.min_cap_w,
        "tdp_w": char.tdp_w,
    }


def characterization_from_dict(data: Dict) -> MixCharacterization:
    """Rebuild a characterization; validates the format tag."""
    if data.get("format") != _CHAR_FORMAT:
        raise ValueError(
            f"unsupported characterization format {data.get('format')!r}; "
            f"expected {_CHAR_FORMAT!r}"
        )
    return MixCharacterization(
        mix_name=data["mix_name"],
        job_boundaries=np.asarray(data["job_boundaries"], dtype=int),
        monitor_power_w=np.asarray(data["monitor_power_w"], dtype=float),
        needed_power_w=np.asarray(data["needed_power_w"], dtype=float),
        needed_cap_w=np.asarray(data["needed_cap_w"], dtype=float),
        min_cap_w=float(data["min_cap_w"]),
        tdp_w=float(data["tdp_w"]),
    )


def save_characterization(char: MixCharacterization,
                          path: Union[str, Path]) -> Path:
    """Write a characterization to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(characterization_to_dict(char), indent=2), encoding="utf-8"
    )
    return path


def load_characterization(path: Union[str, Path]) -> MixCharacterization:
    """Read a characterization from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return characterization_from_dict(data)


def budgets_to_dict(budgets: PowerBudgets) -> Dict:
    """A JSON-ready dict of one mix's Table III budgets."""
    return {
        "format": _BUDGET_FORMAT,
        "mix_name": budgets.mix_name,
        "min_w": budgets.min_w,
        "ideal_w": budgets.ideal_w,
        "max_w": budgets.max_w,
        "total_tdp_w": budgets.total_tdp_w,
    }


def budgets_from_dict(data: Dict) -> PowerBudgets:
    """Rebuild budgets; validates the format tag."""
    if data.get("format") != _BUDGET_FORMAT:
        raise ValueError(
            f"unsupported budgets format {data.get('format')!r}; "
            f"expected {_BUDGET_FORMAT!r}"
        )
    return PowerBudgets(
        mix_name=data["mix_name"],
        min_w=float(data["min_w"]),
        ideal_w=float(data["ideal_w"]),
        max_w=float(data["max_w"]),
        total_tdp_w=float(data["total_tdp_w"]),
    )


def result_to_dict(result: MixRunResult) -> Dict:
    """A JSON-ready dict of one simulated execution result.

    The encoding is bit-exact: float arrays are stored as plain lists
    whose elements serialise via ``repr`` (IEEE-754 doubles round-trip
    exactly through that path), and field order never matters because
    :func:`result_from_dict` reads by key.  ``result_from_dict(
    result_to_dict(r)) == r`` holds bit-for-bit — the property the
    characterization cache and the parallel runner rely on, pinned by
    the round-trip tests.
    """
    return {
        "format": _RESULT_FORMAT,
        "mix_name": result.mix_name,
        "policy_name": result.policy_name,
        "budget_w": result.budget_w,
        "job_names": list(result.job_names),
        "iteration_times_s": result.iteration_times_s.tolist(),
        "iteration_energy_j": result.iteration_energy_j.tolist(),
        "host_energy_j": result.host_energy_j.tolist(),
        "host_mean_power_w": result.host_mean_power_w.tolist(),
        "host_job_index": result.host_job_index.tolist(),
        "total_gflop": result.total_gflop,
    }


def result_from_dict(data: Dict) -> MixRunResult:
    """Rebuild a run result; validates the format tag."""
    if data.get("format") != _RESULT_FORMAT:
        raise ValueError(
            f"unsupported result format {data.get('format')!r}; "
            f"expected {_RESULT_FORMAT!r}"
        )
    return MixRunResult(
        mix_name=data["mix_name"],
        policy_name=data["policy_name"],
        budget_w=float(data["budget_w"]),
        job_names=tuple(data["job_names"]),
        iteration_times_s=np.asarray(data["iteration_times_s"], dtype=float),
        iteration_energy_j=np.asarray(data["iteration_energy_j"], dtype=float),
        host_energy_j=np.asarray(data["host_energy_j"], dtype=float),
        host_mean_power_w=np.asarray(data["host_mean_power_w"], dtype=float),
        host_job_index=np.asarray(data["host_job_index"], dtype=int),
        total_gflop=float(data["total_gflop"]),
    )


def save_result(result: MixRunResult, path: Union[str, Path]) -> Path:
    """Write a run result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2),
                    encoding="utf-8")
    return path


def load_result(path: Union[str, Path]) -> MixRunResult:
    """Read a run result from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return result_from_dict(data)


def save_grid_results(results, path: Union[str, Path]) -> Path:
    """Persist a grid's flat result rows as CSV (plotting-friendly).

    Accepts a :class:`~repro.experiments.grid.GridResults`; the CSV holds
    one row per (mix, budget level, policy) cell with the Fig. 7-level
    summary metrics.
    """
    from repro.analysis.export import write_csv

    return write_csv(results.rows(), path)
