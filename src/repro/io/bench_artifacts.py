"""Machine-readable perf-trajectory artifacts for the benchmark suites.

Every benchmark historically wrote a human-readable ``.txt`` table; this
module adds the machine half: a ``BENCH_<name>.json`` bundle with a
stable schema (metric name, value, units, direction, shape parameters,
seed, timestamp, host info) that CI can diff across commits.  The
comparator (:func:`compare_artifacts`, surfaced as
``python -m repro bench-compare``) judges a candidate bundle against a
baseline with per-metric relative tolerances, so perf regressions gate a
pull request the same way correctness tests do.

The schema is versioned (:data:`BENCH_SCHEMA`); loaders validate before
trusting, and the comparator refuses mismatched schema tags rather than
producing a silently wrong verdict.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "BENCH_SCHEMA",
    "BenchMetric",
    "make_artifact",
    "validate_artifact",
    "write_artifact",
    "load_artifact",
    "MetricComparison",
    "ComparisonReport",
    "compare_artifacts",
]

#: Schema tag of the perf-trajectory bundle format.
BENCH_SCHEMA = "repro.bench-trajectory.v1"

#: Allowed regression directions for a metric.
DIRECTIONS = ("higher_better", "lower_better", "two_sided")


@dataclass(frozen=True)
class BenchMetric:
    """One measured quantity of a benchmark run.

    ``direction`` declares what a *regression* looks like:
    ``higher_better`` (speedups, ratios) regresses when the value drops,
    ``lower_better`` (wall times, overheads) when it rises, and
    ``two_sided`` (reproduced physical quantities) when it moves either
    way beyond tolerance.
    """

    name: str
    value: float
    units: str
    direction: str = "two_sided"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, "
                f"got {self.direction!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict form."""
        return {
            "name": self.name,
            "value": float(self.value),
            "units": self.units,
            "direction": self.direction,
        }


def _host_info() -> Dict[str, str]:
    """Where the numbers were measured (context for cross-host diffs)."""
    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = "unknown"
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


def make_artifact(
    name: str,
    metrics: Sequence[BenchMetric],
    params: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Build one schema-valid perf-trajectory bundle.

    ``params`` records the benchmark's shape (hosts, iterations,
    scenarios, ...) so a comparison across commits can verify it compared
    like with like; ``seed`` the workload seed when the bench is
    randomised.
    """
    if not name:
        raise ValueError("artifact name must be non-empty")
    if not metrics:
        raise ValueError("artifact needs at least one metric")
    names = [m.name for m in metrics]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate metric names in {name}: {names}")
    return {
        "schema": BENCH_SCHEMA,
        "name": str(name),
        "created_unix": time.time(),
        "host": _host_info(),
        "params": dict(params) if params else {},
        "seed": None if seed is None else int(seed),
        "metrics": [m.to_dict() for m in metrics],
    }


def validate_artifact(bundle: Mapping[str, object]) -> List[str]:
    """Schema-check one bundle; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(bundle, Mapping):
        return ["bundle is not a mapping"]
    if bundle.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {bundle.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    for key, kinds in (
        ("name", str), ("created_unix", (int, float)), ("host", Mapping),
        ("params", Mapping), ("metrics", list),
    ):
        if key not in bundle:
            problems.append(f"missing key {key!r}")
        elif not isinstance(bundle[key], kinds):
            problems.append(f"key {key!r} has type {type(bundle[key]).__name__}")
    if "seed" in bundle and bundle["seed"] is not None \
            and not isinstance(bundle["seed"], int):
        problems.append("seed must be an int or null")
    for i, metric in enumerate(bundle.get("metrics") or []):
        if not isinstance(metric, Mapping):
            problems.append(f"metric #{i} is not a mapping")
            continue
        for key, kinds in (
            ("name", str), ("value", (int, float)), ("units", str),
            ("direction", str),
        ):
            if not isinstance(metric.get(key), kinds):
                problems.append(f"metric #{i} key {key!r} missing or mistyped")
        if metric.get("direction") not in DIRECTIONS:
            problems.append(
                f"metric #{i} direction {metric.get('direction')!r} invalid"
            )
    metric_names = [
        m.get("name") for m in bundle.get("metrics") or []
        if isinstance(m, Mapping)
    ]
    if len(set(metric_names)) != len(metric_names):
        problems.append(f"duplicate metric names: {metric_names}")
    return problems


def write_artifact(
    bundle: Mapping[str, object], path: Union[str, Path]
) -> Path:
    """Validate and write one bundle as pretty JSON."""
    problems = validate_artifact(bundle)
    if problems:
        raise ValueError(
            f"refusing to write invalid bench artifact: {problems}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_artifact(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate one bundle (raises ``ValueError`` on mismatch)."""
    bundle = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_artifact(bundle)
    if problems:
        raise ValueError(f"invalid bench artifact {path}: {problems}")
    return bundle


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricComparison:
    """Verdict on one metric of a baseline/candidate pair."""

    name: str
    units: str
    direction: str
    baseline: float
    candidate: Optional[float]
    delta_rel: Optional[float]
    tolerance: float
    regressed: bool
    note: str = ""


@dataclass(frozen=True)
class ComparisonReport:
    """All per-metric verdicts of one artifact comparison."""

    baseline_name: str
    candidate_name: str
    comparisons: List[MetricComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        """The metrics that regressed beyond tolerance."""
        return [c for c in self.comparisons if c.regressed]

    @property
    def ok(self) -> bool:
        """Whether the candidate passes (no regressions)."""
        return not self.regressions

    def format_text(self) -> str:
        """Human-readable table of the comparison."""
        lines = [
            f"bench-compare: {self.candidate_name} vs "
            f"baseline {self.baseline_name}",
            f"{'metric':<38} {'baseline':>12} {'candidate':>12} "
            f"{'delta':>9} {'tol':>7}  verdict",
        ]
        for c in self.comparisons:
            cand = "missing" if c.candidate is None else f"{c.candidate:.6g}"
            delta = "-" if c.delta_rel is None else f"{c.delta_rel:+.2%}"
            verdict = "REGRESSED" if c.regressed else "ok"
            if c.note:
                verdict = f"{verdict} ({c.note})"
            lines.append(
                f"{c.name:<38} {c.baseline:>12.6g} {cand:>12} "
                f"{delta:>9} {c.tolerance:>6.0%}  {verdict}"
            )
        lines.append(
            f"{len(self.regressions)} regression(s) across "
            f"{len(self.comparisons)} metric(s)"
        )
        return "\n".join(lines)


def compare_artifacts(
    baseline: Mapping[str, object],
    candidate: Mapping[str, object],
    tolerance: float = 0.10,
    tolerances: Optional[Mapping[str, float]] = None,
) -> ComparisonReport:
    """Judge a candidate bundle against a baseline.

    Each baseline metric is matched by name; the relative delta
    ``(candidate - baseline) / |baseline|`` is judged against the
    metric's tolerance (``tolerances[name]`` when given, else the
    default) in the metric's declared direction.  A metric missing from
    the candidate regresses; *extra* candidate metrics are ignored (a
    new benchmark revision may add measurements without breaking old
    baselines).
    """
    for label, bundle in (("baseline", baseline), ("candidate", candidate)):
        problems = validate_artifact(bundle)
        if problems:
            raise ValueError(f"invalid {label} artifact: {problems}")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    tolerances = dict(tolerances or {})
    by_name = {m["name"]: m for m in candidate["metrics"]}  # type: ignore[index]
    comparisons: List[MetricComparison] = []
    for metric in baseline["metrics"]:  # type: ignore[index]
        name = metric["name"]
        tol = float(tolerances.get(name, tolerance))
        base = float(metric["value"])
        direction = metric["direction"]
        cand = by_name.get(name)
        if cand is None:
            comparisons.append(MetricComparison(
                name=name, units=metric["units"], direction=direction,
                baseline=base, candidate=None, delta_rel=None,
                tolerance=tol, regressed=True, note="missing from candidate",
            ))
            continue
        value = float(cand["value"])
        if base != 0.0:
            delta = (value - base) / abs(base)
        else:
            # Zero baselines have no relative scale; judge on the
            # absolute move against the tolerance directly.
            delta = value - base
        if direction == "higher_better":
            regressed = delta < -tol
        elif direction == "lower_better":
            regressed = delta > tol
        else:
            regressed = abs(delta) > tol
        note = ""
        if cand.get("direction") != direction:
            note = f"direction changed to {cand.get('direction')!r}"
        comparisons.append(MetricComparison(
            name=name, units=metric["units"], direction=direction,
            baseline=base, candidate=value, delta_rel=delta,
            tolerance=tol, regressed=regressed, note=note,
        ))
    return ComparisonReport(
        baseline_name=str(baseline["name"]),
        candidate_name=str(candidate["name"]),
        comparisons=comparisons,
    )
