"""Serialization of characterization artefacts and results.

A production site runs characterization once and reuses it across many
scheduling decisions; these helpers persist the artefacts the stack
produces (mix characterizations, budgets, grid results) as JSON so they
can be cached, diffed, and shipped between the runtime and resource-
manager sides — the "protocol" data the paper's future-work coordination
would exchange.
"""

from repro.io.bench_artifacts import (
    BENCH_SCHEMA,
    BenchMetric,
    ComparisonReport,
    MetricComparison,
    compare_artifacts,
    load_artifact,
    make_artifact,
    validate_artifact,
    write_artifact,
)
from repro.io.serialize import (
    characterization_to_dict,
    characterization_from_dict,
    save_characterization,
    load_characterization,
    budgets_to_dict,
    budgets_from_dict,
    save_grid_results,
)

__all__ = [
    "characterization_to_dict",
    "characterization_from_dict",
    "save_characterization",
    "load_characterization",
    "budgets_to_dict",
    "budgets_from_dict",
    "save_grid_results",
    "BENCH_SCHEMA",
    "BenchMetric",
    "ComparisonReport",
    "MetricComparison",
    "compare_artifacts",
    "load_artifact",
    "make_artifact",
    "validate_artifact",
    "write_artifact",
]
