"""Terminal renderings of the paper's figures and tables.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that output aligned and readable without any plotting
dependency.  Each renderer returns a string (callers decide where it
goes), uses only ASCII, and is deterministic — benchmark logs diff cleanly
across runs.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["render_heatmap", "render_bar_grid", "render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_heatmap(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: np.ndarray,
    title: Optional[str] = None,
    fmt: str = "{:.0f}",
) -> str:
    """A heat-map grid in the layout of the paper's Figs. 4/5."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"values shape {values.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    rows = [
        [label] + [fmt.format(v) for v in values[i]]
        for i, label in enumerate(row_labels)
    ]
    return render_table([""] + list(col_labels), rows, title=title)


def render_bar_grid(
    data: Mapping[str, Mapping[str, float]],
    title: Optional[str] = None,
    width: int = 40,
    fmt: str = "{:+.1f}%",
) -> str:
    """Horizontal bars grouped by outer key (Fig. 7/8-style panels).

    ``data`` maps group -> series -> value.  Bars scale to the largest
    absolute value in the whole grid; negative values extend left of the
    axis mark.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    all_values = [v for group in data.values() for v in group.values()]
    peak = max((abs(v) for v in all_values), default=1.0) or 1.0
    name_width = max(
        (len(name) for group in data.values() for name in group), default=4
    )
    for group_name, series in data.items():
        lines.append(f"[{group_name}]")
        for name, value in series.items():
            chars = int(round(abs(value) / peak * width))
            bar = ("#" * chars) if value >= 0 else ("-" * chars)
            lines.append(
                f"  {name.ljust(name_width)} {fmt.format(value).rjust(8)} |{bar}"
            )
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    x_label: str = "x",
    fmt: str = "{:.3g}",
) -> str:
    """Tabulated multi-series data (e.g. the Fig. 3 roofline envelope)."""
    headers = [x_label] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append([fmt.format(xv)] + [fmt.format(series[s][i]) for s in series])
    return render_table(headers, rows, title=title)
