"""CSV export of experiment results.

Plain ``csv`` from the standard library: results are small (hundreds of
rows), and downstream users plot with their own tools.  Rows are
dictionaries; the header is the union of keys in first-seen order so
heterogeneous result sets export without pre-declaring a schema.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

__all__ = ["rows_to_csv", "write_csv"]


def _fieldnames(rows: Sequence[Mapping[str, object]]) -> List[str]:
    names: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                names.append(key)
    return names


def rows_to_csv(rows: Iterable[Mapping[str, object]]) -> str:
    """Serialise dict-rows to a CSV string (header from first-seen keys)."""
    rows = list(rows)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_fieldnames(rows), restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(rows: Iterable[Mapping[str, object]], path: Union[str, Path]) -> Path:
    """Write dict-rows to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_csv(rows), encoding="utf-8")
    return path
