"""Analysis utilities: statistics, ASCII rendering, CSV export.

Everything the benchmark harness needs to turn simulation results into the
rows and series the paper reports: 95 % confidence intervals over the 100
measured iterations (:mod:`.stats`), terminal-friendly renderings of heat
maps / bar grids / tables (:mod:`.render`), and CSV export for downstream
plotting (:mod:`.export`).
"""

from repro.analysis.stats import mean_ci95, bootstrap_ci, summarize
from repro.analysis.render import (
    render_heatmap,
    render_bar_grid,
    render_table,
    render_series,
)
from repro.analysis.export import rows_to_csv, write_csv

__all__ = [
    "mean_ci95",
    "bootstrap_ci",
    "summarize",
    "render_heatmap",
    "render_bar_grid",
    "render_table",
    "render_series",
    "rows_to_csv",
    "write_csv",
]
