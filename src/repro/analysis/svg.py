"""Dependency-free SVG chart rendering for the paper's figures.

The evaluation environment has no plotting stack, so this module writes
the three chart shapes the paper's figures need as plain SVG documents:

* :func:`line_chart` — Fig. 1 (facility trace) and sweep curves;
* :func:`grouped_bar_chart` — Figs. 7/8 (per-policy bars over mixes);
* :func:`heatmap_chart` — Figs. 4/5 (intensity x waiting grids).

The generators emit deterministic, self-contained SVG (inline styling, no
scripts), so outputs diff cleanly across runs and open in any browser.
Layout is intentionally simple: one plot area, left/bottom axes, tick
labels, a legend when there are multiple series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["line_chart", "grouped_bar_chart", "heatmap_chart", "write_svg"]

#: Default categorical palette (colour-blind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00")

_WIDTH = 720
_HEIGHT = 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 20, 44, 56


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (1/2/5 ladder)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for step in (1, 2, 5, 10):
        if raw <= step * magnitude:
            step *= magnitude
            break
    start = math.floor(lo / step) * step
    ticks = []
    tick = start
    while tick <= hi + 1e-12:
        if tick >= lo - 1e-12:
            ticks.append(round(tick, 10))
        tick += step
    return ticks or [lo, hi]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2g}"


@dataclass
class _Frame:
    """Plot-area coordinate mapper."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    def x(self, value: float) -> float:
        span = self.x_hi - self.x_lo or 1.0
        return _MARGIN_L + (value - self.x_lo) / span * (
            _WIDTH - _MARGIN_L - _MARGIN_R
        )

    def y(self, value: float) -> float:
        span = self.y_hi - self.y_lo or 1.0
        return _HEIGHT - _MARGIN_B - (value - self.y_lo) / span * (
            _HEIGHT - _MARGIN_T - _MARGIN_B
        )


def _document(body: List[str], title: str) -> str:
    head = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        'font-family="Helvetica, Arial, sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2:.1f}" y="20" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{_esc(title)}</text>',
    ]
    return "\n".join(head + body + ["</svg>"]) + "\n"


def _axes(frame: _Frame, x_label: str, y_label: str,
          x_ticks: Sequence[Tuple[float, str]],
          y_ticks: Sequence[Tuple[float, str]]) -> List[str]:
    parts: List[str] = []
    x0, x1 = _MARGIN_L, _WIDTH - _MARGIN_R
    y0, y1 = _HEIGHT - _MARGIN_B, _MARGIN_T
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#333"/>'
    )
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#333"/>'
    )
    for value, label in x_ticks:
        px = frame.x(value)
        parts.append(
            f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" y2="{y0 + 5}" '
            'stroke="#333"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{y0 + 18}" text-anchor="middle">'
            f"{_esc(label)}</text>"
        )
    for value, label in y_ticks:
        py = frame.y(value)
        parts.append(
            f'<line x1="{x0 - 5}" y1="{py:.1f}" x2="{x0}" y2="{py:.1f}" '
            'stroke="#333"/>'
        )
        parts.append(
            f'<line x1="{x0}" y1="{py:.1f}" x2="{x1}" y2="{py:.1f}" '
            'stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{x0 - 8}" y="{py + 4:.1f}" text-anchor="end">'
            f"{_esc(label)}</text>"
        )
    parts.append(
        f'<text x="{(x0 + x1) / 2:.1f}" y="{_HEIGHT - 12}" '
        f'text-anchor="middle">{_esc(x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{(y0 + y1) / 2:.1f}" text-anchor="middle" '
        f'transform="rotate(-90 16 {(y0 + y1) / 2:.1f})">{_esc(y_label)}</text>'
    )
    return parts


def _legend(names: Sequence[str]) -> List[str]:
    parts: List[str] = []
    x = _MARGIN_L + 8
    y = _MARGIN_T + 6
    for i, name in enumerate(names):
        colour = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<rect x="{x}" y="{y + 18 * i}" width="12" height="12" '
            f'fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{x + 17}" y="{y + 18 * i + 10}">{_esc(name)}</text>'
        )
    return parts


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str,
    x_label: str = "",
    y_label: str = "",
    h_lines: Optional[Mapping[str, float]] = None,
) -> str:
    """A multi-series line chart; ``h_lines`` adds dashed reference lines
    (e.g. Fig. 1's power rating)."""
    x = np.asarray(x, dtype=float)
    if x.size < 2:
        raise ValueError("a line chart needs at least two x values")
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if h_lines:
        all_y = np.concatenate([all_y, np.array(list(h_lines.values()))])
    frame = _Frame(float(x.min()), float(x.max()),
                   min(0.0, float(all_y.min())), float(all_y.max()) * 1.05)
    body: List[str] = []
    body += _axes(
        frame, x_label, y_label,
        [(t, _fmt(t)) for t in _nice_ticks(frame.x_lo, frame.x_hi)],
        [(t, _fmt(t)) for t in _nice_ticks(frame.y_lo, frame.y_hi)],
    )
    for i, (name, values) in enumerate(series.items()):
        values = np.asarray(values, dtype=float)
        if values.shape != x.shape:
            raise ValueError(f"series {name!r} length mismatch")
        pts = " ".join(
            f"{frame.x(xv):.1f},{frame.y(yv):.1f}" for xv, yv in zip(x, values)
        )
        body.append(
            f'<polyline points="{pts}" fill="none" '
            f'stroke="{PALETTE[i % len(PALETTE)]}" stroke-width="1.5"/>'
        )
    if h_lines:
        for name, value in h_lines.items():
            py = frame.y(value)
            body.append(
                f'<line x1="{_MARGIN_L}" y1="{py:.1f}" '
                f'x2="{_WIDTH - _MARGIN_R}" y2="{py:.1f}" stroke="#444" '
                'stroke-dasharray="6 4"/>'
            )
            body.append(
                f'<text x="{_WIDTH - _MARGIN_R - 4}" y="{py - 5:.1f}" '
                f'text-anchor="end" fill="#444">{_esc(name)}</text>'
            )
    body += _legend(list(series))
    return _document(body, title)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str,
    y_label: str = "",
) -> str:
    """Grouped vertical bars (the Fig. 7/8 shape)."""
    if not groups:
        raise ValueError("need at least one group")
    n_groups = len(groups)
    names = list(series)
    n_series = len(names)
    values = np.array([np.asarray(series[name], dtype=float) for name in names])
    if values.shape != (n_series, n_groups):
        raise ValueError("every series must have one value per group")
    lo = min(0.0, float(values.min()) * 1.1)
    hi = max(0.0, float(values.max()) * 1.1) or 1.0
    frame = _Frame(0.0, float(n_groups), lo, hi)
    body: List[str] = []
    body += _axes(
        frame, "", y_label,
        [(i + 0.5, g) for i, g in enumerate(groups)],
        [(t, _fmt(t)) for t in _nice_ticks(lo, hi)],
    )
    slot = 1.0 / (n_series + 1)
    zero_y = frame.y(0.0)
    for s, name in enumerate(names):
        for g in range(n_groups):
            v = values[s, g]
            px = frame.x(g + slot * (s + 0.5) + slot / 2)
            py = frame.y(v)
            top, height = (py, zero_y - py) if v >= 0 else (zero_y, py - zero_y)
            width = slot * (frame.x(1) - frame.x(0)) * 0.9
            body.append(
                f'<rect x="{px - width / 2:.1f}" y="{top:.1f}" '
                f'width="{width:.1f}" height="{max(height, 0.5):.1f}" '
                f'fill="{PALETTE[s % len(PALETTE)]}"/>'
            )
    body.append(
        f'<line x1="{_MARGIN_L}" y1="{zero_y:.1f}" '
        f'x2="{_WIDTH - _MARGIN_R}" y2="{zero_y:.1f}" stroke="#333"/>'
    )
    body += _legend(names)
    return _document(body, title)


def heatmap_chart(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: np.ndarray,
    title: str,
    unit: str = "",
) -> str:
    """A labelled heat map (the Fig. 4/5 shape), blue-to-red scale."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError("values shape must match labels")
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    x0, y0 = _MARGIN_L, _MARGIN_T + 10
    cell_w = (_WIDTH - _MARGIN_L - _MARGIN_R) / len(col_labels)
    cell_h = (_HEIGHT - y0 - _MARGIN_B) / len(row_labels)
    body: List[str] = []
    for r, row in enumerate(row_labels):
        for c, col in enumerate(col_labels):
            v = values[r, c]
            t = (v - lo) / span
            red = int(40 + 215 * t)
            blue = int(255 - 215 * t)
            body.append(
                f'<rect x="{x0 + c * cell_w:.1f}" y="{y0 + r * cell_h:.1f}" '
                f'width="{cell_w:.1f}" height="{cell_h:.1f}" '
                f'fill="rgb({red},90,{blue})" stroke="white"/>'
            )
            body.append(
                f'<text x="{x0 + (c + 0.5) * cell_w:.1f}" '
                f'y="{y0 + (r + 0.5) * cell_h + 4:.1f}" text-anchor="middle" '
                f'fill="white">{_fmt(v)}</text>'
            )
    for r, row in enumerate(row_labels):
        body.append(
            f'<text x="{x0 - 8}" y="{y0 + (r + 0.5) * cell_h + 4:.1f}" '
            f'text-anchor="end">{_esc(row)}</text>'
        )
    for c, col in enumerate(col_labels):
        body.append(
            f'<text x="{x0 + (c + 0.5) * cell_w:.1f}" '
            f'y="{_HEIGHT - _MARGIN_B + 16}" text-anchor="middle" '
            f'font-size="10">{_esc(col)}</text>'
        )
    if unit:
        body.append(
            f'<text x="{_WIDTH - _MARGIN_R}" y="{_MARGIN_T - 6}" '
            f'text-anchor="end" fill="#555">{_esc(unit)}</text>'
        )
    return _document(body, title)


def write_svg(svg: str, path: Union[str, Path]) -> Path:
    """Write an SVG document to ``path``; returns the path written."""
    if not svg.lstrip().startswith("<svg"):
        raise ValueError("not an SVG document")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg, encoding="utf-8")
    return path
