"""Statistics helpers for the evaluation metrics.

The paper reports each Fig. 8 bar with a 95 % confidence interval
"calculated over measurements from 100 iterations per benchmark
configuration".  :func:`mean_ci95` reproduces that (normal-approximation
interval over per-iteration samples); :func:`bootstrap_ci` provides a
distribution-free alternative used by the test suite to validate the
normal approximation on the actual noise model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = ["ConfidenceInterval", "mean_ci95", "bootstrap_ci", "summarize"]

#: Two-sided 97.5 % normal quantile.
_Z_95 = 1.959963984540054


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric confidence half-width."""

    mean: float
    half_width: float

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_ci95(samples: np.ndarray) -> ConfidenceInterval:
    """Mean with a normal-approximation 95 % CI over the samples.

    Matches the paper's error bars: the standard error of the mean over
    per-iteration measurements, scaled by the 97.5 % normal quantile.  A
    single sample yields a zero-width interval.
    """
    x = np.asarray(samples, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("need at least one sample")
    mean = float(np.mean(x))
    if x.size == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0)
    sem = float(np.std(x, ddof=1)) / np.sqrt(x.size)
    return ConfidenceInterval(mean=mean, half_width=_Z_95 * sem)


def bootstrap_ci(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap 95 % CI for an arbitrary statistic."""
    x = np.asarray(samples, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(resamples, x.size))
    stats = np.apply_along_axis(statistic, 1, x[idx])
    low, high = np.percentile(stats, [2.5, 97.5])
    mid = float(statistic(x))
    return ConfidenceInterval(mean=mid, half_width=float(max(mid - low, high - mid)))


def summarize(samples: np.ndarray) -> Dict[str, float]:
    """Compact descriptive summary (used in reports and examples)."""
    x = np.asarray(samples, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("need at least one sample")
    ci = mean_ci95(x)
    return {
        "count": float(x.size),
        "mean": ci.mean,
        "ci95": ci.half_width,
        "std": float(np.std(x, ddof=1)) if x.size > 1 else 0.0,
        "min": float(np.min(x)),
        "median": float(np.median(x)),
        "max": float(np.max(x)),
    }
