"""Unit tests for the time-stepped site simulation."""

import pytest

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager.site_simulation import Arrival, run_site_simulation
from repro.manager.queue import JobRequest
from repro.workload.kernel import KernelConfig


def _arrival(name, t, nodes=4, intensity=8.0, hint=None):
    return Arrival(
        time_s=t,
        request=JobRequest(
            name=name,
            config=KernelConfig(intensity=intensity),
            node_count=nodes,
            iterations=5,
            power_hint_w=hint,
        ),
    )


@pytest.fixture(scope="module")
def site_cluster():
    return Cluster(node_count=12, variation=None, seed=0)


class TestValidation:
    def test_rejects_empty_arrivals(self, site_cluster):
        with pytest.raises(ValueError):
            run_site_simulation([], site_cluster, create_policy("StaticCaps"),
                                2000.0)

    def test_rejects_negative_arrival_time(self):
        with pytest.raises(ValueError):
            _arrival("a", -1.0)

    def test_rejects_bad_budget(self, site_cluster):
        with pytest.raises(ValueError):
            run_site_simulation(
                [_arrival("a", 0.0)], site_cluster,
                create_policy("StaticCaps"), 0.0,
            )


class TestScheduling:
    def test_all_jobs_complete(self, site_cluster):
        arrivals = [_arrival(f"j{i}", 0.0) for i in range(3)]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("MixedAdaptive"),
            budget_w=12 * 220.0,
        )
        assert sorted(result.completed) == ["j0", "j1", "j2"]
        assert result.never_admitted == ()

    def test_capacity_forces_batching(self, site_cluster):
        """Three 4-node jobs on 12 nodes with an 8-node power budget run
        in more than one batch."""
        arrivals = [_arrival(f"j{i}", 0.0, hint=230.0) for i in range(3)]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=8 * 235.0,
        )
        assert len(result.batches) >= 2
        assert sorted(result.completed) == ["j0", "j1", "j2"]

    def test_budget_respected_every_batch(self, site_cluster):
        arrivals = [_arrival(f"j{i}", 0.0) for i in range(3)]
        budget = 8 * 235.0
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("MixedAdaptive"),
            budget_w=budget,
        )
        assert result.peak_power_w() <= budget * 1.001

    def test_late_arrival_waits(self, site_cluster):
        """A job arriving after the first batch starts runs in a later
        batch, and its turnaround excludes pre-arrival time."""
        arrivals = [
            _arrival("early", 0.0, nodes=8),
            _arrival("late", 1000.0, nodes=8),
        ]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0,
        )
        assert sorted(result.completed) == ["early", "late"]
        assert len(result.batches) == 2
        assert result.batches[1].start_s >= 1000.0
        assert result.job_turnaround_s["late"] < result.batches[1].end_s

    def test_unschedulable_job_reported(self, site_cluster):
        """A job larger than the cluster never completes but does not
        hang the simulation."""
        arrivals = [
            _arrival("ok", 0.0, nodes=4),
            _arrival("whale", 0.0, nodes=500),
        ]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0,
        )
        assert "ok" in result.completed
        assert "whale" in result.never_admitted

    def test_turnaround_positive(self, site_cluster):
        arrivals = [_arrival(f"j{i}", float(i)) for i in range(2)]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0,
        )
        assert all(t > 0 for t in result.job_turnaround_s.values())
        assert result.mean_turnaround_s() > 0

    def test_energy_accumulates(self, site_cluster):
        arrivals = [_arrival(f"j{i}", 0.0) for i in range(2)]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0,
        )
        assert result.total_energy_j == pytest.approx(
            sum(b.energy_j for b in result.batches)
        )

    def test_policy_improves_makespan_under_tight_budget(self, site_cluster):
        """MixedAdaptive completes the same arrival stream no slower than
        StaticCaps under a constrained budget."""
        arrivals = [
            _arrival("hungry", 0.0, nodes=6, intensity=32.0),
            Arrival(
                time_s=0.0,
                request=JobRequest(
                    name="waster",
                    config=KernelConfig(
                        intensity=8.0, waiting_fraction=0.5, imbalance=3
                    ),
                    node_count=6,
                    iterations=5,
                ),
            ),
        ]
        budget = 12 * 185.0
        static = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"), budget
        )
        mixed = run_site_simulation(
            arrivals, site_cluster, create_policy("MixedAdaptive"), budget
        )
        assert mixed.makespan_s <= static.makespan_s * 1.001


class TestBackoffCharging:
    def test_completions_include_decision_latency(self, site_cluster,
                                                  monkeypatch):
        """Regression: per-job completions once used ``clock + elapsed``
        while the batch end advanced by ``max(elapsed) + backoff_s``, so
        degraded batches "completed" jobs before the batch ended.  The
        ladder's latency must be charged to every completion."""
        import dataclasses as dc

        from repro.faults import degradation as degradation_mod
        from repro.faults.schedule import FaultSchedule

        real_plan = degradation_mod.plan_with_degradation

        def delayed_plan(*args, **kwargs):
            return dc.replace(real_plan(*args, **kwargs), backoff_s=1.5)

        monkeypatch.setattr(
            degradation_mod, "plan_with_degradation", delayed_plan
        )
        # An active-but-inert schedule routes batches through the ladder.
        schedule = FaultSchedule(name="inert").budget_drop(1e6, 2800.0)
        arrivals = [_arrival("a", 0.0), _arrival("b", 0.0)]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0, fault_schedule=schedule,
        )
        batch = result.batches[0]
        assert batch.backoff_s == 1.5
        completions = [
            result.job_turnaround_s[name] + 0.0 for name in ("a", "b")
        ]
        # The critical-path job finishes exactly at the batch end; nobody
        # finishes after it, and everybody carries the 1.5 s latency.
        assert max(completions) == batch.end_s
        assert all(c <= batch.end_s for c in completions)
        assert min(completions) > batch.backoff_s


class TestTruncationStatus:
    def test_truncated_jobs_not_labeled_never_admitted(self, site_cluster):
        """Regression: jobs still pending (or unarrived) at the
        max_batches limit were reported as never_admitted, conflating
        unfinished work with admission rejections."""
        arrivals = [_arrival(f"j{i}", float(i)) for i in range(5)]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0, max_batches=1,
        )
        # Only j0 has arrived when the single allowed batch launches.
        assert result.completed == ("j0",)
        assert result.never_admitted == ()
        assert set(result.truncated) == {"j1", "j2", "j3", "j4"}

    def test_rejected_job_still_never_admitted(self, site_cluster):
        arrivals = [
            _arrival("ok", 0.0, nodes=4),
            _arrival("whale", 0.0, nodes=500),
        ]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0,
        )
        assert result.never_admitted == ("whale",)
        assert result.truncated == ()

    def test_full_run_truncates_nothing(self, site_cluster):
        arrivals = [_arrival(f"j{i}", float(i)) for i in range(3)]
        result = run_site_simulation(
            arrivals, site_cluster, create_policy("StaticCaps"),
            budget_w=12 * 235.0,
        )
        assert result.truncated == ()
        assert set(result.completed) == {f"j{i}" for i in range(3)}
