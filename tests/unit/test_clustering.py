"""Unit tests for the Fig. 6 survey / k-means pipeline."""

import numpy as np
import pytest

from repro.characterization.clustering import kmeans_1d, survey_and_cluster
from repro.hardware.cluster import Cluster


class TestKmeans1d:
    def test_separable_clusters(self):
        x = np.concatenate([
            np.full(10, 1.0), np.full(10, 5.0), np.full(10, 9.0)
        ]) + np.linspace(0, 0.01, 30)
        labels, centroids = kmeans_1d(x, k=3)
        assert centroids[0] == pytest.approx(1.0, abs=0.1)
        assert centroids[2] == pytest.approx(9.0, abs=0.1)
        assert set(labels) == {0, 1, 2}

    def test_labels_ordered_by_centroid(self):
        x = np.concatenate([np.full(5, 10.0), np.full(5, 0.0)]) + np.linspace(0, 0.01, 10)
        labels, centroids = kmeans_1d(x, k=2)
        assert np.all(np.diff(centroids) > 0)
        assert labels[0] == 1  # large values -> high cluster
        assert labels[-1] == 0

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0, 2.0]), k=3)

    def test_rejects_degenerate_data(self):
        with pytest.raises(ValueError, match="distinct"):
            kmeans_1d(np.full(10, 3.0), k=3)

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        l1, c1 = kmeans_1d(x, k=3)
        l2, c2 = kmeans_1d(x, k=3)
        np.testing.assert_array_equal(l1, l2)
        np.testing.assert_array_equal(c1, c2)

    def test_partition_is_contiguous_in_value(self):
        """1-D k-means partitions are intervals: sorted values have
        monotone labels."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=300)
        labels, _ = kmeans_1d(x, k=3)
        order = np.argsort(x)
        assert np.all(np.diff(labels[order]) >= 0)


class TestSurvey:
    @pytest.fixture(scope="class")
    def survey(self):
        cluster = Cluster(node_count=2000, seed=2021)
        return survey_and_cluster(cluster, cap_w=140.0, kappa=1.0)

    def test_fig6_cluster_sizes(self, survey):
        """Cluster populations approximate the paper's 522/918/560."""
        sizes = survey.cluster_sizes()
        assert abs(sizes["low"] - 522) <= 30
        assert abs(sizes["medium"] - 918) <= 30
        assert abs(sizes["high"] - 560) <= 30

    def test_fig6_frequency_band(self, survey):
        """Achieved frequencies under the 70 W cap span the paper's
        1.6-1.9 GHz band."""
        assert survey.centroids_ghz[0] > 1.55
        assert survey.centroids_ghz[2] < 2.0

    def test_centroids_ordered(self, survey):
        assert np.all(np.diff(survey.centroids_ghz) > 0)

    def test_cluster_node_ids_partition(self, survey):
        ids = np.concatenate([
            survey.cluster_node_ids(name) for name in ("low", "medium", "high")
        ])
        assert np.sort(ids).tolist() == list(range(2000))

    def test_unknown_cluster_raises(self, survey):
        with pytest.raises(KeyError):
            survey.cluster_node_ids("extreme")

    def test_medium_cluster_is_central(self, survey):
        med = survey.frequencies_ghz[survey.cluster_node_ids("medium")]
        low = survey.frequencies_ghz[survey.cluster_node_ids("low")]
        high = survey.frequencies_ghz[survey.cluster_node_ids("high")]
        assert low.max() <= med.min() + 1e-9 or low.mean() < med.mean()
        assert med.mean() < high.mean()
