"""Unit tests for the budget-broker tree (`repro.hierarchy`)."""

import pytest

from repro.faults.schedule import FaultKind, FaultSchedule
from repro.hierarchy import (
    BROKER_POLICIES,
    BudgetBroker,
    ChildSignal,
    ClusterSpec,
    FacilityConfig,
    apportion,
    cluster_arrivals,
    facility_budget_series,
    run_facility_simulation,
)
from repro.hierarchy.facility import _leaf_schedule, _plan_facility


def _children(*caps, **common):
    return [
        ChildSignal(name=f"c{i}", capacity_w=cap, **common)
        for i, cap in enumerate(caps)
    ]


class TestApportion:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown broker policy"):
            apportion("nope", 100.0, _children(50.0))

    def test_single_child_gets_budget_exactly(self):
        # Bitwise: the degenerate facility contract depends on it.
        budget = 12345.6789
        (alloc,) = apportion("demand", budget, _children(99999.0))
        assert alloc == budget

    def test_single_child_clamped_to_ceiling(self):
        (alloc,) = apportion("uniform", 500.0, _children(300.0))
        assert alloc == 300.0

    @pytest.mark.parametrize("policy", sorted(BROKER_POLICIES))
    def test_never_allocates_more_than_budget(self, policy):
        children = _children(100.0, 200.0, 300.0, floor_w=10.0,
                             demand_w=150.0)
        for budget in (25.0, 150.0, 450.0, 900.0):
            allocs = apportion(policy, budget, children)
            assert sum(allocs) <= budget + 1e-6
            for alloc, child in zip(allocs, children):
                assert alloc <= child.ceiling_w + 1e-9

    @pytest.mark.parametrize("policy", sorted(BROKER_POLICIES))
    def test_exhausts_budget_when_headroom_allows(self, policy):
        children = _children(400.0, 400.0, floor_w=20.0, demand_w=350.0)
        allocs = apportion(policy, 600.0, children)
        assert sum(allocs) == pytest.approx(600.0)

    @pytest.mark.parametrize("policy", sorted(BROKER_POLICIES))
    def test_saturates_at_total_ceiling(self, policy):
        children = _children(100.0, 150.0, demand_w=500.0)
        allocs = apportion(policy, 1000.0, children)
        assert allocs == pytest.approx((100.0, 150.0))

    def test_floors_scale_when_budget_cannot_cover_them(self):
        children = _children(200.0, 200.0, floor_w=100.0)
        allocs = apportion("uniform", 50.0, children)
        assert allocs == pytest.approx((25.0, 25.0))
        assert sum(allocs) == pytest.approx(50.0)

    def test_uniform_splits_equally_within_headroom(self):
        allocs = apportion("uniform", 300.0, _children(400.0, 400.0))
        assert allocs == pytest.approx((150.0, 150.0))

    def test_uniform_spills_past_small_child(self):
        allocs = apportion("uniform", 300.0, _children(50.0, 400.0))
        assert allocs == pytest.approx((50.0, 250.0))

    def test_demand_weighting_follows_demand(self):
        children = [
            ChildSignal(name="quiet", capacity_w=1000.0, floor_w=10.0,
                        demand_w=50.0),
            ChildSignal(name="busy", capacity_w=1000.0, floor_w=10.0,
                        demand_w=450.0),
        ]
        quiet, busy = apportion("demand", 520.0, children)
        assert busy > 4 * quiet

    def test_demand_respects_weight_multiplier(self):
        children = [
            ChildSignal(name="a", capacity_w=1000.0, demand_w=100.0,
                        weight=1.0),
            ChildSignal(name="b", capacity_w=1000.0, demand_w=100.0,
                        weight=3.0),
        ]
        a, b = apportion("demand", 400.0, children)
        assert b == pytest.approx(3 * a)

    def test_priority_fills_high_priority_first(self):
        children = [
            ChildSignal(name="low", capacity_w=500.0, demand_w=400.0,
                        priority=0),
            ChildSignal(name="high", capacity_w=500.0, demand_w=400.0,
                        priority=5),
        ]
        low, high = apportion("priority", 400.0, children)
        assert high == pytest.approx(400.0)
        assert low == pytest.approx(0.0)

    def test_priority_leftover_flows_down(self):
        children = [
            ChildSignal(name="low", capacity_w=500.0, demand_w=100.0,
                        priority=0),
            ChildSignal(name="high", capacity_w=500.0, demand_w=100.0,
                        priority=5),
        ]
        low, high = apportion("priority", 800.0, children)
        # High fills to demand, then the leftover fills high to its
        # ceiling before low sees discretionary watts.
        assert high == pytest.approx(500.0)
        assert low == pytest.approx(300.0)

    def test_fault_cap_frees_watts_for_siblings(self):
        uncapped = apportion("uniform", 600.0, _children(400.0, 400.0))
        capped_children = [
            ChildSignal(name="c0", capacity_w=400.0, cap_w=100.0),
            ChildSignal(name="c1", capacity_w=400.0),
        ]
        capped = apportion("uniform", 600.0, capped_children)
        assert uncapped == pytest.approx((300.0, 300.0))
        assert capped == pytest.approx((100.0, 400.0))

    def test_broker_object_validates_policy(self):
        with pytest.raises(ValueError, match="unknown broker policy"):
            BudgetBroker("f", "facility", policy="bogus")


class TestClusterSpec:
    def test_rack_split_is_even_and_complete(self):
        spec = ClusterSpec(name="c", node_count=10, racks=4)
        counts = spec.rack_node_counts()
        assert sum(counts) == 10
        assert counts == (3, 3, 2, 2)

    def test_rejects_more_racks_than_nodes(self):
        with pytest.raises(ValueError, match="racks cannot exceed"):
            ClusterSpec(name="c", node_count=2, racks=4)

    def test_arrivals_are_fresh_and_deterministic(self):
        spec = ClusterSpec(name="c", node_count=8, jobs=3)
        a = cluster_arrivals(spec)
        b = cluster_arrivals(spec)
        assert [x.time_s for x in a] == [x.time_s for x in b]
        assert [x.request.name for x in a] == [x.request.name for x in b]
        # Fresh JobRequest objects every call (requests are stateful).
        assert all(x.request is not y.request for x, y in zip(a, b))


class TestFacilityConfig:
    def test_rejects_duplicate_cluster_names(self):
        spec = ClusterSpec(name="c", node_count=4)
        with pytest.raises(ValueError, match="unique"):
            FacilityConfig(clusters=(spec, spec))

    def test_rejects_both_budget_sources(self):
        from repro.workload.facility import FacilityTraceConfig

        with pytest.raises(ValueError, match="not both"):
            FacilityConfig(
                clusters=(ClusterSpec(name="c", node_count=4),),
                budget_w=1000.0, trace=FacilityTraceConfig(),
            )

    def test_epoch_grid_covers_horizon(self):
        config = FacilityConfig(
            clusters=(ClusterSpec(name="c", node_count=4),),
            budget_w=500.0, window_s=30.0, horizon_s=100.0,
        )
        assert config.epoch_times_s() == (0.0, 30.0, 60.0, 90.0)

    def test_constant_budget_series(self):
        config = FacilityConfig(
            clusters=(ClusterSpec(name="c", node_count=4),),
            budget_w=500.0, window_s=10.0, horizon_s=30.0,
        )
        assert facility_budget_series(config, 960.0) == (500.0,) * 3

    def test_trace_budget_series_rescales_to_capacity(self):
        from repro.workload.facility import (
            FacilityTraceConfig, generate_facility_trace,
        )

        trace_config = FacilityTraceConfig(days=2)
        config = FacilityConfig(
            clusters=(ClusterSpec(name="c", node_count=4),),
            trace=trace_config, window_s=300.0, horizon_s=900.0,
        )
        capacity_w = 1_000_000.0
        series = facility_budget_series(config, capacity_w)
        trace = generate_facility_trace(trace_config)
        assert len(series) == 3
        for i, value in enumerate(series):
            expected = trace.power_mw[i] / trace_config.rating_mw \
                * capacity_w
            assert value == pytest.approx(expected)
        assert all(0.0 < v < capacity_w for v in series)


class TestFacilityPlan:
    def _config(self, **overrides):
        specs = tuple(
            ClusterSpec(name=f"c{i}", node_count=8, nodes_per_job=2,
                        jobs=3, iterations=4, racks=2)
            for i in range(3)
        )
        defaults = dict(clusters=specs, budget_w=3 * 8 * 150.0,
                        window_s=10.0, horizon_s=40.0, seed=5)
        defaults.update(overrides)
        return FacilityConfig(**defaults)

    def test_rack_allocations_conserve_cluster_allocation(self):
        plan = _plan_facility(self._config())
        for i in range(3):
            for e in range(len(plan.epochs)):
                assert sum(plan.rack_allocations_w[i][e]) == pytest.approx(
                    plan.allocations_w[i][e]
                )

    def test_facility_allocations_conserve_budget(self):
        plan = _plan_facility(self._config())
        for e, budget in enumerate(plan.budgets_w):
            total = sum(plan.allocations_w[i][e] for i in range(3))
            assert total <= budget + 1e-6

    def test_constant_budget_composes_no_leaf_events(self):
        config = self._config()
        plan = _plan_facility(config)
        for i, spec in enumerate(config.clusters):
            assert _leaf_schedule(
                spec, plan.epochs, plan.allocations_w[i], config.name
            ) is None

    def test_cluster_budget_events_become_caps_not_leaf_events(self):
        specs = (
            ClusterSpec(
                name="capped", node_count=8,
                fault_schedule=FaultSchedule().budget_drop(15.0, 400.0),
            ),
            ClusterSpec(name="free", node_count=8),
        )
        # Budget below aggregate capacity so the sibling has headroom
        # to absorb the watts the feeder cap frees.
        config = FacilityConfig(clusters=specs, budget_w=3000.0,
                                window_s=10.0, horizon_s=40.0)
        plan = _plan_facility(config)
        capped = plan.allocations_w[0]
        free = plan.allocations_w[1]
        # Before the dip both split evenly; after it the capped cluster
        # holds at its feeder limit and the sibling absorbs the watts.
        assert capped[0] == pytest.approx(free[0])
        assert capped[2] == pytest.approx(400.0)
        assert free[2] > free[0]
        # The leaf replays the allocation steps, not the raw cap event.
        schedule = _leaf_schedule(specs[0], plan.epochs, capped,
                                  config.name)
        assert schedule is not None
        assert all(e.kind is FaultKind.BUDGET_CHANGE
                   for e in schedule.events)
        assert {e.budget_w for e in schedule.events} <= set(capped)

    def test_non_budget_faults_pass_through_to_leaf(self):
        spec = ClusterSpec(
            name="c", node_count=8,
            fault_schedule=FaultSchedule().node_failure(5.0, (1, 2)),
        )
        config = FacilityConfig(clusters=(spec,), budget_w=900.0,
                                window_s=10.0, horizon_s=20.0)
        plan = _plan_facility(config)
        schedule = _leaf_schedule(spec, plan.epochs,
                                  plan.allocations_w[0], config.name)
        assert schedule is not None
        kinds = [e.kind for e in schedule.events]
        assert kinds == [FaultKind.NODE_FAILURE]


class TestRunFacility:
    def test_end_to_end_aggregates(self):
        specs = tuple(
            ClusterSpec(name=f"c{i}", node_count=8, nodes_per_job=2,
                        jobs=3, iterations=4, racks=2)
            for i in range(2)
        )
        config = FacilityConfig(clusters=specs, budget_w=2 * 8 * 150.0,
                                window_s=10.0, horizon_s=30.0, seed=9)
        result = run_facility_simulation(config, workers=1)
        assert result.total_nodes == 16
        assert len(result.clusters) == 2
        assert len(result.epoch_s) == 3
        assert result.completed_jobs() == 6
        assert result.total_energy_j > 0.0
        assert result.mean_turnaround_s() > 0.0
        summary = result.summary()
        assert summary["nodes"] == 16.0
        assert summary["jobs_completed"] == 6.0
        assert summary["stranded_w"] >= 0.0

    def test_same_config_is_bit_identical(self):
        spec = ClusterSpec(name="c", node_count=8, nodes_per_job=2,
                           jobs=3, iterations=4, racks=2)
        config = FacilityConfig(clusters=(spec,), budget_w=900.0,
                                window_s=10.0, horizon_s=30.0, seed=2)
        assert run_facility_simulation(config, workers=1) == \
            run_facility_simulation(config, workers=1)
