"""Unit tests for the mix characterization bundle."""

import numpy as np
import pytest

from repro.characterization.mix_characterization import (
    MixCharacterization,
    characterize_mix,
)
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


def _mix(jobs_spec):
    jobs = tuple(
        Job(
            name=f"j{i}",
            config=KernelConfig(
                intensity=spec.get("intensity", 8.0),
                waiting_fraction=spec.get("waiting", 0.0),
                imbalance=spec.get("imbalance", 1),
            ),
            node_count=spec.get("nodes", 4),
        )
        for i, spec in enumerate(jobs_spec)
    )
    return WorkloadMix(name="m", jobs=jobs)


class TestValidation:
    def test_efficiency_shape_checked(self, execution_model):
        mix = _mix([{"nodes": 4}])
        with pytest.raises(ValueError, match="efficiencies"):
            characterize_mix(mix, np.ones(2), execution_model)

    def test_bad_harvest_fraction(self, execution_model):
        mix = _mix([{"nodes": 4}])
        with pytest.raises(ValueError, match="harvest_fraction"):
            characterize_mix(mix, np.ones(4), execution_model, harvest_fraction=0.0)

    def test_array_length_consistency(self):
        with pytest.raises(ValueError):
            MixCharacterization(
                mix_name="m",
                job_boundaries=np.array([0, 2]),
                monitor_power_w=np.ones(2),
                needed_power_w=np.ones(3),
                needed_cap_w=np.ones(2),
                min_cap_w=136.0,
                tdp_w=240.0,
            )

    def test_boundary_sentinel_checked(self):
        with pytest.raises(ValueError, match="sentinel"):
            MixCharacterization(
                mix_name="m",
                job_boundaries=np.array([0, 3]),
                monitor_power_w=np.ones(2),
                needed_power_w=np.ones(2),
                needed_cap_w=np.ones(2),
                min_cap_w=136.0,
                tdp_w=240.0,
            )


class TestBalancedJob:
    def test_needed_equals_monitor(self, execution_model):
        """Balanced jobs need all the power they draw (NeedUsedPower's
        defining property)."""
        mix = _mix([{"intensity": 8.0, "nodes": 4}])
        char = characterize_mix(mix, np.ones(4), execution_model)
        np.testing.assert_allclose(char.needed_power_w, char.monitor_power_w, rtol=1e-9)

    def test_monitor_matches_fig4(self, execution_model):
        mix = _mix([{"intensity": 8.0, "nodes": 4}])
        char = characterize_mix(mix, np.ones(4), execution_model)
        np.testing.assert_allclose(char.monitor_power_w, 232.0, atol=1.0)

    def test_waste_zero(self, execution_model):
        mix = _mix([{"intensity": 4.0, "nodes": 4}])
        char = characterize_mix(mix, np.ones(4), execution_model)
        np.testing.assert_allclose(char.waste_w(), 0.0, atol=1e-9)


class TestImbalancedJob:
    @pytest.fixture(scope="class")
    def char(self, execution_model):
        mix = _mix([{"intensity": 8.0, "waiting": 0.5, "imbalance": 3, "nodes": 8}])
        return characterize_mix(mix, np.ones(8), execution_model)

    def test_waiting_hosts_need_less(self, char):
        # First 4 hosts critical, last 4 waiting.
        assert char.needed_power_w[4:].max() < char.needed_power_w[:4].min()

    def test_critical_hosts_need_their_draw(self, char):
        np.testing.assert_allclose(
            char.needed_power_w[:4], char.monitor_power_w[:4], rtol=1e-9
        )

    def test_harvest_fraction_interpolates(self, execution_model):
        mix = _mix([{"intensity": 8.0, "waiting": 0.5, "imbalance": 3, "nodes": 8}])
        eff = np.ones(8)
        half = characterize_mix(mix, eff, execution_model, harvest_fraction=0.5)
        full = characterize_mix(mix, eff, execution_model, harvest_fraction=1.0)
        # Idealised balancer cuts deeper on waiting hosts.
        assert np.all(full.needed_power_w[4:] < half.needed_power_w[4:] - 1.0)
        # Monitor characterization is unaffected by the harvest setting.
        np.testing.assert_allclose(half.monitor_power_w, full.monitor_power_w)

    def test_needed_cap_in_rapl_range(self, char):
        assert np.all(char.needed_cap_w >= char.min_cap_w - 1e-9)
        assert np.all(char.needed_cap_w <= char.tdp_w + 1e-9)

    def test_fig5_vertical_band_effect(self, execution_model):
        """More waiting ranks -> lower job-mean needed power (the Fig. 5
        vertical bands)."""
        means = []
        for waiting in (0.25, 0.5, 0.75):
            mix = _mix([
                {"intensity": 8.0, "waiting": waiting, "imbalance": 2, "nodes": 8}
            ])
            char = characterize_mix(mix, np.ones(8), execution_model)
            means.append(float(np.mean(char.needed_power_w)))
        assert means[0] > means[1] > means[2]


class TestAggregates:
    def test_job_max_monitor(self, execution_model):
        mix = _mix([{"intensity": 8.0, "nodes": 2}, {"intensity": 1.0, "nodes": 2}])
        char = characterize_mix(mix, np.ones(4), execution_model)
        maxima = char.job_max_monitor_power_w()
        assert maxima.shape == (2,)
        assert maxima[0] > maxima[1]

    def test_host_job_index(self, execution_model):
        mix = _mix([{"nodes": 2}, {"nodes": 3}])
        char = characterize_mix(mix, np.ones(5), execution_model)
        np.testing.assert_array_equal(char.host_job_index(), [0, 0, 1, 1, 1])

    def test_job_slice(self, execution_model):
        mix = _mix([{"nodes": 2}, {"nodes": 3}])
        char = characterize_mix(mix, np.ones(5), execution_model)
        assert char.job_slice(1) == slice(2, 5)
        with pytest.raises(IndexError):
            char.job_slice(2)

    def test_variation_raises_inefficient_node_power(self, execution_model):
        mix = _mix([{"intensity": 8.0, "nodes": 2}])
        eff = np.array([0.9, 1.1])
        char = characterize_mix(mix, eff, execution_model)
        assert char.monitor_power_w[1] > char.monitor_power_w[0]
