"""Unit tests for the synthetic kernel model (paper §IV, Fig. 2)."""

import numpy as np
import pytest

from repro.workload.kernel import (
    INTENSITY_GRID,
    POLL_ACTIVITY_FACTOR,
    WAITING_IMBALANCE_GRID,
    KernelConfig,
    Precision,
    VectorWidth,
    activity_factor,
)


class TestGrids:
    def test_intensity_grid_matches_paper_rows(self):
        assert INTENSITY_GRID == (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

    def test_waiting_grid_matches_paper_columns(self):
        assert (0.0, 1) in WAITING_IMBALANCE_GRID
        assert (0.75, 3) in WAITING_IMBALANCE_GRID
        assert len(WAITING_IMBALANCE_GRID) == 7


class TestActivityFactor:
    def test_peaks_at_intensity_8(self):
        """Fig. 4's power peak sits at 8 FLOPs/byte."""
        grid = np.array([0.25, 0.5, 1, 2, 4, 8, 16, 32], dtype=float)
        kappas = activity_factor(grid)
        assert grid[np.argmax(kappas)] == 8.0
        assert kappas.max() == pytest.approx(1.0)

    def test_dips_at_intensity_1(self):
        """Fig. 4 shows the lowest power at 1 FLOP/byte (209 W row)."""
        grid = np.array([0.25, 0.5, 1, 2, 4], dtype=float)
        kappas = activity_factor(grid)
        assert grid[np.argmin(kappas)] == 1.0

    def test_zero_intensity_equals_pure_streaming(self):
        assert activity_factor(0.0) == activity_factor(0.125)

    def test_xmm_lower_than_ymm(self):
        ymm = activity_factor(8.0, VectorWidth.YMM)
        xmm = activity_factor(8.0, VectorWidth.XMM)
        assert xmm < ymm

    def test_sp_slightly_lower_than_dp(self):
        dp = activity_factor(8.0, precision=Precision.DOUBLE)
        sp = activity_factor(8.0, precision=Precision.SINGLE)
        assert sp < dp

    def test_bounded_in_unit_interval(self):
        grid = np.geomspace(0.01, 1000, 100)
        kappas = activity_factor(grid)
        assert np.all(kappas > 0)
        assert np.all(kappas <= 1.0)

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValueError):
            activity_factor(-1.0)

    def test_poll_activity_in_calibrated_band(self):
        """Busy-poll power sits inside the compute activity band, making
        uncapped power insensitive to the waiting fraction (Fig. 4)."""
        kappas = activity_factor(np.array(INTENSITY_GRID[1:]))
        assert kappas.min() - 0.05 < POLL_ACTIVITY_FACTOR < kappas.max()


class TestKernelConfig:
    def test_balanced_defaults(self):
        cfg = KernelConfig(intensity=4.0)
        assert cfg.imbalance == 1
        assert cfg.waiting_fraction == 0.0
        assert cfg.critical_node_fraction() == 1.0

    def test_rejects_waiting_without_imbalance(self):
        with pytest.raises(ValueError, match="cannot have waiting ranks"):
            KernelConfig(intensity=4.0, waiting_fraction=0.5)

    def test_rejects_imbalance_without_waiting(self):
        with pytest.raises(ValueError, match="someone must wait"):
            KernelConfig(intensity=4.0, imbalance=2)

    def test_rejects_imbalance_below_one(self):
        with pytest.raises(ValueError):
            KernelConfig(intensity=4.0, imbalance=0)

    def test_node_work_scales_with_imbalance(self):
        cfg = KernelConfig(intensity=4.0, waiting_fraction=0.5, imbalance=3)
        crit_bytes, crit_flops = cfg.node_work(critical=True)
        wait_bytes, wait_flops = cfg.node_work(critical=False)
        assert crit_bytes == pytest.approx(3 * wait_bytes)
        assert crit_flops == pytest.approx(3 * wait_flops)

    def test_flops_follow_intensity(self):
        cfg = KernelConfig(intensity=8.0, common_traffic_gb=2.0)
        assert cfg.common_flops_gflop == pytest.approx(16.0)

    def test_zero_intensity_zero_flops(self):
        cfg = KernelConfig(intensity=0.0)
        assert cfg.common_flops_gflop == 0.0

    def test_compute_ceiling_name(self):
        assert KernelConfig(intensity=1.0).compute_ceiling == "dp_fma_ymm"
        assert (
            KernelConfig(intensity=1.0, vector=VectorWidth.XMM).compute_ceiling
            == "dp_fma_xmm"
        )
        assert (
            KernelConfig(intensity=1.0, precision=Precision.SINGLE).compute_ceiling
            == "sp_fma_ymm"
        )

    def test_kappa_matches_function(self):
        cfg = KernelConfig(intensity=8.0)
        assert cfg.kappa == pytest.approx(float(activity_factor(8.0)))

    def test_label_balanced(self):
        assert KernelConfig(intensity=8.0).label() == "8f/b-ymm-balanced"

    def test_label_imbalanced(self):
        cfg = KernelConfig(intensity=16.0, waiting_fraction=0.75, imbalance=3)
        assert cfg.label() == "16f/b-ymm-75%w@3x"

    def test_grid_column_label(self):
        assert KernelConfig.grid_column_label(0.0, 1) == "0%"
        assert KernelConfig.grid_column_label(0.5, 2) == "50% at 2x"

    def test_frozen(self):
        cfg = KernelConfig(intensity=1.0)
        with pytest.raises(AttributeError):
            cfg.intensity = 2.0  # type: ignore[misc]


class TestVectorWidth:
    def test_bits(self):
        assert VectorWidth.XMM.bits == 128
        assert VectorWidth.YMM.bits == 256
