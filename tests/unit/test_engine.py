"""Unit tests for the execution-model physics (forward and inverse maps)."""

import numpy as np
import pytest

from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig, VectorWidth


def _layout(intensity=8.0, nodes=6, waiting=0.0, imbalance=1, vector=VectorWidth.YMM):
    job = Job(
        name="t",
        config=KernelConfig(
            intensity=intensity,
            waiting_fraction=waiting,
            imbalance=imbalance,
            vector=vector,
        ),
        node_count=nodes,
    )
    return WorkloadMix(name="t", jobs=(job,)).layout()


class TestForward:
    def test_frequencies_shape(self, execution_model):
        layout = _layout()
        caps = np.full(6, 200.0)
        f = execution_model.frequencies(caps, layout, np.ones(6))
        assert f.shape == (6,)

    def test_higher_caps_never_slower(self, execution_model):
        layout = _layout()
        eff = np.ones(6)
        f_low = execution_model.frequencies(np.full(6, 150.0), layout, eff)
        f_high = execution_model.frequencies(np.full(6, 230.0), layout, eff)
        assert np.all(f_high >= f_low)

    def test_compute_time_positive(self, execution_model):
        layout = _layout()
        t = execution_model.compute_time(np.full(6, 2.0), layout)
        assert np.all(t > 0)

    def test_compute_time_decreases_with_freq_when_compute_bound(self, execution_model):
        layout = _layout(intensity=32.0)
        t_slow = execution_model.compute_time(np.full(6, 1.2), layout)
        t_fast = execution_model.compute_time(np.full(6, 2.2), layout)
        assert np.all(t_fast < t_slow)

    def test_zero_intensity_time_is_memory_time(self, execution_model):
        layout = _layout(intensity=0.0)
        t = execution_model.compute_time(np.full(6, 2.1), layout)
        bw = execution_model.roofline.bandwidth("DRAM").bw_gbps
        assert t[0] == pytest.approx(layout.traffic_gb[0] / bw)

    def test_critical_hosts_take_longer(self, execution_model):
        layout = _layout(waiting=0.5, imbalance=3)
        t = execution_model.compute_time(np.full(6, 2.0), layout)
        assert t[layout.critical].min() > t[~layout.critical].max()

    def test_compute_power_at_most_activity_limit(self, execution_model):
        layout = _layout()
        eff = np.ones(6)
        p = execution_model.compute_power(np.full(6, 240.0), layout, eff)
        uncapped = execution_model.power_model.uncapped_power(layout.kappa, eff)
        np.testing.assert_allclose(p, uncapped)

    def test_poll_power_below_compute_power_uncapped(self, execution_model):
        """At the hottest configuration the poll loop draws less than the
        compute phase."""
        layout = _layout(intensity=8.0)
        eff = np.ones(6)
        caps = np.full(6, 240.0)
        p_poll = execution_model.poll_power(caps, layout, eff)
        p_comp = execution_model.compute_power(caps, layout, eff)
        assert np.all(p_poll < p_comp)


class TestInverse:
    def test_required_frequency_meets_target(self, execution_model):
        """Running at the required frequency hits the target time (when
        the target is reachable inside the DVFS band)."""
        layout = _layout(intensity=16.0)
        t_at_base = execution_model.compute_time(np.full(6, 2.0), layout)
        target = t_at_base * 1.25  # slower target => lower freq suffices
        f_req = execution_model.required_frequency(layout, target)
        t_check = execution_model.compute_time(f_req, layout)
        np.testing.assert_allclose(t_check, target, rtol=1e-6)

    def test_required_frequency_clamps_to_band(self, execution_model):
        layout = _layout(intensity=16.0)
        spec = execution_model.power_model.spec
        f_fast = execution_model.required_frequency(layout, 1e-9)
        f_slow = execution_model.required_frequency(layout, 1e9)
        np.testing.assert_allclose(f_fast, spec.turbo_freq_ghz)
        np.testing.assert_allclose(f_slow, spec.min_freq_ghz)

    def test_required_frequency_rejects_nonpositive_target(self, execution_model):
        layout = _layout()
        with pytest.raises(ValueError):
            execution_model.required_frequency(layout, 0.0)

    def test_required_power_monotone_in_target(self, execution_model):
        """Tighter deadlines need more power."""
        layout = _layout(intensity=16.0)
        eff = np.ones(6)
        p_tight = execution_model.required_power(layout, 0.05, eff)
        p_loose = execution_model.required_power(layout, 0.5, eff)
        assert np.all(p_tight >= p_loose)

    def test_memory_bound_requires_little_frequency(self, execution_model):
        """A DRAM-bound kernel's bandwidth requirement is mostly
        frequency-insensitive, so generous targets need minimum freq."""
        layout = _layout(intensity=0.25)
        t_base = execution_model.compute_time(np.full(6, 2.1), layout)
        f_req = execution_model.required_frequency(layout, t_base * 2.0)
        spec = execution_model.power_model.spec
        np.testing.assert_allclose(f_req, spec.min_freq_ghz)


class TestJobCriticalTime:
    def test_balanced_job(self, execution_model):
        layout = _layout(nodes=4)
        caps = np.full(4, 200.0)
        t_crit = execution_model.job_critical_time(caps, layout, np.ones(4))
        t = execution_model.compute_time(
            execution_model.frequencies(caps, layout, np.ones(4)), layout
        )
        assert t_crit[0] == pytest.approx(t.max())

    def test_two_jobs_independent(self, execution_model):
        jobs = (
            Job(name="a", config=KernelConfig(intensity=32.0), node_count=3),
            Job(name="b", config=KernelConfig(intensity=0.25), node_count=3),
        )
        layout = WorkloadMix(name="m", jobs=jobs).layout()
        caps = np.full(6, 220.0)
        t_crit = execution_model.job_critical_time(caps, layout, np.ones(6))
        assert t_crit.shape == (2,)
        assert t_crit[0] != t_crit[1]
