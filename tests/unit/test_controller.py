"""Unit tests for the runtime controller."""

import numpy as np
import pytest

from repro.runtime.controller import Controller
from repro.runtime.monitor import MonitorAgent
from repro.runtime.power_balancer import PowerBalancerAgent
from repro.runtime.power_governor import PowerGovernorAgent
from repro.workload.job import Job
from repro.workload.kernel import KernelConfig


def _job(nodes=5, intensity=8.0, waiting=0.0, imbalance=1):
    return Job(
        name="ctl",
        config=KernelConfig(
            intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
        ),
        node_count=nodes,
    )


class TestValidation:
    def test_efficiency_shape_checked(self):
        with pytest.raises(ValueError, match="efficiencies"):
            Controller(_job(nodes=5), np.ones(3), MonitorAgent())

    def test_initial_limit_shape_checked(self):
        ctl = Controller(_job(nodes=5), np.ones(5), MonitorAgent())
        with pytest.raises(ValueError, match="initial limits"):
            ctl.run(initial_limits_w=np.ones(2))

    def test_bad_epoch_budget(self):
        ctl = Controller(_job(nodes=5), np.ones(5), MonitorAgent())
        with pytest.raises(ValueError):
            ctl.run(max_epochs=0)

    def test_steady_state_before_run_raises(self):
        ctl = Controller(_job(), np.ones(5), MonitorAgent())
        with pytest.raises(RuntimeError):
            ctl.steady_state_sample()
        with pytest.raises(RuntimeError):
            ctl.final_limits_w()


class TestMonitorRun:
    def test_report_covers_all_hosts(self):
        ctl = Controller(_job(nodes=5), np.ones(5), MonitorAgent())
        report = ctl.run(max_epochs=4, min_epochs=4)
        assert report.host_count == 5
        assert report.agent == "monitor"
        assert all(h.epochs == 4 for h in report.hosts)

    def test_monitor_keeps_tdp_limits(self):
        ctl = Controller(_job(nodes=3), np.ones(3), MonitorAgent())
        ctl.run(max_epochs=3, min_epochs=3)
        np.testing.assert_allclose(ctl.final_limits_w(), 240.0)

    def test_monitor_power_matches_uncapped_draw(self, execution_model):
        """The report's mean power equals the analytic uncapped draw for a
        balanced job (the Fig. 4 measurement)."""
        job = _job(nodes=3, intensity=8.0)
        ctl = Controller(job, np.ones(3), MonitorAgent(), model=execution_model)
        report = ctl.run(max_epochs=3, min_epochs=3)
        expected = execution_model.power_model.uncapped_power(job.config.kappa)
        # The per-iteration barrier overhead is spent polling at slightly
        # lower activity, shaving a fraction of a watt off the mean.
        np.testing.assert_allclose(report.mean_power_w(), expected, rtol=3e-3)

    def test_noise_seed_reproducible(self):
        a = Controller(_job(), np.ones(5), MonitorAgent(), noise_std=0.01, seed=3)
        b = Controller(_job(), np.ones(5), MonitorAgent(), noise_std=0.01, seed=3)
        ra = a.run(max_epochs=3, min_epochs=3)
        rb = b.run(max_epochs=3, min_epochs=3)
        np.testing.assert_array_equal(ra.runtime_s(), rb.runtime_s())


class TestGovernorRun:
    def test_limits_follow_budget(self):
        agent = PowerGovernorAgent(job_budget_w=5 * 180.0)
        ctl = Controller(_job(nodes=5), np.ones(5), agent)
        ctl.run(max_epochs=3, min_epochs=3)
        np.testing.assert_allclose(ctl.final_limits_w(), 180.0)


class TestBalancerRun:
    def test_converges_within_budget(self):
        job = _job(nodes=6, intensity=16.0, waiting=0.5, imbalance=3)
        agent = PowerBalancerAgent(job_budget_w=6 * 240.0)
        ctl = Controller(job, np.ones(6), agent)
        ctl.run(max_epochs=200)
        assert agent.converged()

    def test_waiting_hosts_end_lower(self):
        job = _job(nodes=6, intensity=16.0, waiting=0.5, imbalance=3)
        agent = PowerBalancerAgent(job_budget_w=6 * 240.0)
        ctl = Controller(job, np.ones(6), agent)
        ctl.run(max_epochs=200)
        limits = ctl.final_limits_w()
        n_crit = job.critical_node_count()
        assert limits[n_crit:].max() < limits[:n_crit].min()

    def test_epoch_history_recorded(self):
        job = _job(nodes=4)
        agent = PowerBalancerAgent(job_budget_w=4 * 240.0)
        ctl = Controller(job, np.ones(4), agent)
        ctl.run(max_epochs=50)
        assert len(ctl.history) >= 3
        assert ctl.history[0].epoch == 0

    def test_figure_of_merit_is_mean_epoch_time(self):
        ctl = Controller(_job(nodes=3), np.ones(3), MonitorAgent())
        report = ctl.run(max_epochs=4, min_epochs=4)
        times = [rec.sample.epoch_time_s for rec in ctl.history]
        assert report.figure_of_merit == pytest.approx(float(np.mean(times)))
