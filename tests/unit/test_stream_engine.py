"""Unit tests: the discrete-event core and the rolling stream engine."""

import pytest

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival
from repro.stream.arrivals import (
    burst_stream,
    poisson_stream,
    replay_stream,
    synthetic_job_factory,
)
from repro.stream.engine import SiteStreamEngine, stream_site_simulation
from repro.stream.events import EventKind, EventLoop
from repro.workload.kernel import KernelConfig


@pytest.fixture()
def cluster():
    return Cluster(node_count=12, variation=None, seed=0)


def _engine(cluster, **kwargs):
    kwargs.setdefault("rolling", True)
    return SiteStreamEngine(
        cluster, create_policy("StaticCaps"), 2500.0, **kwargs
    )


def _request(name, nodes=4, hint=180.0, iterations=10):
    return JobRequest(
        name=name, config=KernelConfig(intensity=8.0),
        node_count=nodes, iterations=iterations, power_hint_w=hint,
    )


class TestEventLoop:
    def test_orders_by_time(self):
        loop = EventLoop()
        loop.push(5.0, EventKind.ARRIVAL, tag="late")
        loop.push(1.0, EventKind.ARRIVAL, tag="early")
        loop.push(3.0, EventKind.ARRIVAL, tag="middle")
        tags = [loop.pop().payload["tag"] for _ in range(3)]
        assert tags == ["early", "middle", "late"]

    def test_kind_priority_breaks_time_ties(self):
        """At one instant: budget applies, completions free capacity,
        arrivals land, telemetry observes — in that order."""
        loop = EventLoop()
        loop.push(2.0, EventKind.TELEMETRY_TICK)
        loop.push(2.0, EventKind.ARRIVAL)
        loop.push(2.0, EventKind.BATCH_COMPLETE)
        loop.push(2.0, EventKind.BUDGET_CHANGE)
        kinds = [loop.pop().kind for _ in range(4)]
        assert kinds == [
            EventKind.BUDGET_CHANGE, EventKind.BATCH_COMPLETE,
            EventKind.ARRIVAL, EventKind.TELEMETRY_TICK,
        ]

    def test_sequence_preserves_submission_order(self):
        loop = EventLoop()
        for i in range(5):
            loop.push(1.0, EventKind.ARRIVAL, index=i)
        order = [loop.pop().payload["index"] for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_pop_empty_raises(self):
        loop = EventLoop()
        assert loop.peek() is None
        assert loop.peek_time() is None
        with pytest.raises(IndexError):
            loop.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().push(-1.0, EventKind.ARRIVAL)


class TestArrivalStreams:
    def test_replay_stream_sorts(self):
        arrivals = [
            Arrival(time_s=3.0, request=_request("b")),
            Arrival(time_s=1.0, request=_request("a")),
        ]
        assert [a.request.name for a in replay_stream(arrivals)] == ["a", "b"]

    def test_poisson_stream_rate_and_window(self):
        arrivals = list(poisson_stream(
            2.0, 500.0, synthetic_job_factory(), seed=1
        ))
        assert all(0.0 < a.time_s < 500.0 for a in arrivals)
        assert [a.request.name for a in arrivals[:2]] == \
            ["stream-0", "stream-1"]
        # Law of large numbers, loosely: ~1000 arrivals expected.
        assert 800 < len(arrivals) < 1200

    def test_poisson_stream_deterministic_per_seed(self):
        factory = synthetic_job_factory()
        a = [x.time_s for x in poisson_stream(1.0, 50.0, factory, seed=9)]
        b = [x.time_s for x in poisson_stream(1.0, 50.0, factory, seed=9)]
        assert a == b

    def test_burst_stream_shape(self):
        arrivals = list(burst_stream(3, 10.0, 2, synthetic_job_factory()))
        assert len(arrivals) == 6
        assert [a.time_s for a in arrivals] == [0.0] * 3 + [10.0] * 3


class TestRollingEngine:
    def test_sustained_stream_completes_everything(self, cluster):
        engine = _engine(cluster)
        engine.attach_source(poisson_stream(
            0.5, 60.0, synthetic_job_factory(), seed=2
        ))
        stats = engine.run()
        assert stats.arrivals > 0
        assert stats.jobs_completed == stats.arrivals
        assert stats.rejected == 0
        assert not engine.queue.pending()

    def test_backpressure_rejects_past_max_pending(self, cluster):
        engine = _engine(cluster, max_pending=4)
        engine.attach_source(burst_stream(
            20, 1.0, 1, synthetic_job_factory(node_count=4)
        ))
        stats = engine.run()
        assert stats.rejected > 0
        assert stats.arrivals == 20
        assert stats.peak_pending <= 4
        # Rejected jobs are rejected, not lost track of: accepted ones
        # all complete.
        assert stats.jobs_completed == 20 - stats.rejected

    def test_mid_stream_budget_change_applies(self, cluster):
        """A budget drop mid-stream shrinks concurrent admission."""
        lo = _engine(cluster, record_batches=True)
        lo.attach_source(burst_stream(
            6, 1.0, 1, synthetic_job_factory(node_count=4, power_hint_w=200.0)
        ))
        lo.set_budget(850.0, time_s=0.0)
        lo.run()
        # 850 W usable admits one 800 W job at a time (4 nodes x 200 W).
        assert lo.stats.peak_in_flight == 1
        hi = _engine(cluster, record_batches=True)
        hi.attach_source(burst_stream(
            6, 1.0, 1, synthetic_job_factory(node_count=4, power_hint_w=200.0)
        ))
        hi.run()
        assert hi.stats.peak_in_flight > 1
        # Every batch was launched within the budget in force.
        assert all(b.budget_w <= 850.0 + 1e-6 for b in lo.batches)

    def test_budget_raise_mid_stream_unblocks(self, cluster):
        engine = _engine(cluster)
        engine.attach_source(burst_stream(
            4, 1.0, 1, synthetic_job_factory(node_count=4, power_hint_w=200.0)
        ))
        engine.set_budget(850.0, time_s=0.0)
        engine.set_budget(3000.0, time_s=5.0)
        stats = engine.run()
        assert stats.jobs_completed == 4
        assert engine.budget_w == 3000.0

    def test_bounded_memory_forgets_terminal_jobs(self, cluster):
        engine = _engine(cluster, record_jobs=False, record_batches=False)
        engine.attach_source(poisson_stream(
            1.0, 120.0, synthetic_job_factory(), seed=3
        ))
        stats = engine.run()
        assert stats.jobs_completed > 0
        # Terminal jobs were forgotten, aggregates kept.
        assert len(engine.queue) == 0
        assert engine.batches == []
        assert engine.turnaround_s == {}
        assert stats.peak_tracked_jobs < stats.arrivals
        assert stats.mean_turnaround_s() > 0.0

    def test_unschedulable_head_fails_not_livelocks(self, cluster):
        engine = _engine(cluster)
        engine.submit(_request("whale", nodes=24))
        engine.submit(_request("ok", nodes=4))
        stats = engine.run()
        assert stats.jobs_failed == 1
        assert "whale" in engine.failed
        assert stats.jobs_completed == 1

    def test_submit_clamps_into_the_present(self, cluster):
        engine = _engine(cluster)
        engine.submit(_request("early"))
        engine.run()
        assert engine.clock > 0.0
        t = engine.submit(_request("past"), time_s=0.0)
        assert t == engine.clock

    def test_telemetry_ticks_fire_and_stop(self, cluster):
        from repro import telemetry

        engine = _engine(cluster, tick_interval_s=5.0)
        engine.attach_source(burst_stream(
            3, 1.0, 1, synthetic_job_factory(node_count=4)
        ))
        ticks = []
        token = telemetry.get_bus().subscribe(
            ticks.append, kinds=["tick"], sources=["stream.engine"]
        )
        try:
            engine.run()
        finally:
            telemetry.get_bus().unsubscribe(token)
        assert ticks, "no telemetry ticks observed"
        assert not engine.loop, "ticks must not keep the timeline alive"

    def test_run_requires_rolling_and_replay_requires_drain(self, cluster):
        with pytest.raises(ValueError):
            _engine(cluster, rolling=False).run()
        with pytest.raises(ValueError):
            _engine(cluster, rolling=True).replay()

    def test_reservations_respect_budget(self, cluster):
        """Sum of concurrent batch budgets never exceeds the facility
        budget in force at their launches."""
        engine = _engine(cluster, record_batches=True)
        engine.attach_source(burst_stream(
            8, 1.0, 1, synthetic_job_factory(node_count=2, power_hint_w=220.0)
        ))
        engine.run()
        assert engine.stats.peak_in_flight >= 2
        assert all(b.budget_w <= 2500.0 + 1e-6 for b in engine.batches)


class TestReplayEdgeCases:
    def test_empty_arrivals_rejected(self, cluster):
        with pytest.raises(ValueError, match="at least one arrival"):
            stream_site_simulation(
                [], cluster, create_policy("StaticCaps"), 2500.0
            )

    def test_attach_source_twice_rejected(self, cluster):
        engine = _engine(cluster)
        engine.attach_source(burst_stream(
            1, 1.0, 1, synthetic_job_factory()
        ))
        with pytest.raises(ValueError, match="already attached"):
            engine.attach_source(burst_stream(
                1, 1.0, 1, synthetic_job_factory()
            ))


class TestEventRepush:
    def test_repush_rearms_a_delivered_event(self):
        loop = EventLoop()
        event = loop.push(1.0, EventKind.ARRIVAL, name="a")
        popped = loop.pop()
        assert popped is event
        loop.repush(popped, 4.0)
        again = loop.pop()
        assert again is event
        assert again.time_s == 4.0
        assert again.payload == {"name": "a"}

    def test_repush_keeps_kind_priority(self):
        loop = EventLoop()
        arrival = loop.push(1.0, EventKind.ARRIVAL)
        loop.pop()
        loop.repush(arrival, 2.0)
        loop.push(2.0, EventKind.BATCH_COMPLETE)
        assert loop.pop().kind is EventKind.BATCH_COMPLETE
        assert loop.pop() is arrival


class TestBatchedPhysicsKnobs:
    def test_knobs_require_rolling(self, cluster):
        for kwargs in (
            {"batched_physics": True},
            {"per_job_batches": True},
            {"admission_interval_s": 2.0},
        ):
            with pytest.raises(ValueError, match="rolling"):
                _engine(cluster, rolling=False, **kwargs)

    def test_admission_interval_must_be_positive(self, cluster):
        with pytest.raises(ValueError):
            _engine(cluster, admission_interval_s=0.0)
        with pytest.raises(ValueError):
            _engine(cluster, admission_interval_s=-1.0)

    def test_quantised_admission_piles_up_concurrency(self, cluster):
        engine = _engine(
            cluster, batched_physics=True, admission_interval_s=2.0,
            per_job_batches=True,
        )
        engine.attach_source(burst_stream(
            5, 0.5, 2, synthetic_job_factory(node_count=2, power_hint_w=120.0)
        ))
        stats = engine.run()
        assert stats.jobs_completed == 10
        assert stats.peak_in_flight >= 2

    def test_batched_run_matches_scalar_run(self, cluster):
        def run(batched):
            engine = _engine(
                cluster, record_batches=True,
                batched_physics=batched, admission_interval_s=3.0,
                per_job_batches=True,
            )
            engine.attach_source(poisson_stream(
                0.5, 60.0, synthetic_job_factory(node_count=2), seed=4
            ))
            stats = engine.run()
            return stats, engine.batches, engine.turnaround_s

        stats_b, batches_b, turn_b = run(True)
        stats_s, batches_s, turn_s = run(False)
        assert stats_b == stats_s
        assert batches_b == batches_s
        assert turn_b == turn_s
