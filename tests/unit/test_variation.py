"""Unit tests for the manufacturing-variation model (paper Fig. 6)."""

import numpy as np
import pytest

from repro.hardware.variation import (
    QUARTZ_VARIATION,
    VariationComponent,
    VariationModel,
)


class TestComponent:
    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            VariationComponent("x", 0.0, 1.0, 0.01)

    def test_rejects_nonpositive_std(self):
        with pytest.raises(ValueError):
            VariationComponent("x", 0.5, 1.0, 0.0)


class TestModel:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            VariationModel(
                components=(
                    VariationComponent("a", 0.5, 1.0, 0.01),
                    VariationComponent("b", 0.6, 1.1, 0.01),
                )
            )

    def test_needs_components(self):
        with pytest.raises(ValueError):
            VariationModel(components=())

    def test_quartz_weights_sum(self):
        total = sum(c.weight for c in QUARTZ_VARIATION.components)
        assert total == pytest.approx(1.0)

    def test_labels(self):
        assert QUARTZ_VARIATION.component_labels() == ("high", "medium", "low")


class TestSampling:
    def test_sample_count(self, rng):
        draws = QUARTZ_VARIATION.sample(500, rng)
        assert draws.shape == (500,)

    def test_sample_floor(self, rng):
        draws = QUARTZ_VARIATION.sample(10000, rng)
        assert np.all(draws >= 0.8)

    def test_sample_deterministic_per_seed(self):
        a = QUARTZ_VARIATION.sample(100, np.random.default_rng(5))
        b = QUARTZ_VARIATION.sample(100, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_sample_mean_near_population_mean(self, rng):
        draws = QUARTZ_VARIATION.sample(50000, rng)
        expected = sum(c.weight * c.mean for c in QUARTZ_VARIATION.components)
        assert np.mean(draws) == pytest.approx(expected, abs=0.005)

    def test_trimodal_structure(self, rng):
        """The three component modes are distinguishable in a big draw."""
        draws = QUARTZ_VARIATION.sample(30000, rng)
        near_high = np.mean(np.abs(draws - 0.90) < 0.05)
        near_med = np.mean(np.abs(draws - 1.00) < 0.05)
        near_low = np.mean(np.abs(draws - 1.105) < 0.05)
        assert near_high > 0.2
        assert near_med > 0.4
        assert near_low > 0.2

    def test_rejects_nonpositive_count(self, rng):
        with pytest.raises(ValueError):
            QUARTZ_VARIATION.sample(0, rng)
