"""Unit tests for the figure and table data builders."""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig1_facility_data,
    fig2_phase_timeline,
    fig3_roofline_data,
    fig6_survey_data,
    fig7_power_utilization,
    fig8_savings_grid,
)
from repro.experiments.tables import (
    table1_system_properties,
    table2_mixes,
    table3_budgets,
)
from repro.workload.kernel import KernelConfig


class TestFig1:
    def test_statistics(self):
        data = fig1_facility_data()
        stats = data["statistics"]
        assert stats["rating_mw"] == pytest.approx(1.35)
        assert stats["mean_mw"] == pytest.approx(0.83, abs=0.03)
        assert stats["peak_mw"] < 1.35


class TestFig2:
    def test_phase_split(self):
        data = fig2_phase_timeline()
        assert data["iteration_time_s"] > data["common_work_time_s"]
        assert data["slack_time_s"] == pytest.approx(
            data["iteration_time_s"] - data["common_work_time_s"]
        )

    def test_balanced_config_no_slack(self):
        data = fig2_phase_timeline(KernelConfig(intensity=8.0))
        assert data["slack_time_s"] == pytest.approx(0.0, abs=1e-12)


class TestFig3:
    def test_kernel_points_on_envelope(self):
        data = fig3_roofline_data()
        for intensity, gflops in zip(data["kernel_intensity"], data["kernel_gflops"]):
            envelope = np.interp(intensity, data["intensity"], data["attainable"])
            assert gflops == pytest.approx(envelope, rel=0.05)

    def test_spans_memory_and_compute_regions(self):
        """The kernel covers DRAM-bound and FMA-bound ends (the paper's
        'full spectrum of achievable throughput')."""
        data = fig3_roofline_data()
        low = data["kernel_gflops"][0]
        high = data["kernel_gflops"][-1]
        dram_bw = 12.44
        fma_peak = 38.49
        assert low == pytest.approx(0.25 * dram_bw, rel=1e-6)
        assert high == pytest.approx(fma_peak, rel=1e-6)


class TestFig6:
    def test_cluster_structure(self, small_grid):
        data = fig6_survey_data(small_grid)
        assert set(data["clusters"]) == {"low", "medium", "high"}
        assert data["clusters"]["low"]["mean_ghz"] < data["clusters"]["high"]["mean_ghz"]

    def test_survey_cap(self, small_grid):
        assert fig6_survey_data(small_grid)["cap_w"] == pytest.approx(140.0)


class TestFig7:
    def test_structure(self, small_grid_results):
        util = fig7_power_utilization(small_grid_results)
        assert set(util) == {
            "NeedUsedPower", "HighImbalance", "WastefulPower",
            "LowPower", "HighPower", "RandomLarge",
        }
        assert set(util["LowPower"]) == {"min", "ideal", "max"}

    def test_precharacterized_exceeds_budget_at_min(self, small_grid_results):
        util = fig7_power_utilization(small_grid_results)
        over = [
            util[mix]["min"]["Precharacterized"] > 1.0
            for mix in util
        ]
        assert all(over)

    def test_system_aware_policies_within_budget(self, small_grid_results):
        util = fig7_power_utilization(small_grid_results)
        for mix, levels in util.items():
            for level, policies in levels.items():
                for name in ("StaticCaps", "MinimizeWaste", "MixedAdaptive"):
                    assert policies[name] <= 1.0 + 1e-6, (mix, level, name)


class TestFig8:
    def test_grid_complete(self, small_grid_results):
        grid = fig8_savings_grid(small_grid_results)
        assert len(grid) == 54


class TestTables:
    def test_table1(self):
        t = table1_system_properties()
        assert t["Cores Per Node"] == "36"
        assert "120 W" in t["Thermal Design Power"]
        assert "68 W" in t["Minimum RAPL Limit"]
        assert "2.1 GHz" in t["Base Frequency"]

    def test_table2_row_count(self, small_grid):
        rows = table2_mixes(small_grid)
        # 5 mixes x 9 jobs + HighImbalance x 1 job.
        assert len(rows) == 5 * 9 + 1

    def test_table2_row_schema(self, small_grid):
        row = table2_mixes(small_grid)[0]
        for key in ("mix", "job", "intensity_flop_per_byte", "vector",
                    "waiting_pct", "imbalance", "nodes"):
            assert key in row

    def test_table3_budgets_ordered(self, small_grid):
        for row in table3_budgets(small_grid):
            assert row["min_kw"] <= row["ideal_kw"] <= row["max_kw"]
            assert row["max_kw"] <= row["total_tdp_kw"] + 1e-9

    def test_table3_tdp_footnote(self, small_grid):
        """TDP of all CPUs: hosts x 240 W (216 kW at paper scale)."""
        row = table3_budgets(small_grid)[0]
        hosts = small_grid.config.nodes_per_job * small_grid.config.jobs_per_mix
        assert row["total_tdp_kw"] == pytest.approx(hosts * 240.0 / 1e3)
