"""Unit tests for the configuration catalog and its rankings."""

import pytest

from repro.workload.catalog import ConfigCatalog
from repro.workload.kernel import VectorWidth


class TestBuild:
    def test_full_universe_size(self, catalog):
        """9 intensities x 2 vectors x 7 waiting/imbalance columns."""
        assert len(catalog) == 126

    def test_all_configs_unique(self, catalog):
        seen = {
            (c.intensity, c.vector, c.waiting_fraction, c.imbalance)
            for c in catalog
        }
        assert len(seen) == 126

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConfigCatalog(configs=())

    def test_find_exact(self, catalog):
        cfg = catalog.find(8.0, VectorWidth.YMM, 0.5, 2)
        assert cfg.intensity == 8.0
        assert cfg.waiting_fraction == 0.5

    def test_find_missing_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.find(3.14)


class TestPowerRanking:
    def test_compute_power_matches_fig4(self, catalog):
        """Balanced ymm compute powers reproduce the Fig. 4 0% column."""
        expected = {0.25: 214, 0.5: 212, 1.0: 209, 2.0: 213, 4.0: 223,
                    8.0: 232, 16.0: 222, 32.0: 216}
        for intensity, watts in expected.items():
            cfg = catalog.find(intensity)
            assert catalog.uncapped_power_w(cfg) == pytest.approx(watts, abs=1.5)

    def test_mean_monitor_below_compute_for_waiting(self, catalog):
        """Waiting jobs average in (cheaper) poll time."""
        balanced = catalog.find(8.0)
        waiting = catalog.find(8.0, VectorWidth.YMM, 0.75, 3)
        assert catalog.mean_monitor_power_w(waiting) < catalog.mean_monitor_power_w(
            balanced
        )

    def test_mean_monitor_equals_compute_for_balanced(self, catalog):
        cfg = catalog.find(4.0)
        assert catalog.mean_monitor_power_w(cfg) == pytest.approx(
            catalog.uncapped_power_w(cfg)
        )

    def test_fig4_insensitivity_to_imbalance(self, catalog):
        """Uncapped mean power varies only a few watts across the waiting
        columns (the paper's Fig. 4 observation)."""
        base = catalog.mean_monitor_power_w(catalog.find(8.0))
        worst = catalog.mean_monitor_power_w(catalog.find(8.0, VectorWidth.YMM, 0.75, 3))
        assert abs(base - worst) < 13.0

    def test_ranked_order(self, catalog):
        ranked = catalog.ranked_by_power()
        powers = [catalog.mean_monitor_power_w(c) for c in ranked]
        assert powers == sorted(powers)

    def test_lowest_highest_disjoint(self, catalog):
        low = set(id(c) for c in catalog.lowest_power(9))
        high = set(id(c) for c in catalog.highest_power(9))
        assert not low & high

    def test_lowest_are_xmm(self, catalog):
        """Narrow vectors draw the least power."""
        for cfg in catalog.lowest_power(9):
            assert cfg.vector is VectorWidth.XMM

    def test_highest_contains_peak_config(self, catalog):
        labels = [c.label() for c in catalog.highest_power(9)]
        assert "8f/b-ymm-balanced" in labels


class TestSelection:
    def test_random_selection_deterministic(self, catalog):
        a = catalog.random_selection(9, seed=77)
        b = catalog.random_selection(9, seed=77)
        assert [c.label() for c in a] == [c.label() for c in b]

    def test_random_selection_differs_by_seed(self, catalog):
        a = catalog.random_selection(9, seed=1)
        b = catalog.random_selection(9, seed=2)
        assert [c.label() for c in a] != [c.label() for c in b]

    def test_select_predicate(self, catalog):
        balanced = catalog.select(lambda c: c.imbalance == 1)
        assert len(balanced) == 18  # 9 intensities x 2 vectors
