"""Unit tests for the ASCII renderers."""

import numpy as np
import pytest

from repro.analysis.render import (
    render_bar_grid,
    render_heatmap,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        out = render_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "b" in out
        assert "3" in out and "4" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_column_alignment(self):
        out = render_table(["col"], [["x"], ["longer"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width


class TestRenderHeatmap:
    def test_layout(self):
        values = np.array([[214.0, 215.0], [209.0, 210.0]])
        out = render_heatmap(["0.25", "1"], ["0%", "25% at 2x"], values)
        assert "214" in out
        assert "25% at 2x" in out

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_heatmap(["a"], ["b", "c"], np.ones((2, 2)))

    def test_custom_format(self):
        out = render_heatmap(["r"], ["c"], np.array([[1.234]]), fmt="{:.2f}")
        assert "1.23" in out


class TestRenderBarGrid:
    def test_positive_and_negative_bars(self):
        out = render_bar_grid({"g": {"up": 5.0, "down": -5.0}})
        assert "#" in out
        assert "-" in out

    def test_group_headers(self):
        out = render_bar_grid({"min": {"a": 1.0}, "max": {"a": 2.0}})
        assert "[min]" in out and "[max]" in out

    def test_scales_to_peak(self):
        out = render_bar_grid({"g": {"big": 10.0, "small": 1.0}}, width=10)
        lines = [l for l in out.splitlines() if "|" in l]
        big_bar = lines[0].split("|")[1]
        small_bar = lines[1].split("|")[1]
        assert len(big_bar) == 10
        assert len(small_bar) == 1

    def test_all_zero_safe(self):
        out = render_bar_grid({"g": {"a": 0.0}})
        assert "+0.0%" in out


class TestRenderSeries:
    def test_tabulates(self):
        out = render_series([1.0, 2.0], {"y": [10.0, 20.0]}, x_label="x")
        assert "x" in out and "y" in out
        assert "20" in out
