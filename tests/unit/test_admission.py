"""Unit tests for power-aware admission control."""

import pytest

from repro.manager.admission import PowerAwareAdmission
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.workload.kernel import KernelConfig


def _request(name, nodes=4, intensity=8.0, hint=None, waiting=0.0, imbalance=1):
    return JobRequest(
        name=name,
        config=KernelConfig(
            intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
        ),
        node_count=nodes,
        power_hint_w=hint,
    )


class TestEstimates:
    def test_hint_takes_precedence(self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        request = _request("a", nodes=4, hint=200.0)
        assert admission.estimate_job_power_w(request) == pytest.approx(800.0)

    def test_characterized_estimate_for_balanced_job(self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        request = _request("a", nodes=4, intensity=8.0)
        estimate = admission.estimate_job_power_w(request)
        # Balanced I=8 draws ~232 W/node.
        assert estimate == pytest.approx(4 * 232.0, rel=0.01)

    def test_waiting_jobs_estimate_below_balanced(self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        balanced = admission.estimate_job_power_w(_request("a", intensity=8.0))
        waster = admission.estimate_job_power_w(
            _request("b", intensity=8.0, waiting=0.75, imbalance=3)
        )
        assert waster < balanced


class TestDecide:
    def test_admits_within_budget(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=200.0))
        queue.submit(_request("b", nodes=2, hint=200.0))
        decision = PowerAwareAdmission(execution_model).decide(
            queue, budget_w=1000.0, nodes_available=10
        )
        assert decision.admitted == ("a", "b")
        assert decision.feasible()

    def test_defers_over_budget(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=200.0))
        queue.submit(_request("b", nodes=2, hint=200.0))
        decision = PowerAwareAdmission(execution_model).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert decision.admitted == ("a",)
        assert decision.deferred == ("b",)

    def test_node_capacity_limits(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=8, hint=100.0))
        queue.submit(_request("b", nodes=8, hint=100.0))
        decision = PowerAwareAdmission(execution_model).decide(
            queue, budget_w=10000.0, nodes_available=10
        )
        assert decision.admitted == ("a",)
        assert decision.admitted_nodes == 8

    def test_backfill_jumps_blocked_head(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("big", nodes=2, hint=400.0))    # 800 W
        queue.submit(_request("small", nodes=2, hint=100.0))  # 200 W
        decision = PowerAwareAdmission(execution_model, backfill=True).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert decision.admitted == ("small",)
        assert decision.deferred == ("big",)

    def test_strict_fifo_blocks_behind_head(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("big", nodes=2, hint=400.0))
        queue.submit(_request("small", nodes=2, hint=100.0))
        decision = PowerAwareAdmission(execution_model, backfill=False).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert decision.admitted == ()
        assert decision.deferred == ("big", "small")

    def test_safety_margin_holds_headroom(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=245.0))  # 490 W
        decision = PowerAwareAdmission(
            execution_model, safety_margin=0.05
        ).decide(queue, budget_w=500.0, nodes_available=10)
        # 490 > 0.95 x 500 = 475 -> deferred.
        assert decision.admitted == ()

    def test_marks_queue_states(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=100.0))
        queue.submit(_request("b", nodes=2, hint=900.0))
        PowerAwareAdmission(execution_model).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert queue.get("a").state is JobState.ALLOCATED
        assert queue.get("b").state is JobState.PENDING

    def test_dry_run_leaves_queue_untouched(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=100.0))
        PowerAwareAdmission(execution_model).decide(
            queue, budget_w=500.0, nodes_available=10, mark=False
        )
        assert queue.get("a").state is JobState.PENDING

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            PowerAwareAdmission(safety_margin=1.0)

    def test_rejects_negative_nodes(self, execution_model):
        queue = JobQueue()
        with pytest.raises(ValueError):
            PowerAwareAdmission(execution_model).decide(
                queue, budget_w=100.0, nodes_available=-1
            )


class TestFeasibleJudgesUsableBudget:
    def test_feasible_uses_margined_budget_not_raw(self, execution_model):
        """Regression: feasible() once compared against the raw budget, so
        a decision that consumed its safety head-room passed silently."""
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=200.0))
        decision = PowerAwareAdmission(
            execution_model, safety_margin=0.5
        ).decide(queue, budget_w=1000.0, nodes_available=10)
        # 400 W fits under usable 500 W; judged against usable, not 1000.
        assert decision.usable_budget_w == pytest.approx(500.0)
        assert decision.safety_margin == 0.5
        assert decision.feasible()

    def test_overfull_decision_reported_infeasible(self, execution_model):
        """A decision whose admitted power exceeds the margined budget must
        say so, even while under the raw budget."""
        from repro.manager.admission import AdmissionDecision

        decision = AdmissionDecision(
            admitted=("a",), deferred=(), estimates_w={"a": 950.0},
            budget_w=1000.0, nodes_available=10, safety_margin=0.1,
        )
        assert decision.admitted_power_w <= decision.budget_w
        assert not decision.feasible()


class TestStarvationBound:
    def test_blocked_head_gains_reservation(self, execution_model):
        """EASY backfill stops jumping a head that has been bypassed
        max_bypass_rounds times: the starved job eventually runs."""
        admission = PowerAwareAdmission(
            execution_model, max_bypass_rounds=3, safety_margin=0.0
        )
        # The head needs 6 nodes; only 4 are ever available, so small
        # jobs backfill past it every round.
        rounds_until_reserved = None
        for round_index in range(6):
            queue = JobQueue()
            queue.submit(_request("head", nodes=6, hint=200.0))
            queue.submit(_request(f"small-{round_index}", nodes=2,
                                  hint=200.0))
            decision = admission.decide(
                queue, budget_w=5000.0, nodes_available=4
            )
            if decision.reserved_head:
                rounds_until_reserved = round_index
                break
            assert decision.admitted == (f"small-{round_index}",)
        # Bypassed on rounds 0-2; round 3 holds the reservation.
        assert rounds_until_reserved == 3
        assert decision.admitted == ()
        assert decision.deferred[0] == "head"

    def test_reservation_clears_once_head_runs(self, execution_model):
        admission = PowerAwareAdmission(
            execution_model, max_bypass_rounds=1, safety_margin=0.0
        )
        queue = JobQueue()
        queue.submit(_request("head", nodes=6, hint=200.0))
        queue.submit(_request("small", nodes=2, hint=200.0))
        first = admission.decide(queue, budget_w=5000.0, nodes_available=4)
        assert first.admitted == ("small",)
        # Head now fits: reservation held, then cleared by admission.
        second = admission.decide(queue, budget_w=5000.0, nodes_available=6)
        assert second.admitted == ("head",)
        assert second.reserved_head
        queue2 = JobQueue()
        queue2.submit(_request("next-head", nodes=2, hint=200.0))
        third = admission.decide(queue2, budget_w=5000.0, nodes_available=6)
        assert not third.reserved_head

    def test_dry_runs_do_not_age_the_bound(self, execution_model):
        admission = PowerAwareAdmission(
            execution_model, max_bypass_rounds=1, safety_margin=0.0
        )
        queue = JobQueue()
        queue.submit(_request("head", nodes=6, hint=200.0))
        queue.submit(_request("small", nodes=2, hint=200.0))
        for _ in range(5):
            probe = admission.decide(
                queue, budget_w=5000.0, nodes_available=4, mark=False
            )
            assert not probe.reserved_head
        # The head's allowance is untouched by dry runs.
        marked = admission.decide(queue, budget_w=5000.0, nodes_available=4)
        assert marked.admitted == ("small",)
        assert not marked.reserved_head

    def test_unbounded_bypass_when_disabled(self, execution_model):
        admission = PowerAwareAdmission(
            execution_model, max_bypass_rounds=None, safety_margin=0.0
        )
        for round_index in range(10):
            queue = JobQueue()
            queue.submit(_request("head", nodes=6, hint=200.0))
            queue.submit(_request(f"s-{round_index}", nodes=2, hint=200.0))
            decision = admission.decide(
                queue, budget_w=5000.0, nodes_available=4
            )
            assert decision.admitted == (f"s-{round_index}",)
            assert not decision.reserved_head

    def test_rejects_bad_bypass_bound(self, execution_model):
        with pytest.raises(ValueError, match="max_bypass_rounds"):
            PowerAwareAdmission(execution_model, max_bypass_rounds=0)


class TestEstimateCache:
    def test_shared_shapes_characterized_once(self, execution_model):
        """A million-arrival stream of a few job classes must not
        characterize per job: the cache keys on (config, nodes)."""
        admission = PowerAwareAdmission(execution_model)
        first = admission.estimate_job_power_w(_request("a", nodes=4))
        assert len(admission._estimate_cache) == 1
        second = admission.estimate_job_power_w(_request("b", nodes=4))
        assert second == first
        assert len(admission._estimate_cache) == 1
        admission.estimate_job_power_w(_request("c", nodes=6))
        assert len(admission._estimate_cache) == 2

    def test_hints_bypass_the_cache(self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        admission.estimate_job_power_w(_request("a", nodes=4, hint=150.0))
        assert admission._estimate_cache == {}


class TestRaplFloorBound:
    def test_estimates_never_below_the_rapl_floor(self, execution_model):
        """Regression: a low user hint (e.g. 120 W/node, below the 136 W
        RAPL floor) let admission admit a set the allocator could not
        legally cap down to, and the launch blew up mid-simulation."""
        admission = PowerAwareAdmission(execution_model)
        floor_w = execution_model.power_model.min_cap_w
        estimate = admission.estimate_job_power_w(
            _request("low", nodes=7, hint=120.0)
        )
        assert estimate == 7 * floor_w

    def test_below_floor_budget_defers_instead_of_admitting(
            self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        queue = JobQueue()
        queue.submit(_request("low", nodes=7, hint=120.0))
        decision = admission.decide(
            queue, budget_w=900.0, nodes_available=12
        )
        assert decision.admitted == ()
        assert decision.deferred == ("low",)
