"""Unit tests for power-aware admission control."""

import pytest

from repro.manager.admission import PowerAwareAdmission
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.workload.kernel import KernelConfig


def _request(name, nodes=4, intensity=8.0, hint=None, waiting=0.0, imbalance=1):
    return JobRequest(
        name=name,
        config=KernelConfig(
            intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
        ),
        node_count=nodes,
        power_hint_w=hint,
    )


class TestEstimates:
    def test_hint_takes_precedence(self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        request = _request("a", nodes=4, hint=200.0)
        assert admission.estimate_job_power_w(request) == pytest.approx(800.0)

    def test_characterized_estimate_for_balanced_job(self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        request = _request("a", nodes=4, intensity=8.0)
        estimate = admission.estimate_job_power_w(request)
        # Balanced I=8 draws ~232 W/node.
        assert estimate == pytest.approx(4 * 232.0, rel=0.01)

    def test_waiting_jobs_estimate_below_balanced(self, execution_model):
        admission = PowerAwareAdmission(execution_model)
        balanced = admission.estimate_job_power_w(_request("a", intensity=8.0))
        waster = admission.estimate_job_power_w(
            _request("b", intensity=8.0, waiting=0.75, imbalance=3)
        )
        assert waster < balanced


class TestDecide:
    def test_admits_within_budget(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=200.0))
        queue.submit(_request("b", nodes=2, hint=200.0))
        decision = PowerAwareAdmission(execution_model).decide(
            queue, budget_w=1000.0, nodes_available=10
        )
        assert decision.admitted == ("a", "b")
        assert decision.feasible()

    def test_defers_over_budget(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=200.0))
        queue.submit(_request("b", nodes=2, hint=200.0))
        decision = PowerAwareAdmission(execution_model).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert decision.admitted == ("a",)
        assert decision.deferred == ("b",)

    def test_node_capacity_limits(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=8, hint=100.0))
        queue.submit(_request("b", nodes=8, hint=100.0))
        decision = PowerAwareAdmission(execution_model).decide(
            queue, budget_w=10000.0, nodes_available=10
        )
        assert decision.admitted == ("a",)
        assert decision.admitted_nodes == 8

    def test_backfill_jumps_blocked_head(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("big", nodes=2, hint=400.0))    # 800 W
        queue.submit(_request("small", nodes=2, hint=100.0))  # 200 W
        decision = PowerAwareAdmission(execution_model, backfill=True).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert decision.admitted == ("small",)
        assert decision.deferred == ("big",)

    def test_strict_fifo_blocks_behind_head(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("big", nodes=2, hint=400.0))
        queue.submit(_request("small", nodes=2, hint=100.0))
        decision = PowerAwareAdmission(execution_model, backfill=False).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert decision.admitted == ()
        assert decision.deferred == ("big", "small")

    def test_safety_margin_holds_headroom(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=245.0))  # 490 W
        decision = PowerAwareAdmission(
            execution_model, safety_margin=0.05
        ).decide(queue, budget_w=500.0, nodes_available=10)
        # 490 > 0.95 x 500 = 475 -> deferred.
        assert decision.admitted == ()

    def test_marks_queue_states(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=100.0))
        queue.submit(_request("b", nodes=2, hint=900.0))
        PowerAwareAdmission(execution_model).decide(
            queue, budget_w=500.0, nodes_available=10
        )
        assert queue.get("a").state is JobState.ALLOCATED
        assert queue.get("b").state is JobState.PENDING

    def test_dry_run_leaves_queue_untouched(self, execution_model):
        queue = JobQueue()
        queue.submit(_request("a", nodes=2, hint=100.0))
        PowerAwareAdmission(execution_model).decide(
            queue, budget_w=500.0, nodes_available=10, mark=False
        )
        assert queue.get("a").state is JobState.PENDING

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            PowerAwareAdmission(safety_margin=1.0)

    def test_rejects_negative_nodes(self, execution_model):
        queue = JobQueue()
        with pytest.raises(ValueError):
            PowerAwareAdmission(execution_model).decide(
                queue, budget_w=100.0, nodes_available=-1
            )
