"""Unit tests for the GEOPM-style report emitter."""

import numpy as np

from repro.runtime.controller import Controller
from repro.runtime.power_balancer import PowerBalancerAgent
from repro.runtime.reports import HostReport, JobReport
from repro.workload.job import Job
from repro.workload.kernel import KernelConfig


def _report(metadata=None):
    hosts = tuple(
        HostReport(
            host_id=i,
            runtime_s=10.0,
            energy_j=2000.0 + i,
            mean_power_w=200.0 + i / 10,
            mean_freq_ghz=2.0,
            power_limit_w=220.0,
            epochs=5,
        )
        for i in range(3)
    )
    return JobReport(
        job_name="demo-job",
        agent="power_balancer",
        hosts=hosts,
        figure_of_merit=1.25,
        metadata=metadata or {},
    )


class TestGeopmFormat:
    def test_header_fields(self):
        text = _report().to_geopm_format()
        assert "Job Name: demo-job" in text
        assert "Agent: power_balancer" in text
        assert "Figure of Merit: 1.250000" in text

    def test_every_host_listed(self):
        text = _report().to_geopm_format()
        for i in range(3):
            assert f"host-{i}:" in text

    def test_host_fields(self):
        text = _report().to_geopm_format()
        assert "package-energy (J): 2000.000000" in text
        assert "power-limit (W): 220.000000" in text
        assert "epoch-count: 5" in text

    def test_policy_block_when_metadata(self):
        text = _report(metadata={"job_budget_w": 960.0}).to_geopm_format()
        assert "Policy:" in text
        assert "job_budget_w: 960.000000" in text

    def test_no_policy_block_without_metadata(self):
        assert "Policy:" not in _report().to_geopm_format()

    def test_ends_with_newline(self):
        assert _report().to_geopm_format().endswith("\n")

    def test_controller_report_renders(self, execution_model):
        """A real controller run produces a parseable-looking report."""
        job = Job(
            name="real",
            config=KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2),
            node_count=3,
        )
        agent = PowerBalancerAgent(job_budget_w=3 * 240.0)
        report = Controller(job, np.ones(3), agent,
                            model=execution_model).run(max_epochs=60)
        text = report.to_geopm_format()
        assert text.startswith("##### geopm-style report #####")
        assert "unallocated_w" in text  # the balancer's metadata
        # One indented block per host.
        assert text.count("runtime (s):") == 3
