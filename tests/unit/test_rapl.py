"""Unit tests for the RAPL power-limit / energy-counter emulation."""

import pytest

from repro.hardware.cpu import QUARTZ_CPU
from repro.hardware.msr import MsrFile, MSR_PKG_ENERGY_STATUS
from repro.hardware.rapl import RaplDomain, RaplPackage


@pytest.fixture()
def domain() -> RaplDomain:
    return RaplDomain(MsrFile())


class TestPowerLimit:
    def test_default_limit_is_tdp(self, domain):
        assert domain.power_limit() == pytest.approx(QUARTZ_CPU.tdp_w)

    def test_set_and_read(self, domain):
        actual = domain.set_power_limit(90.0)
        assert actual == pytest.approx(90.0)
        assert domain.power_limit() == pytest.approx(90.0)

    def test_quantisation_to_eighth_watt(self, domain):
        actual = domain.set_power_limit(90.07)
        assert actual == pytest.approx(90.125, abs=1e-9)  # nearest 1/8 W

    def test_clamps_below_floor(self, domain):
        actual = domain.set_power_limit(10.0)
        assert actual == pytest.approx(QUARTZ_CPU.min_rapl_w)

    def test_clamps_above_tdp(self, domain):
        actual = domain.set_power_limit(500.0)
        assert actual == pytest.approx(QUARTZ_CPU.tdp_w)

    def test_rejects_nonpositive(self, domain):
        with pytest.raises(ValueError):
            domain.set_power_limit(0.0)

    def test_advertised_range_decodes(self, domain):
        assert domain.min_power_w == pytest.approx(QUARTZ_CPU.min_rapl_w)
        assert domain.max_power_w == pytest.approx(QUARTZ_CPU.tdp_w)


class TestEnergyCounter:
    def test_starts_at_zero(self, domain):
        assert domain.read_energy_j() == pytest.approx(0.0)

    def test_accumulates(self, domain):
        domain.accumulate_energy(100.0)
        domain.accumulate_energy(50.0)
        assert domain.read_energy_j() == pytest.approx(150.0, abs=1e-3)

    def test_quantisation_granularity(self, domain):
        """Energy units are 2^-16 J; accumulation is quantised but close."""
        domain.accumulate_energy(0.001)
        assert domain.read_energy_j() == pytest.approx(0.001, abs=2**-15)

    def test_wraparound_correction(self, domain):
        """The 32-bit counter wraps every 2^32 * 2^-16 J = 65536 J; the
        reader must unwrap it."""
        domain.accumulate_energy(60000.0)
        assert domain.read_energy_j() == pytest.approx(60000.0, abs=1e-2)
        domain.accumulate_energy(10000.0)  # crosses the wrap point
        assert domain.read_energy_j() == pytest.approx(70000.0, abs=1e-2)

    def test_multiple_wraps_with_regular_reads(self, domain):
        total = 0.0
        for _ in range(10):
            domain.accumulate_energy(40000.0)
            total += 40000.0
            assert domain.read_energy_j() == pytest.approx(total, rel=1e-6)

    def test_raw_counter_is_32_bit(self, domain):
        domain.accumulate_energy(70000.0)
        raw = domain.msr.read(MSR_PKG_ENERGY_STATUS)
        assert raw < (1 << 32)

    def test_rejects_negative_energy(self, domain):
        with pytest.raises(ValueError):
            domain.accumulate_energy(-1.0)


class TestRaplPackage:
    def test_node_limit_splits_evenly(self):
        pkg = RaplPackage()
        total = pkg.set_node_power_limit(200.0)
        assert total == pytest.approx(200.0)
        for d in pkg.domains:
            assert d.power_limit() == pytest.approx(100.0)

    def test_node_limit_clamps_per_socket(self):
        pkg = RaplPackage()
        total = pkg.set_node_power_limit(1000.0)
        assert total == pytest.approx(2 * QUARTZ_CPU.tdp_w)

    def test_node_energy_sums_sockets(self):
        pkg = RaplPackage()
        pkg.accumulate_node_energy(500.0)
        assert pkg.read_node_energy_j() == pytest.approx(500.0, abs=1e-2)

    def test_single_socket_package(self):
        pkg = RaplPackage(sockets=1)
        assert pkg.set_node_power_limit(100.0) == pytest.approx(100.0)

    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            RaplPackage(sockets=0)
