"""Unit tests for the power balancer agent's feedback loop."""

import numpy as np
import pytest

from repro.runtime.agent import PlatformSample
from repro.runtime.power_balancer import BalancerOptions, PowerBalancerAgent


def _sample(limits, times, powers=None, epoch=0):
    limits = np.asarray(limits, dtype=float)
    times = np.asarray(times, dtype=float)
    powers = np.asarray(
        powers if powers is not None else limits * 0.95, dtype=float
    )
    return PlatformSample(
        epoch=epoch,
        host_time_s=times,
        epoch_time_s=float(times.max()),
        host_power_w=powers,
        power_limit_w=limits,
        host_energy_j=powers * times,
        mean_freq_ghz=np.full(limits.size, 2.0),
    )


class TestOptions:
    def test_rejects_bad_gain(self):
        with pytest.raises(ValueError):
            BalancerOptions(gain=0.0)

    def test_rejects_inverted_limits(self):
        with pytest.raises(ValueError):
            BalancerOptions(min_limit_w=240.0, max_limit_w=136.0)

    def test_rejects_bad_harvest(self):
        with pytest.raises(ValueError):
            BalancerOptions(harvest_fraction=0.0)
        with pytest.raises(ValueError):
            BalancerOptions(harvest_fraction=1.5)


class TestFirstEpoch:
    def test_initial_limits_uniform(self):
        agent = PowerBalancerAgent(job_budget_w=960.0)
        out = agent.adjust(_sample(np.full(4, 240.0), np.ones(4)))
        np.testing.assert_allclose(out, 240.0)

    def test_initial_limits_clamped(self):
        agent = PowerBalancerAgent(job_budget_w=100.0)  # 25 W/host -> floor
        out = agent.adjust(_sample(np.full(4, 240.0), np.ones(4)))
        np.testing.assert_allclose(out, 136.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            PowerBalancerAgent(job_budget_w=-5.0)


class TestFeedback:
    def test_cuts_slack_hosts(self):
        agent = PowerBalancerAgent(job_budget_w=960.0)
        limits = agent.adjust(_sample(np.full(4, 240.0), np.ones(4)))
        # Host 3 is the critical path; hosts 0-2 have 40 % slack.
        times = np.array([0.6, 0.6, 0.6, 1.0])
        new = agent.adjust(_sample(limits, times, epoch=1))
        assert np.all(new[:3] < limits[:3])
        assert new[3] >= limits[3] - 1e-9

    def test_budget_conserved(self):
        agent = PowerBalancerAgent(job_budget_w=800.0)
        limits = agent.adjust(_sample(np.full(4, 200.0), np.ones(4)))
        times = np.array([0.5, 0.8, 0.9, 1.0])
        for epoch in range(1, 20):
            limits = agent.adjust(_sample(limits, times, epoch=epoch))
            total = float(np.sum(limits)) + agent.describe()["unallocated_w"]
            assert total == pytest.approx(800.0, abs=1e-6)

    def test_respects_harvest_floor(self):
        """Cuts stop at the harvest-fraction distance from the initial
        observed power."""
        opts = BalancerOptions(harvest_fraction=0.5)
        agent = PowerBalancerAgent(job_budget_w=960.0, options=opts)
        first = _sample(np.full(4, 240.0), np.ones(4), powers=np.full(4, 220.0))
        limits = agent.adjust(first)
        times = np.array([0.2, 0.2, 0.2, 1.0])
        for epoch in range(1, 50):
            limits = agent.adjust(_sample(limits, times, epoch=epoch))
        floor = 220.0 - 0.5 * (220.0 - opts.min_limit_w)
        assert np.all(limits[:3] >= floor - 1e-6)

    def test_idealised_harvest_reaches_rapl_floor(self):
        opts = BalancerOptions(harvest_fraction=1.0, gain=0.8)
        agent = PowerBalancerAgent(job_budget_w=960.0, options=opts)
        limits = agent.adjust(
            _sample(np.full(4, 240.0), np.ones(4), powers=np.full(4, 230.0))
        )
        times = np.array([0.1, 0.1, 0.1, 1.0])
        for epoch in range(1, 60):
            limits = agent.adjust(_sample(limits, times, epoch=epoch))
        np.testing.assert_allclose(limits[:3], opts.min_limit_w, atol=1.0)

    def test_convergence_on_balanced_job(self):
        agent = PowerBalancerAgent(job_budget_w=800.0)
        limits = agent.adjust(_sample(np.full(4, 200.0), np.ones(4)))
        for epoch in range(1, 10):
            limits = agent.adjust(_sample(limits, np.ones(4), epoch=epoch))
            if agent.converged():
                break
        assert agent.converged()
        np.testing.assert_allclose(limits, 200.0, atol=1.0)

    def test_never_below_rapl_floor(self):
        agent = PowerBalancerAgent(
            job_budget_w=800.0, options=BalancerOptions(harvest_fraction=1.0)
        )
        limits = agent.adjust(_sample(np.full(4, 200.0), np.ones(4)))
        times = np.array([0.01, 0.01, 0.01, 1.0])
        for epoch in range(1, 40):
            limits = agent.adjust(_sample(limits, times, epoch=epoch))
        assert np.all(limits >= 136.0 - 1e-9)

    def test_never_above_tdp(self):
        agent = PowerBalancerAgent(job_budget_w=2000.0)
        limits = agent.adjust(_sample(np.full(4, 240.0), np.ones(4)))
        times = np.array([0.5, 0.5, 0.5, 1.0])
        for epoch in range(1, 40):
            limits = agent.adjust(_sample(limits, times, epoch=epoch))
        assert np.all(limits <= 240.0 + 1e-9)

    def test_describe_keys(self):
        agent = PowerBalancerAgent(job_budget_w=500.0)
        info = agent.describe()
        assert set(info) == {
            "job_budget_w", "unallocated_w", "last_step_w",
            "steps", "harvested_w", "redistributed_w",
        }
