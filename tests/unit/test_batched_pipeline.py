"""Unit tests: the staged fault-free batch pipeline and its caches.

The streaming engine's vectorised path decomposes
``execute_admitted_batch`` into ``plan_admitted_batch`` →
``execute_planned_batches`` → ``finish_planned_batch``.  These tests pin
the decomposition's contract at the function level — bit-identity to the
monolithic call, memo-hit object reuse, trusted-constructor semantics,
and the stacked-layout identity cache — independently of the event loop
(which the stream property suite covers end to end).
"""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager.admission import AdmissionDecision
from repro.manager.power_manager import PowerManager
from repro.manager.queue import JobRequest
from repro.manager.scheduler import ScheduledMix, Scheduler
from repro.manager.site_simulation import (
    BatchPlanner,
    execute_admitted_batch,
    execute_planned_batches,
    plan_admitted_batch,
)
from repro.sim import batch as sim_batch
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


def _request(name, nodes=3, intensity=8.0, iterations=5, hint=180.0):
    return JobRequest(
        name=name, config=KernelConfig(intensity=intensity),
        node_count=nodes, iterations=iterations, power_hint_w=hint,
    )


def _decision(admitted, budget_w=2500.0, nodes=12):
    return AdmissionDecision(
        tuple(r.name for r in admitted), (),
        {r.name: float(r.power_hint_w) for r in admitted},
        budget_w, nodes,
    )


def _monolithic(clock, index, admitted, decision, cluster, policy,
                budget_w, manager):
    node_ids = tuple(range(sum(r.node_count for r in admitted)))
    return execute_admitted_batch(
        clock=clock, batch_index=index, admitted=admitted,
        decision=decision, batch_cluster=cluster.subset(node_ids),
        policy=policy, budget_w=budget_w, batch_budget_w=budget_w,
        quarantined=(), manager=manager, noise_std=0.0, run_seed=None,
        fault_schedule=None, degradation=None, reaction_s=0.0,
        injecting=False,
    )


def _staged(clock, index, admitted, decision, cluster, policy,
            budget_w, manager, planner=None, uniform=False):
    hosts = sum(r.node_count for r in admitted)
    eff = cluster.efficiencies[:hosts]
    return plan_admitted_batch(
        clock=clock, batch_index=index, admitted=admitted,
        decision=decision,
        host_efficiencies=eff if uniform else eff.copy(),
        policy=policy, budget_w=budget_w, batch_budget_w=budget_w,
        quarantined=(), manager=manager, run_seed=None,
        planner=planner, uniform_hosts=uniform,
    )


class TestStagedPipelineIdentity:
    @pytest.mark.parametrize("variation_seed", [None, 5])
    def test_matches_monolithic_batch(self, variation_seed):
        if variation_seed is None:
            cluster = Cluster(node_count=12, variation=None, seed=0)
        else:
            cluster = Cluster(node_count=12, seed=variation_seed)
        uniform = variation_seed is None
        policy = create_policy("MixedAdaptive")
        manager = PowerManager()
        planner = BatchPlanner(manager, policy)
        batches = [
            [_request("a0", nodes=3), _request("a1", nodes=2)],
            [_request("b0", nodes=4, intensity=2.0)],
        ]
        planned, expected = [], []
        for index, admitted in enumerate(batches):
            decision = _decision(admitted)
            expected.append(_monolithic(
                10.0 * index, index, admitted, decision, cluster,
                policy, 2500.0, manager,
            ))
            planned.append(_staged(
                10.0 * index, index, admitted, decision, cluster,
                policy, 2500.0, manager, planner=planner, uniform=uniform,
            ))
        executed = execute_planned_batches(planned, manager, 0.0)
        assert executed == expected

    def test_grouping_preserves_input_order(self):
        cluster = Cluster(node_count=16, variation=None, seed=0)
        policy = create_policy("StaticCaps")
        manager = PowerManager()
        planner = BatchPlanner(manager, policy)
        # Two interleaved shapes: grouping must not reorder executions.
        shapes = [3, 5, 3, 5]
        planned = []
        for index, nodes in enumerate(shapes):
            admitted = [_request(f"j{index}", nodes=nodes)]
            planned.append(_staged(
                float(index), index, admitted, _decision(admitted),
                cluster, policy, 2500.0, manager, planner=planner,
                uniform=True,
            ))
        executed = execute_planned_batches(planned, manager, 0.0)
        assert [e.record.start_s for e in executed] == \
            [float(i) for i in range(len(shapes))]
        assert [e.job_names for e in executed] == \
            [(f"j{i}",) for i in range(len(shapes))]


class TestBatchPlannerMemo:
    def test_same_shape_reuses_caps_object(self):
        cluster = Cluster(node_count=12, variation=None, seed=0)
        policy = create_policy("JobAdaptive")
        manager = PowerManager()
        planner = BatchPlanner(manager, policy)
        admitted = [_request("x", nodes=4)]
        first = _staged(0.0, 0, admitted, _decision(admitted), cluster,
                        policy, 2500.0, manager, planner=planner,
                        uniform=True)
        again = [_request("y", nodes=4)]  # same shape, different name
        second = _staged(5.0, 1, again, _decision(again), cluster,
                         policy, 2500.0, manager, planner=planner,
                         uniform=True)
        assert second.effective_caps is first.effective_caps
        assert not first.effective_caps.flags.writeable

    def test_budget_keys_caps_separately(self):
        cluster = Cluster(node_count=12, variation=None, seed=0)
        policy = create_policy("StaticCaps")
        manager = PowerManager()
        planner = BatchPlanner(manager, policy)
        admitted = [_request("x", nodes=4)]
        low = _staged(0.0, 0, admitted, _decision(admitted), cluster,
                      policy, 1200.0, manager, planner=planner,
                      uniform=True)
        high = _staged(0.0, 1, admitted, _decision(admitted), cluster,
                       policy, 2500.0, manager, planner=planner,
                       uniform=True)
        assert low.effective_caps is not high.effective_caps

    def test_relabel_controls_characterization_name(self):
        cluster = Cluster(node_count=12, variation=None, seed=0)
        policy = create_policy("MixedAdaptive")
        manager = PowerManager()
        planner = BatchPlanner(manager, policy)
        mix = WorkloadMix(name="batch-0", jobs=(
            Job(name="x", config=KernelConfig(intensity=8.0),
                node_count=4, iterations=5),
        ))
        scheduled = Scheduler(
            Cluster(node_count=4, variation=None, seed=0), shuffle_seed=None
        ).allocate(mix)
        char0, _ = planner.plan(scheduled, 2500.0)
        renamed = WorkloadMix(name="batch-1", jobs=mix.jobs)
        rescheduled = ScheduledMix.trusted(
            renamed, scheduled.node_ids, scheduled.efficiencies
        )
        char1, _ = planner.plan(rescheduled, 2500.0, relabel=True)
        assert char1.mix_name == "batch-1"
        char2, _ = planner.plan(rescheduled, 2500.0, relabel=False)
        assert char2 is char0  # memo object, label untouched


class TestTrustedScheduledMix:
    def test_skips_validation(self):
        mix = WorkloadMix(name="m", jobs=(
            Job(name="j", config=KernelConfig(intensity=8.0),
                node_count=2, iterations=3),
        ))
        doubled = np.array([0, 0])
        with pytest.raises(ValueError):
            ScheduledMix(mix=mix, node_ids=doubled,
                         efficiencies=np.ones(2))
        trusted = ScheduledMix.trusted(mix, doubled, np.ones(2))
        assert trusted.node_ids is doubled

    def test_equivalent_to_validated_constructor(self):
        mix = WorkloadMix(name="m", jobs=(
            Job(name="j", config=KernelConfig(intensity=8.0),
                node_count=3, iterations=3),
        ))
        ids = np.array([2, 0, 1])
        eff = np.array([1.0, 0.9, 1.1])
        a = ScheduledMix(mix=mix, node_ids=ids, efficiencies=eff)
        b = ScheduledMix.trusted(mix, ids, eff)
        assert (a.node_ids == b.node_ids).all()
        assert (a.efficiencies == b.efficiencies).all()
        assert (b.job_node_ids(0) == ids).all()


class TestStackedLayoutCache:
    def _mix(self, name="m", nodes=3):
        return WorkloadMix(name=name, jobs=(
            Job(name="j", config=KernelConfig(intensity=8.0),
                node_count=nodes, iterations=4),
        ))

    def test_identity_hit_returns_same_stack(self):
        layout = self._mix().layout()
        first = sim_batch._stack_layouts_cached([layout, layout])
        second = sim_batch._stack_layouts_cached([layout, layout])
        assert second is first

    def test_repeat_fast_path_matches_general_stack(self):
        layout = self._mix().layout()
        fast = sim_batch._stack_layouts_cached([layout] * 3)
        general = sim_batch.stack_layouts([layout] * 3)
        np.testing.assert_array_equal(fast.critical, general.critical)
        np.testing.assert_array_equal(
            fast.job_boundaries, general.job_boundaries
        )

    def test_cache_bounded(self):
        sim_batch._STACK_CACHE.clear()
        for nodes in range(1, sim_batch._STACK_CACHE_LIMIT + 3):
            layout = self._mix(name=f"m{nodes}", nodes=nodes).layout()
            sim_batch._stack_layouts_cached([layout, layout])
        assert len(sim_batch._STACK_CACHE) <= sim_batch._STACK_CACHE_LIMIT
