"""Unit tests for the policy tournament."""

import pytest

from repro.experiments.robustness import policy_tournament


class TestTournament:
    @pytest.fixture(scope="class")
    def result(self):
        return policy_tournament(rounds=4, nodes_per_job=5, iterations=15)

    def test_round_count(self, result):
        assert len(result.rounds) == 4

    def test_rounds_have_all_policies(self, result):
        for rnd in result.rounds:
            assert set(rnd.time_savings_pct) == {
                "MinimizeWaste", "JobAdaptive", "MixedAdaptive",
            }

    def test_win_counts_sum_to_rounds(self, result):
        assert sum(result.win_counts("time").values()) == 4
        assert sum(result.win_counts("energy").values()) == 4

    def test_winner_per_round(self, result):
        for rnd in result.rounds:
            winner = rnd.winner("time")
            assert rnd.time_savings_pct[winner] == max(
                rnd.time_savings_pct.values()
            )

    def test_mean_savings_keys(self, result):
        means = result.mean_savings_pct("energy")
        assert set(means) == {"MinimizeWaste", "JobAdaptive", "MixedAdaptive"}

    def test_mixed_adaptive_never_strictly_loses_time(self, result):
        assert result.never_strictly_loses("MixedAdaptive", "time",
                                           tolerance_pct=0.75)

    def test_deterministic(self):
        a = policy_tournament(rounds=2, nodes_per_job=5, iterations=10)
        b = policy_tournament(rounds=2, nodes_per_job=5, iterations=10)
        assert a.mean_savings_pct("time") == b.mean_savings_pct("time")

    def test_different_seeds_different_mixes(self):
        a = policy_tournament(rounds=1, nodes_per_job=5, iterations=10,
                              base_seed=1)
        b = policy_tournament(rounds=1, nodes_per_job=5, iterations=10,
                              base_seed=2)
        assert (
            a.rounds[0].time_savings_pct != b.rounds[0].time_savings_pct
        )

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            policy_tournament(rounds=0)
