"""Unit tests for the session/facility integration module."""

import numpy as np
import pytest

from repro.experiments.facility_integration import simulate_session


class TestSimulateSession:
    @pytest.fixture(scope="class")
    def session(self, small_grid):
        return simulate_session(
            small_grid, "MixedAdaptive",
            mixes=["LowPower", "HighPower"],
        )

    def test_segments_in_order(self, session):
        assert [s.mix_name for s in session.segments] == ["LowPower", "HighPower"]
        assert session.segments[0].end_s == pytest.approx(
            session.segments[1].start_s
        )

    def test_trace_monotone_time(self, session):
        assert np.all(np.diff(session.time_s) >= 0)

    def test_power_positive_and_bounded(self, session):
        assert np.all(session.power_w > 0)
        # No sample exceeds TDP of the whole partition.
        hosts = 90
        assert np.all(session.power_w <= hosts * 240.0)

    def test_energy_consistency(self, session):
        """Session energy equals the sum of segment energies."""
        assert session.total_energy_j == pytest.approx(
            sum(s.energy_j for s in session.segments)
        )

    def test_duration_sums_segments(self, session):
        assert session.total_duration_s == pytest.approx(
            sum(s.duration_s for s in session.segments)
        )

    def test_utilisation_stats_keys(self, session):
        stats = session.utilisation_stats()
        for key in ("mean_power_w", "peak_power_w", "mean_utilisation",
                    "peak_utilisation", "stranded_w"):
            assert key in stats
        assert 0 < stats["mean_utilisation"] <= stats["peak_utilisation"]

    def test_policy_changes_trace(self, small_grid):
        static = simulate_session(small_grid, "StaticCaps", mixes=["WastefulPower"],
                                  budget_level="max")
        mixed = simulate_session(small_grid, "MixedAdaptive", mixes=["WastefulPower"],
                                 budget_level="max")
        # Application awareness lowers the session's mean power at a
        # generous budget (the Fig. 7 marker-(a) effect, session-level).
        assert (
            mixed.utilisation_stats()["mean_power_w"]
            < static.utilisation_stats()["mean_power_w"]
        )

    def test_empty_mixes_rejected(self, small_grid):
        with pytest.raises(ValueError):
            simulate_session(small_grid, "StaticCaps", mixes=[])
