"""Unit tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import ConfidenceInterval, bootstrap_ci, mean_ci95, summarize


class TestConfidenceInterval:
    def test_bounds(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0)
        assert ci.low == 8.0
        assert ci.high == 12.0

    def test_contains(self):
        ci = ConfidenceInterval(mean=0.0, half_width=1.0)
        assert ci.contains(0.5)
        assert not ci.contains(1.5)

    def test_str(self):
        assert "±" in str(ConfidenceInterval(1.0, 0.1))


class TestMeanCi95:
    def test_single_sample_zero_width(self):
        ci = mean_ci95(np.array([3.0]))
        assert ci.mean == 3.0
        assert ci.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci95(np.array([]))

    def test_constant_samples(self):
        ci = mean_ci95(np.full(100, 5.0))
        assert ci.mean == 5.0
        assert ci.half_width == pytest.approx(0.0)

    def test_known_normal_coverage(self):
        """~95 % of CIs from normal samples cover the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=100)
            if mean_ci95(sample).contains(10.0):
                hits += 1
        assert 0.90 < hits / trials < 0.99

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = mean_ci95(rng.normal(size=20))
        large = mean_ci95(rng.normal(size=2000))
        assert large.half_width < small.half_width

    def test_matrix_flattened(self):
        ci = mean_ci95(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert ci.mean == pytest.approx(2.5)


class TestBootstrap:
    def test_agrees_with_normal_ci(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(5.0, 1.0, size=200)
        normal = mean_ci95(sample)
        boot = bootstrap_ci(sample, resamples=1500, seed=3)
        assert boot.mean == pytest.approx(normal.mean)
        assert boot.half_width == pytest.approx(normal.half_width, rel=0.3)

    def test_custom_statistic(self):
        sample = np.arange(100, dtype=float)
        ci = bootstrap_ci(sample, statistic=np.median, resamples=500)
        assert ci.mean == pytest.approx(49.5)

    def test_deterministic_per_seed(self):
        x = np.arange(50, dtype=float)
        a = bootstrap_ci(x, seed=7)
        b = bootstrap_ci(x, seed=7)
        assert a.half_width == b.half_width

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))


class TestSummarize:
    def test_keys(self):
        s = summarize(np.arange(10, dtype=float))
        for key in ("count", "mean", "ci95", "std", "min", "median", "max"):
            assert key in s

    def test_values(self):
        s = summarize(np.array([1.0, 2.0, 3.0]))
        assert s["count"] == 3.0
        assert s["mean"] == 2.0
        assert s["median"] == 2.0
        assert s["min"] == 1.0
        assert s["max"] == 3.0

    def test_single_sample(self):
        s = summarize(np.array([4.0]))
        assert s["std"] == 0.0
