"""Unit tests for the online (execution-time) re-planning manager."""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.manager.online import OnlinePowerManager
from repro.manager.scheduler import Scheduler
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


@pytest.fixture(scope="module")
def scheduled():
    from repro.hardware.cluster import Cluster

    mix = WorkloadMix(
        name="online",
        jobs=(
            Job(name="hungry", config=KernelConfig(intensity=32.0), node_count=5,
                iterations=100),
            Job(
                name="waster",
                config=KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=3),
                node_count=5,
                iterations=100,
            ),
        ),
    )
    cluster = Cluster(node_count=20, seed=3)
    return Scheduler(cluster).allocate(mix)


class TestOnlineRun:
    def test_epoch_count(self, scheduled):
        manager = OnlinePowerManager(iterations_per_epoch=5)
        run = manager.run(scheduled, create_policy("MixedAdaptive"),
                          budget_w=10 * 190.0, epochs=4)
        assert len(run.epochs) == 4

    def test_first_epoch_uniform(self, scheduled):
        manager = OnlinePowerManager(iterations_per_epoch=5)
        run = manager.run(scheduled, create_policy("MixedAdaptive"),
                          budget_w=10 * 190.0, epochs=3)
        np.testing.assert_allclose(run.epochs[0].caps_w, 190.0)

    def test_caps_converge(self, scheduled):
        """Re-planning from live telemetry reaches a fixed point."""
        manager = OnlinePowerManager(iterations_per_epoch=5)
        run = manager.run(scheduled, create_policy("MixedAdaptive"),
                          budget_w=10 * 190.0, epochs=5, noise_std=0.0)
        assert run.caps_converged(tolerance_w=1.0)

    def test_later_epochs_faster_than_first(self, scheduled):
        """After re-planning, the hungry job runs faster than under the
        uniform epoch-0 caps."""
        manager = OnlinePowerManager(iterations_per_epoch=10)
        run = manager.run(scheduled, create_policy("MixedAdaptive"),
                          budget_w=10 * 190.0, epochs=4, noise_std=0.0)
        first = run.epochs[0].result.job_elapsed_s[0]
        last = run.epochs[-1].result.job_elapsed_s[0]
        assert last < first

    def test_budget_respected_every_epoch(self, scheduled):
        manager = OnlinePowerManager(iterations_per_epoch=5)
        budget = 10 * 190.0
        run = manager.run(scheduled, create_policy("MixedAdaptive"),
                          budget_w=budget, epochs=4)
        for epoch in run.epochs:
            assert epoch.result.mean_system_power_w <= budget * 1.001

    def test_totals_aggregate(self, scheduled):
        manager = OnlinePowerManager(iterations_per_epoch=5)
        run = manager.run(scheduled, create_policy("StaticCaps"),
                          budget_w=10 * 190.0, epochs=3)
        assert run.total_elapsed_s == pytest.approx(
            sum(e.result.mean_elapsed_s for e in run.epochs)
        )
        assert run.total_energy_j > 0

    def test_rejects_bad_epochs(self, scheduled):
        with pytest.raises(ValueError):
            OnlinePowerManager().run(
                scheduled, create_policy("StaticCaps"), 1900.0, epochs=0
            )

    def test_rejects_bad_epoch_iterations(self):
        with pytest.raises(ValueError):
            OnlinePowerManager(iterations_per_epoch=0)

    def test_not_converged_with_single_epoch(self, scheduled):
        manager = OnlinePowerManager(iterations_per_epoch=5)
        run = manager.run(scheduled, create_policy("StaticCaps"),
                          budget_w=1900.0, epochs=1)
        assert not run.caps_converged()
