"""Unit tests for the perf-trajectory artifacts and the comparator CLI.

The acceptance criteria of the perf gate: every bundle is schema-valid,
``bench-compare`` exits zero on a self-compare and non-zero on an
injected regression, and the direction semantics (higher/lower/two-sided)
judge deltas the right way round.
"""

import json

import pytest

from repro.cli import main
from repro.io.bench_artifacts import (
    BENCH_SCHEMA,
    BenchMetric,
    compare_artifacts,
    load_artifact,
    make_artifact,
    validate_artifact,
    write_artifact,
)


def _bundle(**values):
    """A small artifact with one metric per direction."""
    metrics = [
        BenchMetric("speedup", values.get("speedup", 4.0), "x",
                    direction="higher_better"),
        BenchMetric("wall_ms", values.get("wall_ms", 120.0), "ms",
                    direction="lower_better"),
        BenchMetric("mean_power_w", values.get("mean_power_w", 215.0), "W"),
    ]
    return make_artifact("unit", metrics, params={"hosts": 96}, seed=0)


class TestArtifact:
    def test_make_is_schema_valid(self):
        bundle = _bundle()
        assert validate_artifact(bundle) == []
        assert bundle["schema"] == BENCH_SCHEMA
        assert bundle["params"] == {"hosts": 96}
        assert bundle["seed"] == 0

    def test_rejects_empty_metrics(self):
        with pytest.raises(ValueError, match="at least one metric"):
            make_artifact("unit", [])

    def test_rejects_duplicate_metric_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_artifact("unit", [
                BenchMetric("x", 1.0, "s"), BenchMetric("x", 2.0, "s"),
            ])

    def test_metric_rejects_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            BenchMetric("x", 1.0, "s", direction="sideways")

    def test_write_load_roundtrip(self, tmp_path):
        path = write_artifact(_bundle(), tmp_path / "BENCH_unit.json")
        loaded = load_artifact(path)
        assert loaded["metrics"] == _bundle()["metrics"]

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "wrong"}))
        with pytest.raises(ValueError, match="invalid"):
            load_artifact(path)

    def test_emit_bench_writes_repo_root_file(self, tmp_path, monkeypatch):
        import benchmarks.artifacts as artifacts

        monkeypatch.setattr(artifacts, "REPO_ROOT", tmp_path)
        path = artifacts.emit_bench(
            "smoke", [BenchMetric("v", 1.0, "s")], params={"n": 2}
        )
        assert path == tmp_path / "BENCH_smoke.json"
        assert load_artifact(path)["name"] == "smoke"


class TestCompare:
    def test_self_compare_is_clean(self):
        report = compare_artifacts(_bundle(), _bundle())
        assert report.ok
        assert report.regressions == []

    def test_higher_better_regresses_on_drop_only(self):
        assert not compare_artifacts(
            _bundle(), _bundle(speedup=8.0), tolerance=0.1
        ).regressions
        report = compare_artifacts(
            _bundle(), _bundle(speedup=3.0), tolerance=0.1
        )
        assert [c.name for c in report.regressions] == ["speedup"]

    def test_lower_better_regresses_on_rise_only(self):
        assert not compare_artifacts(
            _bundle(), _bundle(wall_ms=60.0), tolerance=0.1
        ).regressions
        report = compare_artifacts(
            _bundle(), _bundle(wall_ms=200.0), tolerance=0.1
        )
        assert [c.name for c in report.regressions] == ["wall_ms"]

    def test_two_sided_regresses_both_ways(self):
        for value in (180.0, 260.0):
            report = compare_artifacts(
                _bundle(), _bundle(mean_power_w=value), tolerance=0.1
            )
            assert [c.name for c in report.regressions] == ["mean_power_w"]

    def test_within_tolerance_passes(self):
        report = compare_artifacts(
            _bundle(), _bundle(mean_power_w=220.0), tolerance=0.1
        )
        assert report.ok

    def test_per_metric_tolerance_overrides_default(self):
        report = compare_artifacts(
            _bundle(), _bundle(wall_ms=200.0), tolerance=0.05,
            tolerances={"wall_ms": 2.0},
        )
        assert report.ok

    def test_missing_candidate_metric_regresses(self):
        candidate = make_artifact("unit", [BenchMetric("speedup", 4.0, "x",
                                                       direction="higher_better")])
        report = compare_artifacts(_bundle(), candidate)
        assert not report.ok
        missing = {c.name for c in report.regressions}
        assert missing == {"wall_ms", "mean_power_w"}

    def test_extra_candidate_metrics_ignored(self):
        baseline = make_artifact("unit", [BenchMetric("speedup", 4.0, "x",
                                                      direction="higher_better")])
        report = compare_artifacts(baseline, _bundle())
        assert report.ok
        assert len(report.comparisons) == 1

    def test_zero_baseline_judged_on_absolute_delta(self):
        baseline = make_artifact("unit", [BenchMetric("overshoot", 0.0, "Ws",
                                                      direction="lower_better")])
        candidate = make_artifact("unit", [BenchMetric("overshoot", 0.5, "Ws",
                                                       direction="lower_better")])
        report = compare_artifacts(baseline, candidate, tolerance=0.1)
        assert not report.ok

    def test_format_text_mentions_verdicts(self):
        report = compare_artifacts(_bundle(), _bundle(speedup=1.0))
        text = report.format_text()
        assert "REGRESSED" in text
        assert "regression(s)" in text


class TestBenchCompareCli:
    def _write(self, tmp_path, name, **values):
        return str(write_artifact(_bundle(**values), tmp_path / name))

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json")
        assert main(["bench-compare", base, base]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json")
        cand = self._write(tmp_path, "cand.json", speedup=1.0)
        assert main(["bench-compare", base, cand]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_tolerance_flag_loosens_gate(self, tmp_path):
        base = self._write(tmp_path, "base.json")
        cand = self._write(tmp_path, "cand.json", speedup=3.0)
        assert main(["bench-compare", base, cand, "--tolerance", "0.5"]) == 0

    def test_metric_tolerance_flag(self, tmp_path):
        base = self._write(tmp_path, "base.json")
        cand = self._write(tmp_path, "cand.json", wall_ms=200.0)
        assert main(["bench-compare", base, cand,
                     "--metric-tolerance", "wall_ms=2.0"]) == 0

    def test_bad_metric_tolerance_spec_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json")
        assert main(["bench-compare", base, base,
                     "--metric-tolerance", "nonsense"]) == 2
        assert "NAME=REL" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json")
        assert main(["bench-compare", base,
                     str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err
