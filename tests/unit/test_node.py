"""Unit tests for the node container and the node-level power map."""

import numpy as np
import pytest

from repro.hardware.node import Node, NodePowerModel


class TestNode:
    def test_tdp_and_floor(self):
        node = Node(node_id=0)
        assert node.tdp_w == pytest.approx(240.0)
        assert node.min_cap_w == pytest.approx(136.0)

    def test_rapl_cap_roundtrip(self):
        node = Node(node_id=1)
        actual = node.set_power_cap(180.0)
        assert actual == pytest.approx(180.0)
        assert node.power_cap() == pytest.approx(180.0)

    def test_cap_clamped_through_rapl(self):
        node = Node(node_id=2)
        assert node.set_power_cap(50.0) == pytest.approx(136.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            Node(node_id=0, efficiency=0.0)

    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            Node(node_id=0, sockets=0)

    def test_single_socket_node(self):
        node = Node(node_id=0, sockets=1)
        assert node.tdp_w == pytest.approx(120.0)


class TestNodePowerModel:
    def test_clamp_cap(self, node_model):
        caps = np.array([100.0, 200.0, 300.0])
        out = node_model.clamp_cap(caps)
        np.testing.assert_allclose(out, [136.0, 200.0, 240.0])

    def test_freq_at_cap_splits_sockets(self, node_model, socket_model):
        f_node = node_model.freq_at_cap(140.0, 1.0)
        f_socket = socket_model.freq_at_power(70.0, 1.0)
        assert f_node == pytest.approx(f_socket)

    def test_power_at_freq_doubles_socket(self, node_model, socket_model):
        p_node = node_model.power_at_freq(2.0, 0.95)
        assert p_node == pytest.approx(2 * socket_model.power_at(2.0, 0.95))

    def test_consumed_power_never_exceeds_generous_cap(self, node_model):
        """Under a generous cap, consumption is activity-limited."""
        p = node_model.consumed_power(240.0, kappa=0.9)
        assert p < 240.0

    def test_consumed_power_tracks_binding_cap(self, node_model):
        """A binding cap is consumed (nearly) fully."""
        p = node_model.consumed_power(160.0, kappa=1.0)
        assert p == pytest.approx(160.0, rel=1e-6)

    def test_uncapped_power_matches_fig4_peak(self, node_model):
        """kappa=1 uncapped draw is the 232 W Fig. 4 peak cell."""
        assert node_model.uncapped_power(1.0) == pytest.approx(232.0, abs=1.0)

    def test_uncapped_power_matches_fig4_row(self, node_model):
        """kappa from the intensity-1 calibration lands on Fig. 4's 209 W."""
        assert node_model.uncapped_power(0.892) == pytest.approx(209.0, abs=1.0)

    def test_cap_for_power_clamps(self, node_model):
        assert node_model.cap_for_power(100.0, 1.0) == pytest.approx(136.0)
        assert node_model.cap_for_power(250.0, 1.0) == pytest.approx(240.0)

    def test_vectorised_over_hosts(self, node_model):
        caps = np.linspace(140, 240, 100)
        kappas = np.linspace(0.85, 1.0, 100)
        effs = np.linspace(0.9, 1.1, 100)
        p = node_model.consumed_power(caps, kappas, effs)
        assert p.shape == (100,)
        assert np.all(p > 0)

    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            NodePowerModel(sockets=0)
