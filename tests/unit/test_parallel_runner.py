"""Unit tests for the ParallelRunner fan-out engine."""

import pytest

from repro.parallel.runner import WORKERS_ENV, ParallelRunner, resolve_workers
from repro.telemetry import get_registry, reset, set_enabled


def _square(x):
    return x * x


def _record_and_square(x):
    get_registry().counter("test.runner.calls").inc()
    return x * x


_FLAG = {"installed": False}


def _install_flag():
    _FLAG["installed"] = True


def _read_flag(_):
    return _FLAG["installed"]


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers(None)


class TestSerialPath:
    def test_workers_one_maps_in_order(self):
        runner = ParallelRunner(workers=1)
        assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert not runner.parallel

    def test_empty_payloads(self):
        assert ParallelRunner(workers=4).map(_square, []) == []

    def test_single_payload_stays_serial(self):
        # One payload never pays pool start-up cost.
        runner = ParallelRunner(workers=4)
        assert runner.map(_square, [5]) == [25]
        assert runner.pool_failures == 0

    def test_serial_runs_initializer(self):
        _FLAG["installed"] = False
        runner = ParallelRunner(workers=1, initializer=_install_flag)
        assert runner.map(_read_flag, [0, 0]) == [True, True]


class TestPoolPath:
    def test_results_in_payload_order(self):
        runner = ParallelRunner(workers=2)
        assert runner.map(_square, list(range(6))) == [x * x for x in range(6)]
        assert runner.parallel

    def test_pool_initializer_runs_in_workers(self):
        _FLAG["installed"] = False
        runner = ParallelRunner(workers=2, initializer=_install_flag)
        assert runner.map(_read_flag, [0, 0, 0, 0]) == [True] * 4
        assert _FLAG["installed"] is False  # parent untouched

    def test_worker_telemetry_merges_into_parent(self):
        previous = set_enabled(True)
        reset()
        try:
            runner = ParallelRunner(workers=2)
            runner.map(_record_and_square, [1, 2, 3, 4])
            merged = get_registry().counter("test.runner.calls").value
            assert merged == 4
        finally:
            reset()
            set_enabled(previous)

    def test_unpicklable_task_falls_back_to_serial(self):
        runner = ParallelRunner(workers=2)

        def local_square(x):  # locals cannot pickle by reference
            return x * x

        assert runner.map(local_square, [1, 2, 3]) == [1, 4, 9]
        assert runner.pool_failures == 1
