"""Unit tests for the JobAdaptive policy (per-job silos, §III-B)."""

import numpy as np
import pytest

from repro.core.job_adaptive import JobAdaptivePolicy
from tests.unit.test_policies_basic import make_char


class TestSilos:
    def test_no_cross_job_sharing(self):
        """A job's surplus never leaves the job: each job block sums to at
        most its uniform job budget."""
        char = make_char(
            monitor=[230, 230, 210, 150],
            needed=[230, 230, 210, 150],
            boundaries=[0, 2, 4],
        )
        budget = 800.0  # 200/host -> 400/job
        alloc = JobAdaptivePolicy().allocate(char, budget)
        job0 = alloc.caps_w[:2].sum()
        job1 = alloc.caps_w[2:].sum()
        assert job0 <= 400.0 + 1e-6
        assert job1 <= 400.0 + 1e-6

    def test_within_job_shift_to_needy(self):
        """Inside a job, the waiting host is trimmed to its needed power
        and the critical host boosted."""
        char = make_char(
            monitor=[230, 220],
            needed=[230, 140],
            boundaries=[0, 2],
        )
        alloc = JobAdaptivePolicy().allocate(char, 400.0)  # 200/host
        assert alloc.caps_w[0] > 200.0
        assert alloc.caps_w[1] < 200.0

    def test_overflow_scales_proportionally(self):
        """When needed power exceeds the job budget, targets scale down
        (the paper's percentage-reduction rule)."""
        char = make_char(
            monitor=[240, 240],
            needed=[240, 200],
            boundaries=[0, 2],
        )
        alloc = JobAdaptivePolicy().allocate(char, 400.0)  # need 440 > 400
        assert alloc.caps_w.sum() == pytest.approx(400.0)
        # Proportional above the floor: bigger target keeps a bigger cap.
        assert alloc.caps_w[0] > alloc.caps_w[1]

    def test_surplus_to_neediest_within_job(self):
        """Remainder goes to the hosts that need the most power,
        weighted by needed-above-floor."""
        char = make_char(
            monitor=[200, 180],
            needed=[200, 180],
            boundaries=[0, 2],
        )
        alloc = JobAdaptivePolicy().allocate(char, 410.0)  # 30 W surplus
        grant_hungry = alloc.caps_w[0] - 200.0
        grant_light = alloc.caps_w[1] - 180.0
        assert grant_hungry > grant_light > 0

    def test_surplus_rolls_over_at_tdp(self):
        """A needy host saturating at TDP rolls its share to the rest."""
        char = make_char(
            monitor=[230, 180],
            needed=[230, 180],
            boundaries=[0, 2],
        )
        alloc = JobAdaptivePolicy().allocate(char, 480.0)  # 70 W surplus
        assert alloc.caps_w[0] == pytest.approx(240.0)
        assert alloc.caps_w[1] == pytest.approx(240.0)

    def test_respects_tdp_on_surplus(self):
        char = make_char(
            monitor=[230, 150],
            needed=[230, 150],
            boundaries=[0, 2],
        )
        alloc = JobAdaptivePolicy().allocate(char, 700.0)
        assert np.all(alloc.caps_w <= 240.0 + 1e-9)
        assert alloc.unallocated_w > 0

    def test_within_budget_always(self):
        char = make_char(
            monitor=[230, 230, 210, 150],
            needed=[230, 200, 180, 150],
            boundaries=[0, 2, 4],
        )
        for budget in (560.0, 700.0, 850.0, 1200.0):
            alloc = JobAdaptivePolicy().allocate(char, budget)
            assert alloc.within_budget(), budget

    def test_equal_needs_equal_caps(self):
        char = make_char(
            monitor=[220, 220, 220],
            needed=[220, 220, 220],
            boundaries=[0, 3],
        )
        alloc = JobAdaptivePolicy().allocate(char, 630.0)
        assert np.ptp(alloc.caps_w) == pytest.approx(0.0, abs=1e-9)

    def test_flat_needs_fall_back_to_uniform_weights(self):
        """A job whose hosts all sit at the floor still gets its surplus
        spread (uniform weights) rather than dropped."""
        char = make_char(
            monitor=[136, 136],
            needed=[136, 136],
            boundaries=[0, 2],
        )
        alloc = JobAdaptivePolicy().allocate(char, 400.0)
        assert alloc.caps_w[0] == pytest.approx(alloc.caps_w[1])
        assert alloc.caps_w.sum() <= 400.0 + 1e-6
