"""Unit tests for :mod:`repro.units`."""

import numpy as np
import pytest

from repro import units


class TestConversions:
    def test_watts_to_kilowatts(self):
        assert units.watts_to_kilowatts(1500.0) == pytest.approx(1.5)

    def test_kilowatts_to_watts(self):
        assert units.kilowatts_to_watts(1.35) == pytest.approx(1350.0)

    def test_watt_roundtrip(self):
        assert units.kilowatts_to_watts(units.watts_to_kilowatts(777.0)) == pytest.approx(777.0)

    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)

    def test_seconds_per_day(self):
        assert units.SECONDS_PER_DAY == 24 * units.SECONDS_PER_HOUR


class TestEnsurePositive:
    def test_accepts_positive_scalar(self):
        assert units.ensure_positive(3.0, "x") == 3.0

    def test_accepts_positive_array(self):
        arr = np.array([1.0, 2.0])
        assert units.ensure_positive(arr, "x") is arr

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="strictly positive"):
            units.ensure_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="strictly positive"):
            units.ensure_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            units.ensure_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            units.ensure_positive(float("inf"), "x")

    def test_rejects_array_with_one_bad_element(self):
        with pytest.raises(ValueError):
            units.ensure_positive(np.array([1.0, 0.0]), "x")

    def test_error_names_the_parameter(self):
        with pytest.raises(ValueError, match="tdp_w"):
            units.ensure_positive(-5, "tdp_w")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert units.ensure_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            units.ensure_non_negative(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            units.ensure_non_negative(float("nan"), "x")


class TestEnsureFraction:
    def test_accepts_bounds(self):
        assert units.ensure_fraction(0.0, "x") == 0.0
        assert units.ensure_fraction(1.0, "x") == 1.0

    def test_accepts_interior(self):
        assert units.ensure_fraction(0.25, "x") == 0.25

    def test_rejects_above_one(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            units.ensure_fraction(1.01, "x")

    def test_rejects_below_zero(self):
        with pytest.raises(ValueError):
            units.ensure_fraction(-0.01, "x")

    def test_array_support(self):
        arr = np.array([0.0, 0.5, 1.0])
        assert units.ensure_fraction(arr, "x") is arr


class TestEnsureInRange:
    def test_accepts_in_range(self):
        assert units.ensure_in_range(5.0, 0.0, 10.0, "x") == 5.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            units.ensure_in_range(11.0, 0.0, 10.0, "x")

    def test_rejects_invalid_range(self):
        with pytest.raises(ValueError, match="invalid range"):
            units.ensure_in_range(5.0, 10.0, 0.0, "x")


class TestEnsureMonotonic:
    def test_accepts_increasing(self):
        assert units.ensure_monotonic_increasing([1, 2, 3], "x") == [1, 2, 3]

    def test_rejects_equal_neighbours(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            units.ensure_monotonic_increasing([1, 1, 2], "x")

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            units.ensure_monotonic_increasing([3, 2], "x")

    def test_empty_and_singleton_ok(self):
        assert units.ensure_monotonic_increasing([], "x") == []
        assert units.ensure_monotonic_increasing([7], "x") == [7]
