"""Unit tests for the resource manager's power manager."""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.manager.power_manager import PowerManager, apply_job_runtime
from repro.manager.scheduler import Scheduler
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig
from tests.unit.test_policies_basic import make_char


@pytest.fixture(scope="module")
def scheduled(small_cluster_module):
    mix = WorkloadMix(
        name="pm",
        jobs=(
            Job(name="hungry", config=KernelConfig(intensity=8.0), node_count=6,
                iterations=5),
            Job(
                name="waster",
                config=KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=3),
                node_count=6,
                iterations=5,
            ),
        ),
    )
    return Scheduler(small_cluster_module).allocate(mix)


@pytest.fixture(scope="module")
def small_cluster_module():
    from repro.hardware.cluster import Cluster

    return Cluster(node_count=40, seed=3)


class TestPlan:
    def test_plan_respects_budget(self, scheduled):
        manager = PowerManager()
        char = manager.characterize(scheduled)
        for name in ("StaticCaps", "MinimizeWaste", "JobAdaptive", "MixedAdaptive"):
            allocation = manager.plan(
                scheduled, create_policy(name), 12 * 200.0, characterization=char
            )
            assert allocation.within_budget(), name

    def test_precharacterized_overshoot_tolerated(self, scheduled):
        """Non-system-aware policies are allowed to exceed the budget —
        that failure mode is the phenomenon under study."""
        manager = PowerManager()
        allocation = manager.plan(scheduled, create_policy("Precharacterized"), 12 * 150.0)
        assert not allocation.within_budget()

    def test_bad_budget_rejected(self, scheduled):
        with pytest.raises(ValueError):
            PowerManager().plan(scheduled, create_policy("StaticCaps"), -5.0)


class TestLaunch:
    def test_launch_produces_run(self, scheduled):
        manager = PowerManager()
        run = manager.launch(scheduled, create_policy("StaticCaps"), 12 * 200.0)
        assert run.result.policy_name == "StaticCaps"
        assert run.allocation.policy_name == "StaticCaps"
        assert run.characterization.host_count == 12

    def test_characterization_reuse(self, scheduled):
        manager = PowerManager()
        char = manager.characterize(scheduled)
        run = manager.launch(
            scheduled, create_policy("MixedAdaptive"), 12 * 200.0,
            characterization=char,
        )
        assert run.characterization is char

    def test_application_aware_policies_run_under_balancer(self, scheduled):
        """At a generous budget, the app-aware policies' measured power
        stays at needed levels while StaticCaps lets pollers draw fully."""
        manager = PowerManager()
        char = manager.characterize(scheduled)
        budget = 12 * 240.0
        static = manager.launch(
            scheduled, create_policy("StaticCaps"), budget, characterization=char
        )
        mixed = manager.launch(
            scheduled, create_policy("MixedAdaptive"), budget, characterization=char
        )
        assert mixed.result.total_energy_j < static.result.total_energy_j


class TestApplyJobRuntime:
    def test_trims_to_needed_with_surplus(self):
        char = make_char(
            monitor=[230, 220],
            needed=[230, 150],
            boundaries=[0, 2],
        )
        caps = np.array([240.0, 240.0])
        effective = apply_job_runtime(char, caps)
        np.testing.assert_allclose(effective, [230.0, 150.0])

    def test_scales_down_when_job_budget_tight(self):
        char = make_char(
            monitor=[230, 220],
            needed=[230, 150],
            boundaries=[0, 2],
        )
        caps = np.array([170.0, 170.0])  # job budget 340 < needed 380
        effective = apply_job_runtime(char, caps)
        assert effective.sum() <= 340.0 + 1e-6
        assert effective[0] > effective[1]

    def test_per_job_isolation(self):
        """The runtime redistributes within each job independently."""
        char = make_char(
            monitor=[230, 220, 230, 220],
            needed=[230, 150, 230, 150],
            boundaries=[0, 2, 4],
        )
        caps = np.array([240.0, 240.0, 170.0, 170.0])
        effective = apply_job_runtime(char, caps)
        # Job 0 has surplus: exact needed; job 1 is tight: scaled.
        np.testing.assert_allclose(effective[:2], [230.0, 150.0])
        assert effective[2:].sum() <= 340.0 + 1e-6
