"""Unit tests for the bulk-synchronous execution loop."""

import numpy as np
import pytest

from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


def _mix(intensity=8.0, nodes=6, waiting=0.0, imbalance=1, iters=10, jobs=1):
    job_list = tuple(
        Job(
            name=f"j{i}",
            config=KernelConfig(
                intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
            ),
            node_count=nodes,
            iterations=iters,
        )
        for i in range(jobs)
    )
    return WorkloadMix(name="m", jobs=job_list)


class TestValidation:
    def test_cap_shape_checked(self, execution_model):
        mix = _mix()
        with pytest.raises(ValueError, match="caps_w"):
            simulate_mix(mix, np.full(3, 200.0), np.ones(6), execution_model)

    def test_efficiency_shape_checked(self, execution_model):
        mix = _mix()
        with pytest.raises(ValueError, match="efficiencies"):
            simulate_mix(mix, np.full(6, 200.0), np.ones(3), execution_model)

    def test_mismatched_iterations_rejected(self, execution_model):
        jobs = (
            Job(name="a", config=KernelConfig(intensity=1.0), node_count=2, iterations=5),
            Job(name="b", config=KernelConfig(intensity=1.0), node_count=2, iterations=9),
        )
        mix = WorkloadMix(name="m", jobs=jobs)
        with pytest.raises(ValueError, match="same iteration count"):
            simulate_mix(mix, np.full(4, 200.0), np.ones(4), execution_model)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SimulationOptions(noise_std=-0.1)


class TestDeterminism:
    def test_same_seed_same_result(self, execution_model):
        mix = _mix()
        caps, eff = np.full(6, 200.0), np.ones(6)
        opts = SimulationOptions(seed=4)
        a = simulate_mix(mix, caps, eff, execution_model, opts)
        b = simulate_mix(mix, caps, eff, execution_model, opts)
        np.testing.assert_array_equal(a.iteration_times_s, b.iteration_times_s)
        np.testing.assert_array_equal(a.host_energy_j, b.host_energy_j)

    def test_different_seed_differs(self, execution_model):
        mix = _mix()
        caps, eff = np.full(6, 200.0), np.ones(6)
        a = simulate_mix(mix, caps, eff, execution_model, SimulationOptions(seed=1))
        b = simulate_mix(mix, caps, eff, execution_model, SimulationOptions(seed=2))
        assert not np.array_equal(a.iteration_times_s, b.iteration_times_s)

    def test_zero_noise_iterations_identical(self, execution_model):
        mix = _mix()
        res = simulate_mix(
            mix, np.full(6, 200.0), np.ones(6), execution_model,
            SimulationOptions(noise_std=0.0),
        )
        spread = np.ptp(res.iteration_times_s, axis=0)
        np.testing.assert_allclose(spread, 0.0, atol=1e-15)


class TestPhysics:
    def test_result_shapes(self, execution_model):
        mix = _mix(iters=7, jobs=2)
        res = simulate_mix(mix, np.full(12, 200.0), np.ones(12), execution_model)
        assert res.iteration_times_s.shape == (7, 2)
        assert res.iteration_energy_j.shape == (7,)
        assert res.host_energy_j.shape == (12,)

    def test_more_power_is_faster_compute_bound(self, execution_model):
        mix = _mix(intensity=32.0)
        eff = np.ones(6)
        quiet = SimulationOptions(noise_std=0.0)
        slow = simulate_mix(mix, np.full(6, 150.0), eff, execution_model, quiet)
        fast = simulate_mix(mix, np.full(6, 240.0), eff, execution_model, quiet)
        assert fast.mean_elapsed_s < slow.mean_elapsed_s

    def test_caps_are_clamped_like_rapl(self, execution_model):
        """Caps outside the settable range behave as if clamped."""
        mix = _mix()
        eff = np.ones(6)
        quiet = SimulationOptions(noise_std=0.0)
        wild = simulate_mix(mix, np.full(6, 1000.0), eff, execution_model, quiet)
        clamped = simulate_mix(mix, np.full(6, 240.0), eff, execution_model, quiet)
        np.testing.assert_allclose(
            wild.iteration_times_s, clamped.iteration_times_s
        )

    def test_energy_positive(self, execution_model):
        mix = _mix()
        res = simulate_mix(mix, np.full(6, 200.0), np.ones(6), execution_model)
        assert np.all(res.host_energy_j > 0)

    def test_waiting_hosts_burn_slack_energy(self, execution_model):
        """Waiting hosts consume energy while polling — the paper's
        'consuming energy without making any application progress'."""
        mix = _mix(waiting=0.5, imbalance=3)
        quiet = SimulationOptions(noise_std=0.0)
        res = simulate_mix(mix, np.full(6, 240.0), np.ones(6), execution_model, quiet)
        layout = mix.layout()
        waiting_power = res.host_mean_power_w[~layout.critical]
        # Polling keeps waiting hosts well above idle: at least 80 % of a
        # critical host's mean power under no cap.
        critical_power = res.host_mean_power_w[layout.critical]
        assert waiting_power.min() > 0.8 * critical_power.max()

    def test_mean_power_below_cap(self, execution_model):
        mix = _mix()
        quiet = SimulationOptions(noise_std=0.0)
        res = simulate_mix(mix, np.full(6, 200.0), np.ones(6), execution_model, quiet)
        assert np.all(res.host_mean_power_w <= 200.0 + 1e-6)

    def test_total_gflop_deterministic(self, execution_model):
        mix = _mix(intensity=8.0, iters=10)
        res = simulate_mix(mix, np.full(6, 200.0), np.ones(6), execution_model)
        expected = 6 * 10 * 16.0  # hosts x iters x (8 f/b x 2 GB)
        assert res.total_gflop == pytest.approx(expected)

    def test_barrier_overhead_added(self, execution_model):
        mix = _mix()
        with_barrier = simulate_mix(
            mix, np.full(6, 200.0), np.ones(6), execution_model,
            SimulationOptions(noise_std=0.0, barrier_overhead_s=0.01),
        )
        without = simulate_mix(
            mix, np.full(6, 200.0), np.ones(6), execution_model,
            SimulationOptions(noise_std=0.0, barrier_overhead_s=0.0),
        )
        per_iter_delta = (
            with_barrier.iteration_times_s[0, 0] - without.iteration_times_s[0, 0]
        )
        assert per_iter_delta == pytest.approx(0.01)

    def test_metadata_recorded(self, execution_model):
        mix = _mix()
        res = simulate_mix(
            mix, np.full(6, 200.0), np.ones(6), execution_model,
            policy_name="TestPolicy", budget_w=1234.0,
        )
        assert res.policy_name == "TestPolicy"
        assert res.budget_w == 1234.0
