"""Unit tests for the socket frequency/power model (paper Table I)."""

import numpy as np
import pytest

from repro.hardware.cpu import CpuSpec, QUARTZ_CPU


class TestCpuSpec:
    def test_table1_constants(self):
        """The defaults are the paper's Table I values."""
        assert QUARTZ_CPU.tdp_w == 120.0
        assert QUARTZ_CPU.min_rapl_w == 68.0
        assert QUARTZ_CPU.base_freq_ghz == 2.1
        assert QUARTZ_CPU.cores * 2 == 36  # cores per node

    def test_rejects_min_freq_above_turbo(self):
        with pytest.raises(ValueError, match="min_freq_ghz"):
            CpuSpec(min_freq_ghz=3.0, turbo_freq_ghz=2.2)

    def test_rejects_floor_above_tdp(self):
        with pytest.raises(ValueError, match="min_rapl_w"):
            CpuSpec(min_rapl_w=130.0, tdp_w=120.0)

    def test_rejects_uncore_above_floor(self):
        with pytest.raises(ValueError, match="uncore"):
            CpuSpec(uncore_power_w=70.0)

    def test_rejects_nonpositive_tdp(self):
        with pytest.raises(ValueError):
            CpuSpec(tdp_w=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            QUARTZ_CPU.tdp_w = 100.0  # type: ignore[misc]


class TestForwardMap:
    def test_power_increases_with_frequency(self, socket_model):
        freqs = np.linspace(1.0, 2.2, 20)
        powers = socket_model.power_at(freqs, kappa=1.0)
        assert np.all(np.diff(powers) > 0)

    def test_power_increases_with_activity(self, socket_model):
        low = socket_model.power_at(2.0, kappa=0.8)
        high = socket_model.power_at(2.0, kappa=1.0)
        assert high > low

    def test_power_increases_with_inefficiency(self, socket_model):
        nominal = socket_model.power_at(2.0, 1.0, efficiency=1.0)
        worse = socket_model.power_at(2.0, 1.0, efficiency=1.1)
        assert worse > nominal

    def test_uncore_floor(self, socket_model):
        """Power never falls below the uncore constant."""
        p = socket_model.power_at(0.0, kappa=1.0)
        assert p == pytest.approx(QUARTZ_CPU.uncore_power_w)

    def test_broadcasting(self, socket_model):
        freqs = np.array([1.5, 2.0])
        kappas = np.array([0.9, 1.0])
        out = socket_model.power_at(freqs, kappas)
        assert out.shape == (2,)


class TestInverseMap:
    def test_roundtrip_within_dvfs_band(self, socket_model):
        """freq -> power -> freq is the identity inside the DVFS band."""
        for f in (1.2, 1.5, 1.9, 2.1):
            p = socket_model.power_at(f, kappa=0.95)
            back = socket_model.freq_at_power(p, kappa=0.95)
            assert back == pytest.approx(f, rel=1e-9)

    def test_turbo_clamp(self, socket_model):
        """Huge budgets clamp at the all-core turbo ceiling."""
        f = socket_model.freq_at_power(500.0, kappa=1.0)
        assert f == pytest.approx(QUARTZ_CPU.turbo_freq_ghz)

    def test_min_freq_clamp(self, socket_model):
        """Budgets below the uncore floor clamp at the minimum frequency."""
        f = socket_model.freq_at_power(QUARTZ_CPU.uncore_power_w / 2, kappa=1.0)
        assert f == pytest.approx(QUARTZ_CPU.min_freq_ghz)

    def test_monotone_in_power(self, socket_model):
        powers = np.linspace(30.0, 120.0, 50)
        freqs = socket_model.freq_at_power(powers, kappa=1.0)
        assert np.all(np.diff(freqs) >= -1e-12)

    def test_calibration_uncapped_power(self, socket_model):
        """The hottest configuration draws ~116 W uncapped (232 W/node,
        the peak cell of the paper's Fig. 4)."""
        assert socket_model.uncapped_power(1.0) == pytest.approx(116.0, abs=0.5)

    def test_calibration_fig6_band(self, socket_model):
        """A 70 W cap puts the hottest workload at ~1.75 GHz on a nominal
        part — the centre of the paper's Fig. 6 medium cluster."""
        f = socket_model.freq_at_power(70.0, kappa=1.0)
        assert 1.70 < f < 1.80

    def test_variation_spreads_fig6_band(self, socket_model):
        """Efficient and inefficient parts bracket the nominal frequency."""
        f_bad = socket_model.freq_at_power(70.0, 1.0, efficiency=1.105)
        f_good = socket_model.freq_at_power(70.0, 1.0, efficiency=0.90)
        f_nom = socket_model.freq_at_power(70.0, 1.0)
        assert f_bad < f_nom < f_good
        assert 1.55 < f_bad and f_good < 2.0


class TestDerived:
    def test_effective_cap_clamps(self, socket_model):
        caps = np.array([10.0, 90.0, 500.0])
        out = socket_model.effective_cap(caps)
        assert out[0] == QUARTZ_CPU.min_rapl_w
        assert out[1] == 90.0
        assert out[2] == QUARTZ_CPU.tdp_w

    def test_floor_power_below_floor_cap(self, socket_model):
        """Floor consumption never exceeds the floor cap."""
        assert socket_model.floor_power(1.0) <= QUARTZ_CPU.min_rapl_w + 1e-9

    def test_uncapped_power_below_tdp_for_low_activity(self, socket_model):
        """Low-activity workloads are turbo-limited, not TDP-limited."""
        p = socket_model.uncapped_power(0.85)
        assert p < QUARTZ_CPU.tdp_w

    def test_cubic_solver_vectorised(self, socket_model):
        budgets = np.linspace(1.0, 110.0, 1000)
        f = socket_model._solve_core_cubic(budgets)
        # Verify each root satisfies the cubic.
        c3, c1 = QUARTZ_CPU.dynamic_coeff, QUARTZ_CPU.static_coeff
        residual = c3 * f**3 + c1 * f - budgets
        assert np.max(np.abs(residual)) < 1e-6
