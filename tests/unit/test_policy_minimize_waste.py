"""Unit tests for the MinimizeWaste policy (SLURM-style, §III-B)."""

import numpy as np
import pytest

from repro.core.minimize_waste import MinimizeWastePolicy
from tests.unit.test_policies_basic import make_char


class TestTrimming:
    def test_trims_to_observed_power(self):
        """Hosts drawing less than the uniform share are trimmed to their
        observed draw."""
        char = make_char(
            monitor=[230, 160, 230, 160],
            needed=[230, 160, 230, 160],
            boundaries=[0, 2, 4],
        )
        alloc = MinimizeWastePolicy().allocate(char, 800.0)  # 200/host
        assert alloc.caps_w[1] == pytest.approx(160.0)
        assert alloc.caps_w[3] == pytest.approx(160.0)

    def test_surplus_goes_to_power_bound_hosts(self):
        char = make_char(
            monitor=[230, 160, 230, 160],
            needed=[230, 160, 230, 160],
            boundaries=[0, 2, 4],
        )
        alloc = MinimizeWastePolicy().allocate(char, 800.0)
        # 80 W trimmed, split between the two 230 W hosts (equal weights).
        assert alloc.caps_w[0] == pytest.approx(230.0)
        assert alloc.caps_w[2] == pytest.approx(230.0)

    def test_never_allocates_beyond_observed(self):
        """The policy has no performance data, so observed draw bounds
        every grant."""
        char = make_char(
            monitor=[230, 150, 150, 150],
            needed=[230, 150, 150, 150],
            boundaries=[0, 2, 4],
        )
        alloc = MinimizeWastePolicy().allocate(char, 900.0)
        assert np.all(alloc.caps_w <= char.monitor_power_w + 1e-9)

    def test_leftover_unallocated_at_generous_budget(self):
        char = make_char(
            monitor=[200, 200], needed=[200, 200], boundaries=[0, 2]
        )
        alloc = MinimizeWastePolicy().allocate(char, 480.0)
        assert alloc.unallocated_w == pytest.approx(80.0)

    def test_within_budget(self):
        char = make_char(
            monitor=[230, 160, 210, 180],
            needed=[230, 160, 210, 180],
            boundaries=[0, 2, 4],
        )
        for budget in (560.0, 700.0, 800.0, 1000.0):
            assert MinimizeWastePolicy().allocate(char, budget).within_budget()

    def test_blind_to_polling_waste(self):
        """The policy's defining limitation: a poller drawing high power
        looks power-bound and is NOT trimmed (needed power is invisible
        without application awareness)."""
        char = make_char(
            monitor=[230, 220],  # host 1 polls at high power
            needed=[230, 140],   # ...but only needs 140 W
            boundaries=[0, 2],
        )
        alloc = MinimizeWastePolicy().allocate(char, 440.0)  # 220/host
        assert alloc.caps_w[1] == pytest.approx(220.0)

    def test_tight_budget_stays_uniform(self):
        """When the share is below every host's draw, nothing is trimmed
        — the paper's 'min caps degenerate to StaticCaps' behaviour."""
        char = make_char(
            monitor=[230, 220, 210, 225],
            needed=[230, 220, 210, 225],
            boundaries=[0, 2, 4],
        )
        alloc = MinimizeWastePolicy().allocate(char, 600.0)  # 150/host
        np.testing.assert_allclose(alloc.caps_w, 150.0)

    def test_weights_favour_bigger_consumers(self):
        """Surplus is weighted by assigned-minus-floor: the host trimmed
        higher receives more of the pool."""
        char = make_char(
            monitor=[300, 260, 100, 100],
            needed=[300, 260, 100, 100],
            boundaries=[0, 2, 4],
        )
        # share 180: hosts 2,3 trimmed to 136 (floor) -> pool 88
        alloc = MinimizeWastePolicy().allocate(char, 720.0)
        grant0 = alloc.caps_w[0] - 180.0
        grant1 = alloc.caps_w[1] - 180.0
        assert grant0 == pytest.approx(grant1)  # equal weights at equal assignment
        assert grant0 > 0
