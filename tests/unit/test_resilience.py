"""Unit tests for the resilience experiment (policies under faults)."""

import dataclasses

import pytest

from repro.experiments.resilience import (
    ResilienceReport,
    ScenarioOutcome,
    run_resilience_suite,
    standard_arrivals,
)

#: One small suite shared by every test in the module (site shifts are
#: the expensive part; the assertions below slice the same matrix).
_SCENARIOS = ("budget-step", "sensor-blackout", "brownout")
_POLICIES = ("StaticCaps", "MixedAdaptive")


@pytest.fixture(scope="module")
def report() -> ResilienceReport:
    return run_resilience_suite(
        scenarios=_SCENARIOS,
        policies=_POLICIES,
        jobs=3,
        nodes_per_job=3,
        iterations=6,
    )


class TestSuiteShape:
    def test_full_matrix_scored(self, report):
        assert len(report.outcomes) == len(_SCENARIOS) * len(_POLICIES)
        for policy in _POLICIES:
            assert [o.scenario for o in report.of_policy(policy)] == \
                list(_SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="meteor"):
            run_resilience_suite(scenarios=("meteor",), jobs=1)

    def test_arrival_stream_deterministic(self):
        a = standard_arrivals(4, 2, 6)
        b = standard_arrivals(4, 2, 6)
        assert [(x.time_s, x.request.name, x.request.config) for x in a] == \
            [(x.time_s, x.request.name, x.request.config) for x in b]


class TestOutcomes:
    def test_all_jobs_complete_under_feasible_faults(self, report):
        for o in report.outcomes:
            if o.feasible:
                assert o.completed_jobs == 3

    def test_brownout_reported_infeasible(self, report):
        for o in report.outcomes:
            assert o.feasible == (o.scenario != "brownout")

    def test_feasible_scenarios_hold_planned_budget(self, report):
        for o in report.outcomes:
            if o.feasible:
                assert o.compliant(), (o.policy, o.scenario)

    def test_sensor_blackout_degrades_batches(self, report):
        """With telemetry dark the ladder falls to the clamp tier at
        least once — the degradation path is actually exercised."""
        for policy in _POLICIES:
            blackout = [o for o in report.of_policy(policy)
                        if o.scenario == "sensor-blackout"]
            assert blackout[0].degraded_batches >= 1

    def test_qos_loss_by_policy_covers_feasible_only(self, report):
        losses = report.qos_loss_by_policy()
        assert set(losses) == set(_POLICIES)
        for policy in _POLICIES:
            feasible = [o.qos_loss_pct for o in report.of_policy(policy)
                        if o.feasible]
            assert losses[policy] == pytest.approx(
                sum(feasible) / len(feasible)
            )


class TestChecks:
    def test_gate_passes_on_the_small_suite(self, report):
        checks = report.check()
        assert checks["zero_planned_overshoot"]
        assert checks["infeasible_reported"]
        assert report.all_hold()

    def test_gate_fails_on_synthetic_overshoot(self, report):
        broken = dataclasses.replace(
            report,
            outcomes=tuple(
                dataclasses.replace(o, planned_overshoot_ws=50.0)
                if o.feasible else o
                for o in report.outcomes
            ),
        )
        assert not broken.check()["zero_planned_overshoot"]
        assert not broken.all_hold()

    def test_render_lists_every_cell(self, report):
        text = report.render()
        assert "Resilience suite" in text
        for o in report.outcomes:
            assert o.scenario in text
        assert "NO" in text  # brownout's feasibility column


class TestScenarioOutcome:
    def test_compliant_threshold(self):
        base = dict(policy="p", scenario="s", feasible=True,
                    actuator_faults=False, qos_loss_pct=0.0,
                    total_overshoot_ws=0.0, degraded_batches=0,
                    completed_jobs=1, makespan_s=1.0)
        assert ScenarioOutcome(planned_overshoot_ws=0.0, **base).compliant()
        assert not ScenarioOutcome(
            planned_overshoot_ws=1.0, **base
        ).compliant()
