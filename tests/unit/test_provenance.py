"""Unit tests for the run-provenance ledger."""

import pytest

from repro import telemetry
from repro.telemetry.provenance import (
    PROVENANCE_SCHEMA,
    capture_ledger,
    load_ledger,
    validate_ledger,
    write_ledger,
)


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    telemetry.reset()
    telemetry.get_tracer().clear()
    yield
    telemetry.reset()
    telemetry.get_tracer().clear()


class TestCapture:
    def test_capture_is_schema_valid(self):
        bundle = capture_ledger("unit-test")
        assert validate_ledger(bundle) == []
        assert bundle["schema"] == PROVENANCE_SCHEMA
        assert bundle["kind"] == "unit-test"

    def test_config_hash_is_content_addressed(self):
        a = capture_ledger("k", config={"scale": 10})
        b = capture_ledger("k", config={"scale": 10})
        c = capture_ledger("k", config={"scale": 20})
        assert a["config_hash"] == b["config_hash"]
        assert a["config_hash"] != c["config_hash"]

    def test_inputs_and_seed_recorded_verbatim(self):
        bundle = capture_ledger(
            "grid", inputs={"mixes": ["LowPower"]}, seed=42,
            seed_lineage={"spawn": "SeedSequence(42).spawn(3)"},
        )
        assert bundle["inputs"] == {"mixes": ["LowPower"]}
        assert bundle["seed"]["root"] == 42
        assert "spawn" in bundle["seed"]["lineage"]

    def test_spans_and_metrics_snapshot_included(self):
        telemetry.get_registry().counter("unit.runs").inc(3)
        with telemetry.span("unit.work"):
            pass
        bundle = capture_ledger("unit-test")
        assert [s["name"] for s in bundle["spans"]] == ["unit.work"]
        assert bundle["metrics"]["counters"]["unit.runs"] == 3.0

    def test_cache_section_reports_ratio(self):
        bundle = capture_ledger("unit-test")
        cache = bundle["cache"]
        assert set(cache) == {"hits", "misses", "hit_ratio"}
        assert 0.0 <= cache["hit_ratio"] <= 1.0

    def test_fault_schedule_digested(self):
        from repro.faults.schedule import FaultSchedule

        schedule = FaultSchedule(name="drop").budget_drop(
            time_s=1.0, budget_w=500.0
        )
        bundle = capture_ledger("faults", fault_schedule=schedule)
        digest = bundle["fault_schedule"]
        assert digest["name"] == "drop"
        assert digest["events"] == 1
        assert digest["digest"]

    def test_versions_and_host_identity(self):
        bundle = capture_ledger("unit-test")
        assert set(bundle["versions"]) == {"repro", "python", "numpy"}
        assert "hostname" in bundle["host"]
        assert "commit" in bundle["git"]


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        bundle = capture_ledger("roundtrip", seed=7)
        path = write_ledger(bundle, tmp_path / "provenance.json")
        loaded = load_ledger(path)
        assert loaded["kind"] == "roundtrip"
        assert loaded["seed"]["root"] == 7
        assert loaded["config_hash"] == bundle["config_hash"]

    def test_write_refuses_invalid_bundle(self, tmp_path):
        bundle = capture_ledger("bad")
        del bundle["config_hash"]
        with pytest.raises(ValueError, match="config_hash"):
            write_ledger(bundle, tmp_path / "provenance.json")

    def test_load_refuses_tampered_file(self, tmp_path):
        bundle = capture_ledger("tampered")
        path = write_ledger(bundle, tmp_path / "provenance.json")
        import json

        data = json.loads(path.read_text())
        data["schema"] = "repro.provenance.v999"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema"):
            load_ledger(path)


class TestValidate:
    def test_missing_key_reported_by_name(self):
        bundle = capture_ledger("k")
        del bundle["spans"]
        problems = validate_ledger(bundle)
        assert any("spans" in p for p in problems)

    def test_wrong_type_reported(self):
        bundle = capture_ledger("k")
        bundle["metrics"] = "not-a-dict"
        assert any("metrics" in p for p in validate_ledger(bundle))

    def test_non_mapping_rejected(self):
        assert validate_ledger([1, 2, 3])

    def test_span_entries_must_be_span_dicts(self):
        bundle = capture_ledger("k")
        bundle["spans"] = [{"not_a_span": True}]
        assert any("span" in p for p in validate_ledger(bundle))
