"""Direct tests for small accessors that only had indirect coverage."""

import numpy as np
import pytest

from repro.experiments.provisioning import ProvisioningPoint
from repro.runtime.reports import HostReport, JobReport
from repro.workload.catalog import build_catalog
from tests.unit.test_policies_basic import make_char


class TestJobTotalNeeded:
    def test_sums_per_job(self):
        char = make_char(
            monitor=[230, 210, 190, 170],
            needed=[200, 180, 160, 150],
            boundaries=[0, 2, 4],
        )
        totals = char.job_total_needed_w()
        np.testing.assert_allclose(totals, [380.0, 310.0])


class TestReportPowerLimits:
    def test_limits_in_host_order(self):
        hosts = tuple(
            HostReport(i, 1.0, 100.0, 100.0, 2.0, 200.0 + i, 1)
            for i in range(3)
        )
        report = JobReport(job_name="j", agent="monitor", hosts=hosts)
        np.testing.assert_allclose(report.power_limits_w(), [200.0, 201.0, 202.0])


class TestCatalogPollPower:
    def test_uncapped_poll_power_below_peak(self):
        catalog = build_catalog()
        poll = catalog.uncapped_poll_power_w()
        peak = catalog.uncapped_power_w(catalog.find(8.0))
        assert 180.0 < poll < peak

    def test_poll_power_consistent_with_activity(self):
        from repro.hardware.node import NodePowerModel
        from repro.workload.kernel import POLL_ACTIVITY_FACTOR

        catalog = build_catalog()
        expected = NodePowerModel().uncapped_power(POLL_ACTIVITY_FACTOR)
        assert catalog.uncapped_poll_power_w() == pytest.approx(float(expected))


class TestProvisioningPoint:
    def test_overprovisioning_factor(self):
        point = ProvisioningPoint(
            nodes=100, cap_per_node_w=120.0,
            per_node_gflops=10.0, fleet_gflops=1000.0,
        )
        assert point.overprovisioning_factor == pytest.approx(2.0)
