"""Unit tests for the policy base, registry, and the static policies."""

import numpy as np
import pytest

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.policy import Policy
from repro.core.precharacterized import PrecharacterizedPolicy
from repro.core.registry import POLICY_NAMES, create_policy, default_policies
from repro.core.static_caps import StaticCapsPolicy


def make_char(monitor, needed, boundaries):
    monitor = np.asarray(monitor, dtype=float)
    needed = np.asarray(needed, dtype=float)
    return MixCharacterization(
        mix_name="synthetic",
        job_boundaries=np.asarray(boundaries),
        monitor_power_w=monitor,
        needed_power_w=needed,
        needed_cap_w=np.clip(needed, 136.0, 240.0),
        min_cap_w=136.0,
        tdp_w=240.0,
    )


@pytest.fixture()
def two_job_char():
    """Job 0: hungry balanced (230 W); job 1: wasteful (210 observed,
    150 needed)."""
    return make_char(
        monitor=[230, 230, 210, 210],
        needed=[230, 230, 150, 150],
        boundaries=[0, 2, 4],
    )


class TestRegistry:
    def test_legend_order(self):
        assert POLICY_NAMES == (
            "Precharacterized",
            "StaticCaps",
            "MinimizeWaste",
            "JobAdaptive",
            "MixedAdaptive",
        )

    def test_create_each(self):
        for name in POLICY_NAMES:
            assert create_policy(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            create_policy("Nope")

    def test_default_policies_order(self):
        assert [p.name for p in default_policies()] == list(POLICY_NAMES)

    def test_visibility_flags_match_paper_table(self):
        flags = {p.name: p.describe() for p in default_policies()}
        assert flags["Precharacterized"] == {
            "system_power_aware": False, "application_aware": False,
        }
        assert flags["StaticCaps"]["system_power_aware"] is True
        assert flags["MinimizeWaste"] == {
            "system_power_aware": True, "application_aware": False,
        }
        assert flags["JobAdaptive"] == {
            "system_power_aware": False, "application_aware": True,
        }
        assert flags["MixedAdaptive"] == {
            "system_power_aware": True, "application_aware": True,
        }


class TestPolicyBase:
    def test_rejects_nonpositive_budget(self, two_job_char):
        with pytest.raises(ValueError):
            StaticCapsPolicy().allocate(two_job_char, 0.0)

    def test_output_always_rapl_programmable(self, two_job_char):
        """Every policy's caps land inside [floor, TDP] for any budget."""
        for policy in default_policies():
            for budget in (400.0, 700.0, 2000.0):
                alloc = policy.allocate(two_job_char, budget)
                assert np.all(alloc.caps_w >= 136.0 - 1e-9), policy.name
                assert np.all(alloc.caps_w <= 240.0 + 1e-9), policy.name

    def test_deterministic(self, two_job_char):
        for policy in default_policies():
            a = policy.allocate(two_job_char, 780.0)
            b = policy.allocate(two_job_char, 780.0)
            np.testing.assert_array_equal(a.caps_w, b.caps_w)

    def test_uniform_share(self, two_job_char):
        assert Policy.uniform_share(two_job_char, 800.0) == pytest.approx(200.0)


class TestStaticCaps:
    def test_uniform_below_clip(self, two_job_char):
        alloc = StaticCapsPolicy().allocate(two_job_char, 640.0)  # 160/host
        np.testing.assert_allclose(alloc.caps_w, 160.0)

    def test_clips_at_job_max_monitor(self, two_job_char):
        alloc = StaticCapsPolicy().allocate(two_job_char, 960.0)  # 240/host
        np.testing.assert_allclose(alloc.caps_w, [230, 230, 210, 210])

    def test_no_redistribution_of_clipped_power(self, two_job_char):
        """Clipped power is recorded as unallocated, not moved."""
        alloc = StaticCapsPolicy().allocate(two_job_char, 960.0)
        assert alloc.unallocated_w == pytest.approx(960.0 - 880.0)

    def test_within_budget_always(self, two_job_char):
        for budget in (560.0, 700.0, 900.0, 1300.0):
            assert StaticCapsPolicy().allocate(two_job_char, budget).within_budget()


class TestPrecharacterized:
    def test_caps_at_job_max(self, two_job_char):
        alloc = PrecharacterizedPolicy().allocate(two_job_char, 700.0)
        np.testing.assert_allclose(alloc.caps_w, [230, 230, 210, 210])

    def test_ignores_budget(self, two_job_char):
        low = PrecharacterizedPolicy().allocate(two_job_char, 600.0)
        high = PrecharacterizedPolicy().allocate(two_job_char, 1200.0)
        np.testing.assert_array_equal(low.caps_w, high.caps_w)

    def test_overshoot_recorded(self, two_job_char):
        alloc = PrecharacterizedPolicy().allocate(two_job_char, 600.0)
        assert alloc.notes["overshoot_w"] == pytest.approx(880.0 - 600.0)
        assert not alloc.within_budget()

    def test_no_overshoot_at_generous_budget(self, two_job_char):
        alloc = PrecharacterizedPolicy().allocate(two_job_char, 1000.0)
        assert alloc.notes["overshoot_w"] == 0.0
