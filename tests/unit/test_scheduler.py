"""Unit tests for the node scheduler."""

import numpy as np
import pytest

from repro.manager.scheduler import ScheduledMix, Scheduler
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


def _mix(nodes_per_job=10, jobs=3):
    return WorkloadMix(
        name="m",
        jobs=tuple(
            Job(name=f"j{i}", config=KernelConfig(intensity=4.0),
                node_count=nodes_per_job)
            for i in range(jobs)
        ),
    )


class TestScheduler:
    def test_allocates_distinct_nodes(self, small_cluster):
        scheduled = Scheduler(small_cluster).allocate(_mix())
        assert np.unique(scheduled.node_ids).size == 30

    def test_efficiencies_match_node_ids(self, small_cluster):
        scheduled = Scheduler(small_cluster).allocate(_mix())
        np.testing.assert_array_equal(
            scheduled.efficiencies, small_cluster.efficiencies[scheduled.node_ids]
        )

    def test_too_small_partition_rejected(self, small_cluster):
        big = _mix(nodes_per_job=100, jobs=3)
        with pytest.raises(ValueError, match="needs 300 nodes"):
            Scheduler(small_cluster).allocate(big)

    def test_shuffle_seed_deterministic(self, small_cluster):
        a = Scheduler(small_cluster, shuffle_seed=4).allocate(_mix())
        b = Scheduler(small_cluster, shuffle_seed=4).allocate(_mix())
        np.testing.assert_array_equal(a.node_ids, b.node_ids)

    def test_no_shuffle_assigns_in_order(self, small_cluster):
        scheduled = Scheduler(small_cluster, shuffle_seed=None).allocate(_mix())
        np.testing.assert_array_equal(scheduled.node_ids, np.arange(30))

    def test_shuffle_changes_layout(self, small_cluster):
        ordered = Scheduler(small_cluster, shuffle_seed=None).allocate(_mix())
        shuffled = Scheduler(small_cluster, shuffle_seed=7).allocate(_mix())
        assert not np.array_equal(ordered.node_ids, shuffled.node_ids)

    def test_job_node_ids(self, small_cluster):
        scheduled = Scheduler(small_cluster, shuffle_seed=None).allocate(_mix())
        np.testing.assert_array_equal(scheduled.job_node_ids(1), np.arange(10, 20))


class TestScheduledMix:
    def test_rejects_shape_mismatch(self, small_cluster):
        mix = _mix()
        with pytest.raises(ValueError):
            ScheduledMix(mix=mix, node_ids=np.arange(5), efficiencies=np.ones(5))

    def test_rejects_duplicate_nodes(self, small_cluster):
        mix = _mix(nodes_per_job=1, jobs=2)
        with pytest.raises(ValueError, match="two hosts"):
            ScheduledMix(
                mix=mix, node_ids=np.array([3, 3]), efficiencies=np.ones(2)
            )
