"""Unit tests for the EAR-style FrequencyCapped extension policy."""

import numpy as np
import pytest

from repro.core.frequency_capped import FrequencyCappedPolicy
from repro.hardware.node import NodePowerModel
from tests.unit.test_policies_basic import make_char


@pytest.fixture()
def policy_inputs():
    model = NodePowerModel()
    eff = np.array([0.9, 1.0, 1.1, 1.0])
    kappas = np.full(4, 1.0)
    char = make_char(
        monitor=[232, 232, 232, 232],
        needed=[232, 232, 232, 232],
        boundaries=[0, 2, 4],
    )
    return model, eff, kappas, char


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FrequencyCappedPolicy(NodePowerModel(), np.ones(3), np.ones(2))

    def test_host_count_checked(self, policy_inputs):
        model, eff, kappas, char = policy_inputs
        policy = FrequencyCappedPolicy(model, eff[:2], kappas[:2])
        with pytest.raises(ValueError, match="hosts"):
            policy.allocate(char, 800.0)


class TestAllocation:
    def test_respects_budget(self, policy_inputs):
        model, eff, kappas, char = policy_inputs
        policy = FrequencyCappedPolicy(model, eff, kappas)
        for budget in (600.0, 700.0, 800.0, 900.0):
            alloc = policy.allocate(char, budget)
            assert alloc.within_budget(tolerance_w=1e-3), budget

    def test_equal_frequency_across_variation(self, policy_inputs):
        """All hosts land on the same achieved frequency — the policy's
        defining property — so inefficient parts get larger caps."""
        model, eff, kappas, char = policy_inputs
        policy = FrequencyCappedPolicy(model, eff, kappas)
        alloc = policy.allocate(char, 760.0)
        freqs = model.freq_at_cap(alloc.caps_w, kappas, eff)
        assert np.ptp(freqs) < 1e-3
        assert alloc.caps_w[2] > alloc.caps_w[0]  # eff 1.1 needs more W

    def test_generous_budget_hits_turbo(self, policy_inputs):
        model, eff, kappas, char = policy_inputs
        policy = FrequencyCappedPolicy(model, eff, kappas)
        alloc = policy.allocate(char, 4 * 240.0)
        assert alloc.notes["target_freq_ghz"] == pytest.approx(
            model.spec.turbo_freq_ghz
        )

    def test_tight_budget_hits_floor_frequency(self, policy_inputs):
        model, eff, kappas, char = policy_inputs
        policy = FrequencyCappedPolicy(model, eff, kappas)
        alloc = policy.allocate(char, 4 * 137.0)
        assert np.all(alloc.caps_w >= 136.0 - 1e-9)
        assert alloc.within_budget(tolerance_w=1e-3)

    def test_contrast_with_uniform_power(self, policy_inputs):
        """Under variation, uniform-frequency and uniform-power divide
        the same budget differently: the frequency policy narrows the
        frequency spread that a uniform power cap leaves open."""
        model, eff, kappas, char = policy_inputs
        budget = 720.0
        freq_policy = FrequencyCappedPolicy(model, eff, kappas)
        freq_caps = freq_policy.allocate(char, budget).caps_w
        uniform_caps = np.full(4, budget / 4)
        f_freq = model.freq_at_cap(freq_caps, kappas, eff)
        f_unif = model.freq_at_cap(uniform_caps, kappas, eff)
        assert np.ptp(f_freq) < np.ptp(f_unif) / 10

    def test_deterministic(self, policy_inputs):
        model, eff, kappas, char = policy_inputs
        policy = FrequencyCappedPolicy(model, eff, kappas)
        a = policy.allocate(char, 750.0)
        b = policy.allocate(char, 750.0)
        np.testing.assert_array_equal(a.caps_w, b.caps_w)
