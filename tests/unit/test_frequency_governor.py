"""Unit tests for the frequency-governor agent."""

import numpy as np
import pytest

from repro.runtime.controller import Controller
from repro.runtime.frequency_governor import (
    FrequencyGovernorAgent,
    FrequencyGovernorOptions,
)
from repro.workload.job import Job
from repro.workload.kernel import KernelConfig


def _controller(target, nodes=4, intensity=8.0, execution_model=None, **opts):
    job = Job(name="fg", config=KernelConfig(intensity=intensity),
              node_count=nodes)
    agent = FrequencyGovernorAgent(
        target_freq_ghz=target,
        options=FrequencyGovernorOptions(**opts) if opts else FrequencyGovernorOptions(),
    )
    controller = Controller(job, np.ones(nodes), agent, model=execution_model)
    return controller, agent


class TestOptions:
    def test_rejects_bad_gain(self):
        with pytest.raises(ValueError):
            FrequencyGovernorOptions(gain=0.0)

    def test_rejects_inverted_limits(self):
        with pytest.raises(ValueError):
            FrequencyGovernorOptions(min_limit_w=240.0, max_limit_w=136.0)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            FrequencyGovernorAgent(target_freq_ghz=0.0)


class TestTracking:
    @pytest.mark.parametrize("target", [1.75, 1.9, 2.0])
    def test_reaches_in_band_target(self, execution_model, target):
        controller, agent = _controller(target, execution_model=execution_model)
        controller.run(max_epochs=60)
        achieved = controller.steady_state_sample().mean_freq_ghz
        np.testing.assert_allclose(achieved, target, atol=0.02)

    def test_converged_flag(self, execution_model):
        controller, agent = _controller(1.8, execution_model=execution_model)
        controller.run(max_epochs=60)
        assert agent.converged()
        assert agent.describe()["max_error_ghz"] <= 0.01

    def test_unreachable_high_target_saturates_at_tdp(self, execution_model):
        """A target above turbo pins limits at TDP and still terminates."""
        controller, agent = _controller(3.0, execution_model=execution_model)
        controller.run(max_epochs=80)
        limits = controller.final_limits_w()
        np.testing.assert_allclose(limits, 240.0)
        assert agent.describe()["max_error_ghz"] > 0.5

    def test_unreachable_low_target_saturates_at_floor(self, execution_model):
        """A target below what the floor cap permits pins at the floor."""
        controller, agent = _controller(1.0, execution_model=execution_model)
        controller.run(max_epochs=80)
        limits = controller.final_limits_w()
        np.testing.assert_allclose(limits, 136.0)

    def test_tracks_across_activity_levels(self, execution_model):
        """The same target frequency is reached for different workloads —
        the agent learns each workload's W/GHz slope online."""
        for intensity in (1.0, 8.0, 32.0):
            controller, _ = _controller(
                1.8, intensity=intensity, execution_model=execution_model
            )
            controller.run(max_epochs=60)
            achieved = controller.steady_state_sample().mean_freq_ghz
            np.testing.assert_allclose(achieved, 1.8, atol=0.02)

    def test_per_host_variation_handled(self, execution_model):
        """Hosts with different efficiencies need different limits for the
        same frequency; the agent finds them."""
        job = Job(name="fg", config=KernelConfig(intensity=8.0), node_count=3)
        agent = FrequencyGovernorAgent(target_freq_ghz=1.85)
        eff = np.array([0.9, 1.0, 1.1])
        controller = Controller(job, eff, agent, model=execution_model)
        controller.run(max_epochs=80)
        achieved = controller.steady_state_sample().mean_freq_ghz
        np.testing.assert_allclose(achieved, 1.85, atol=0.02)
        limits = controller.final_limits_w()
        assert limits[2] > limits[0]  # inefficient part needs more power
