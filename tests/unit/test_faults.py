"""Unit tests for the fault subsystem: schedules, injection, degradation."""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.faults import (
    DegradationConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    RuntimeFaultInjector,
    SCENARIO_NAMES,
    STANDARD_SCENARIOS,
    build_scenario,
    plan_with_degradation,
    proportional_clamp_caps,
    quarantine_caps,
    random_schedule,
)
from repro.runtime.controller import Controller
from repro.runtime.power_governor import PowerGovernorAgent
from repro.workload.job import Job
from repro.workload.kernel import KernelConfig


class TestFaultEvent:
    def test_budget_change_needs_budget(self):
        with pytest.raises(ValueError, match="budget_w"):
            FaultEvent(time_s=0.0, kind=FaultKind.BUDGET_CHANGE)

    def test_node_failure_needs_hosts(self):
        with pytest.raises(ValueError, match="host_ids"):
            FaultEvent(time_s=0.0, kind=FaultKind.NODE_FAILURE)

    def test_cap_stuck_needs_value(self):
        with pytest.raises(ValueError, match="stuck_at_w"):
            FaultEvent(time_s=0.0, kind=FaultKind.CAP_STUCK, host_ids=(0,))

    def test_noise_burst_needs_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            FaultEvent(time_s=0.0, kind=FaultKind.NOISE_BURST, duration_s=1.0)

    def test_hosts_sorted_and_window(self):
        event = FaultEvent(time_s=2.0, kind=FaultKind.NODE_FAILURE,
                           duration_s=3.0, host_ids=(4, 1, 2))
        assert event.host_ids == (1, 2, 4)
        assert event.end_s == 5.0
        assert event.window_overlaps(4.0, 10.0)
        assert not event.window_overlaps(5.0, 10.0)

    def test_instantaneous_window(self):
        event = FaultEvent(time_s=2.0, kind=FaultKind.NODE_RECOVERY,
                           host_ids=(0,))
        assert event.window_overlaps(2.0, 3.0)
        assert not event.window_overlaps(0.0, 2.0)


class TestFaultSchedule:
    def test_empty_schedule_inactive(self):
        schedule = FaultSchedule()
        assert not schedule.active
        assert schedule.budget_at(10.0, 5000.0) == 5000.0
        assert schedule.failed_hosts_at(10.0) == frozenset()
        assert schedule.cap_overrides_at(10.0, 240.0) == {}
        assert schedule.engine_slice(0.0) is None

    def test_events_time_sorted(self):
        schedule = (FaultSchedule()
                    .budget_drop(50.0, 4000.0)
                    .node_failure(10.0, (0,)))
        assert [e.time_s for e in schedule.events] == [10.0, 50.0]

    def test_budget_step_and_restore(self):
        schedule = (FaultSchedule()
                    .budget_drop(10.0, 3000.0)
                    .budget_restore(20.0, 5000.0))
        assert schedule.budget_at(5.0, 5000.0) == 5000.0
        assert schedule.budget_at(10.0, 5000.0) == 3000.0
        assert schedule.budget_at(25.0, 5000.0) == 5000.0

    def test_budget_ramp_interpolates(self):
        schedule = FaultSchedule().budget_drop(10.0, 3000.0, ramp_s=10.0)
        assert schedule.budget_at(15.0, 5000.0) == pytest.approx(4000.0)
        assert schedule.budget_at(20.0, 5000.0) == 3000.0

    def test_failed_hosts_recover(self):
        schedule = (FaultSchedule()
                    .node_failure(10.0, (1, 2))
                    .node_recovery(20.0, (1,)))
        assert schedule.failed_hosts_at(15.0) == frozenset({1, 2})
        assert schedule.failed_hosts_at(25.0) == frozenset({2})

    def test_noise_sigma_max_of_base_and_burst(self):
        schedule = FaultSchedule().noise_burst(10.0, 5.0, sigma=0.05)
        assert schedule.noise_sigma_at(12.0, 0.004) == 0.05
        assert schedule.noise_sigma_at(12.0, 0.08) == 0.08
        assert schedule.noise_sigma_at(20.0, 0.004) == 0.004

    def test_cap_overrides_stuck_and_error(self):
        schedule = (FaultSchedule()
                    .cap_stuck(5.0, (0,), stuck_at_w=150.0, duration_s=10.0)
                    .cap_error(5.0, (1,), duration_s=10.0))
        overrides = schedule.cap_overrides_at(7.0, tdp_w=240.0)
        assert overrides == {0: 150.0, 1: 240.0}
        assert schedule.cap_overrides_at(20.0, tdp_w=240.0) == {}

    def test_shifted_clamps_past_windows(self):
        schedule = FaultSchedule().sensor_dropout(10.0, 20.0)
        moved = schedule.shifted(-15.0)
        assert moved.events[0].time_s == 0.0
        assert moved.events[0].duration_s == pytest.approx(15.0)
        assert schedule.shifted(-40.0).events == ()

    def test_engine_slice_keeps_only_engine_kinds(self):
        schedule = (FaultSchedule(name="combo")
                    .budget_drop(5.0, 4000.0)
                    .cap_stuck(8.0, (0,), stuck_at_w=140.0, duration_s=4.0))
        sliced = schedule.engine_slice(6.0)
        assert sliced is not None
        assert [e.kind for e in sliced.events] == [FaultKind.CAP_STUCK]
        assert sliced.events[0].time_s == pytest.approx(2.0)
        assert FaultSchedule().budget_drop(5.0, 1.0).engine_slice(0.0) is None

    def test_random_schedule_deterministic(self):
        a = random_schedule(100.0, 16, 3000.0, events=5, seed=9)
        b = random_schedule(100.0, 16, 3000.0, events=5, seed=9)
        assert a.events == b.events
        assert a.events != random_schedule(100.0, 16, 3000.0, events=5,
                                           seed=10).events


class TestScenarios:
    def test_suite_covers_required_classes(self):
        assert len(SCENARIO_NAMES) >= 4
        assert {"budget-step", "node-loss", "sensor-blackout",
                "stuck-caps"} <= set(SCENARIO_NAMES)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_builds_nonempty_active_schedule(self, name):
        schedule = build_scenario(name, 5000.0, 16, 100.0)
        assert schedule.active
        assert schedule.name == name

    def test_brownout_infeasible_budget_step_feasible(self):
        hosts, budget = 10, 0.9 * 10 * 240.0
        assert not STANDARD_SCENARIOS["brownout"].feasible(budget, hosts, 50.0)
        assert STANDARD_SCENARIOS["budget-step"].feasible(budget, hosts, 50.0)

    def test_unknown_scenario_lists_names(self):
        with pytest.raises(KeyError, match="budget-step"):
            build_scenario("nope", 5000.0, 16, 100.0)


class TestRuntimeFaultInjector:
    def test_inactive_is_noop(self):
        injector = RuntimeFaultInjector(FaultSchedule())
        limits = np.array([200.0, 210.0])
        assert injector.filter_limits(limits, 0.0) is limits
        assert injector.noise_sigma(0.004, 0.0) == 0.004
        assert not injector.active

    def test_filter_limits_applies_overrides(self):
        schedule = (FaultSchedule()
                    .cap_stuck(0.0, (0,), stuck_at_w=150.0)
                    .cap_error(0.0, (1,)))
        injector = RuntimeFaultInjector(schedule, tdp_w=240.0)
        out = injector.filter_limits(np.array([200.0, 200.0, 200.0]), 1.0)
        np.testing.assert_array_equal(out, [150.0, 240.0, 200.0])
        assert any(kind == "cap_override" for _, kind, _ in injector.applied)

    def test_dropout_freezes_reading_at_onset(self):
        schedule = FaultSchedule().sensor_dropout(1.0, 10.0, host_ids=(0,))
        injector = RuntimeFaultInjector(schedule)
        first = _sample(epoch=0, power=(100.0, 100.0))
        second = _sample(epoch=1, power=(130.0, 130.0))
        third = _sample(epoch=2, power=(160.0, 160.0))
        injector.corrupt_sample(first, 0.0)          # before the dropout
        seen1 = injector.corrupt_sample(second, 1.5)
        seen2 = injector.corrupt_sample(third, 2.5)
        # Host 0 holds the pre-dropout reading across epochs; host 1 tracks.
        assert seen1.host_power_w[0] == 100.0
        assert seen2.host_power_w[0] == 100.0
        assert seen2.host_power_w[1] == 160.0

    def test_dropout_without_history_reads_zero(self):
        schedule = FaultSchedule().sensor_dropout(0.0, 10.0)
        injector = RuntimeFaultInjector(schedule)
        seen = injector.corrupt_sample(_sample(0, (120.0, 140.0)), 0.0)
        np.testing.assert_array_equal(seen.host_power_w, 0.0)

    def test_burst_jitters_agent_view_only(self):
        schedule = FaultSchedule().noise_burst(0.0, 10.0, sigma=0.2)
        injector = RuntimeFaultInjector(schedule, seed=3)
        sample = _sample(0, (150.0, 150.0))
        seen = injector.corrupt_sample(sample, 1.0)
        assert not np.array_equal(seen.host_power_w, sample.host_power_w)
        # The physics sample itself is untouched.
        np.testing.assert_array_equal(sample.host_power_w, [150.0, 150.0])


def _sample(epoch, power):
    from repro.runtime.agent import PlatformSample

    power = np.asarray(power, dtype=float)
    return PlatformSample(
        epoch=epoch,
        host_time_s=np.ones_like(power),
        epoch_time_s=1.0,
        host_power_w=power,
        power_limit_w=np.full_like(power, 240.0),
        host_energy_j=power * 1.0,
        mean_freq_ghz=np.full_like(power, 2.0),
    )


class TestControllerInjection:
    def _controller(self, injector=None, noise_std=0.0):
        job = Job(name="fault-probe",
                  config=KernelConfig(intensity=8.0, waiting_fraction=0.25,
                                      imbalance=2),
                  node_count=3, iterations=6)
        agent = PowerGovernorAgent(job_budget_w=600.0)
        return Controller(job, np.ones(3), agent, noise_std=noise_std,
                          seed=5, fault_injector=injector)

    def test_inactive_injector_bit_identical(self):
        plain = self._controller()
        plain.run(max_epochs=6)
        injected = self._controller(RuntimeFaultInjector(FaultSchedule()))
        injected.run(max_epochs=6)
        for a, b in zip(plain.history, injected.history):
            np.testing.assert_array_equal(a.sample.host_power_w,
                                          b.sample.host_power_w)
            assert a.sample.epoch_time_s == b.sample.epoch_time_s

    def test_stuck_cap_overrides_agent_request(self):
        schedule = FaultSchedule().cap_stuck(0.0, (0,), stuck_at_w=150.0)
        controller = self._controller(RuntimeFaultInjector(schedule))
        controller.run(max_epochs=4)
        # The platform honoured the stuck value, not the agent's 200 W.
        assert controller.history[-1].sample.power_limit_w[0] == 150.0
        assert controller.history[-1].sample.power_limit_w[1] == 200.0


class TestDegradationLadder:
    def test_floor_tier_reports_infeasible(self):
        decision = plan_with_degradation(
            create_policy("StaticCaps"), 100.0, host_count=4,
            min_cap_w=136.0,
        )
        assert decision.tier == "floor"
        assert not decision.feasible
        np.testing.assert_array_equal(decision.caps_w, 136.0)

    def test_clamp_tier_without_characterization(self):
        decision = plan_with_degradation(
            create_policy("StaticCaps"), 700.0,
            current_caps_w=np.array([240.0, 240.0, 240.0, 240.0]),
            min_cap_w=136.0,
        )
        assert decision.tier == "clamp"
        assert decision.feasible
        assert float(np.sum(decision.caps_w)) <= 700.0 + 1e-6

    def test_clamp_tier_seeds_tdp_when_no_caps(self):
        decision = plan_with_degradation(
            create_policy("StaticCaps"), 800.0, host_count=4,
            min_cap_w=136.0, tdp_w=240.0,
        )
        assert decision.tier == "clamp"
        assert float(np.sum(decision.caps_w)) <= 800.0 + 1e-6

    def test_replan_tier_with_characterization(self, scheduled_wasteful):
        char = scheduled_wasteful.characterization
        decision = plan_with_degradation(
            create_policy("MixedAdaptive"),
            scheduled_wasteful.budgets.ideal_w,
            characterization=char,
            config=DegradationConfig(max_retries=1),
        )
        assert decision.tier == "replan"
        assert decision.attempts == 1
        assert decision.backoff_s == 0.0
        assert float(np.sum(decision.caps_w)) <= \
            scheduled_wasteful.budgets.ideal_w + 1e-6

    def test_proportional_clamp_matches_emergency_clamp(self):
        from repro.manager.emergency import emergency_clamp

        caps = np.array([240.0, 210.0, 170.0])
        np.testing.assert_array_equal(
            proportional_clamp_caps(caps, 520.0, 136.0),
            emergency_clamp(caps, 520.0, 136.0),
        )

    def test_quarantine_parks_failed_and_conserves_power(self):
        caps = np.array([200.0, 200.0, 200.0, 200.0])
        out = quarantine_caps(caps, failed_hosts=(1,), min_cap_w=136.0,
                              tdp_w=240.0)
        assert out[1] == 136.0
        assert float(np.sum(out)) == pytest.approx(float(np.sum(caps)))
        assert np.all(out <= 240.0 + 1e-9)

    def test_quarantine_noop_without_failures(self):
        caps = np.array([200.0, 180.0])
        np.testing.assert_array_equal(
            quarantine_caps(caps, (), 136.0, 240.0), caps
        )
