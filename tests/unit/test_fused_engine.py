"""Unit tests: fused facility engine mechanics and the shared caches.

The property suite pins the end-to-end identity contract (fused ≡
sharded ≡ serial); these tests pin the *mechanisms* at the function
level — the cross-cluster grouping key (same-structure batches share
one stacked engine pass, heterogeneous structures split), the bounded
stacked-layout memo with its one-row reuse across scenario counts, the
name-free shared characterization store, and the span-attributed
profile writer.
"""

import dataclasses

import numpy as np
import pytest

from repro.hierarchy import ClusterSpec, FacilityConfig, run_facility_simulation
from repro.sim import batch as sim_batch
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


def _spec(name, jobs=3, iterations=4, **kwargs):
    return ClusterSpec(name=name, node_count=8, racks=2, nodes_per_job=2,
                       jobs=jobs, iterations=iterations, spacing_s=1.0,
                       **kwargs)


def _run_counting_passes(monkeypatch, config):
    """Run fused; returns (result, [scenario-count per engine pass])."""
    calls = []
    real = sim_batch.simulate_layout_batch

    def counting(mixes, *args, **kwargs):
        calls.append(len(mixes))
        return real(mixes, *args, **kwargs)

    monkeypatch.setattr(sim_batch, "simulate_layout_batch", counting)
    result = run_facility_simulation(config, engine="fused")
    return result, calls


class TestCrossClusterGrouping:
    def test_identical_clusters_share_one_pass_per_round(self, monkeypatch):
        # Two clusters with identical (job_boundaries, iterations)
        # structure: every lockstep round must run ONE stacked pass
        # covering both clusters — no round may split them.
        config = FacilityConfig(
            clusters=(_spec("a"), _spec("b")),
            budget_w=2 * 8 * 200.0, window_s=10.0, horizon_s=30.0, seed=3,
        )
        result, calls = _run_counting_passes(monkeypatch, config)
        assert calls, "expected staged engine passes"
        assert all(scenarios == 2 for scenarios in calls)
        assert result == run_facility_simulation(config, workers=1)

    def test_heterogeneous_structures_split(self, monkeypatch):
        # Different iteration counts cannot share a stacked pass: the
        # grouping key must split them while same-structure pairs fuse.
        config = FacilityConfig(
            clusters=(_spec("a", iterations=4), _spec("b", iterations=4),
                      _spec("c", iterations=6)),
            budget_w=3 * 8 * 200.0, window_s=10.0, horizon_s=30.0, seed=3,
        )
        result, calls = _run_counting_passes(monkeypatch, config)
        # Rounds where all three are co-resident split into a 2-row
        # pass (a+b) and a 1-row pass (c) — never a 3-row pass.
        assert max(calls) == 2
        assert 1 in calls
        assert result == run_facility_simulation(config, workers=1)

    def test_group_key_separates_batches(self):
        # A distinct group_key must force separate groups even for
        # identical structures (the cross-site isolation hook).
        from repro.core.registry import create_policy
        from repro.hardware.cluster import Cluster
        from repro.manager.power_manager import PowerManager
        from repro.manager.queue import JobRequest
        from repro.manager.site_simulation import (
            BatchPlanner,
            execute_planned_batches,
            plan_admitted_batch,
        )
        from repro.manager.admission import AdmissionDecision

        manager = PowerManager()
        policy = create_policy("MixedAdaptive")
        planner = BatchPlanner(manager, policy)
        cluster = Cluster(node_count=4, variation=None, seed=0)

        def planned(key):
            request = JobRequest(
                name=f"job-{key}", config=KernelConfig(intensity=8.0),
                node_count=4, iterations=3, power_hint_w=180.0,
            )
            decision = AdmissionDecision(
                (request.name,), (), {request.name: 180.0}, 900.0, 4,
            )
            batch = plan_admitted_batch(
                clock=0.0, batch_index=0, admitted=[request],
                decision=decision, host_efficiencies=cluster.efficiencies,
                policy=policy, budget_w=900.0, batch_budget_w=900.0,
                quarantined=(), manager=manager, run_seed=None,
                planner=planner, uniform_hosts=True,
            )
            return dataclasses.replace(batch, group_key=key)

        executions = execute_planned_batches(
            [planned("site-a"), planned("site-b")], manager, 0.0,
        )
        # Same structure + same seed + different group_key: identical
        # physics either way (grouping is invisible in results), and
        # both rows are real executions.
        assert executions[0].record.mean_power_w == \
            executions[1].record.mean_power_w


class TestStackedLayoutCacheReuse:
    def _layout(self, name="m", nodes=3):
        return WorkloadMix(name=name, jobs=(
            Job(name="j", config=KernelConfig(intensity=8.0),
                node_count=nodes, iterations=4),
        )).layout()

    def test_one_row_stack_reused_across_scenario_counts(self):
        # The fused engine's group sizes shrink as clusters drain; a
        # new scenario count must reuse the memoised one-row stack
        # (only the np.repeat fan-out differs), not re-gather physics.
        sim_batch._STACK_CACHE.clear()
        layout = self._layout()
        sim_batch._stack_layouts_cached([layout] * 5)
        single_entry = sim_batch._STACK_CACHE[(id(layout), 1)]
        sim_batch._stack_layouts_cached([layout] * 3)
        assert sim_batch._STACK_CACHE[(id(layout), 1)] is single_entry
        three = sim_batch._stack_layouts_cached([layout] * 3)
        np.testing.assert_array_equal(
            three.critical, sim_batch.stack_layouts([layout] * 3).critical
        )

    def test_cache_stays_bounded_under_fused_churn(self):
        sim_batch._STACK_CACHE.clear()
        layouts = [self._layout(name=f"m{i}", nodes=1 + i % 7)
                   for i in range(sim_batch._STACK_CACHE_LIMIT + 40)]
        for i, layout in enumerate(layouts):
            sim_batch._stack_layouts_cached([layout] * (1 + i % 4))
        info = sim_batch.stack_cache_info()
        assert info["entries"] <= info["limit"]
        assert info["limit"] == sim_batch._STACK_CACHE_LIMIT

    def test_stack_cache_info_counts_lookups(self):
        sim_batch._STACK_CACHE.clear()
        layout = self._layout()
        before = sim_batch.stack_cache_info()
        sim_batch._stack_layouts_cached([layout, layout])
        sim_batch._stack_layouts_cached([layout, layout])
        after = sim_batch.stack_cache_info()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1


def _char_equal(a, b):
    """Bitwise field equality (dataclass ``==`` chokes on arrays)."""
    return (
        a.mix_name == b.mix_name
        and np.array_equal(a.job_boundaries, b.job_boundaries)
        and np.array_equal(a.monitor_power_w, b.monitor_power_w)
        and np.array_equal(a.needed_power_w, b.needed_power_w)
        and np.array_equal(a.needed_cap_w, b.needed_cap_w)
        and a.min_cap_w == b.min_cap_w
        and a.tdp_w == b.tdp_w
    )


class TestSharedCharStore:
    def _mix(self, name, intensity=8.0):
        return WorkloadMix(name=name, jobs=(
            Job(name=f"{name}-j0", config=KernelConfig(intensity=intensity),
                node_count=2, iterations=4),
        ))

    def test_key_ignores_names(self):
        from repro.parallel import SharedCharStore

        store = SharedCharStore()
        eff = np.ones(2)
        model = None
        key_a = store.key_for(self._mix("alpha"), eff, model, 0.2)
        key_b = store.key_for(self._mix("beta"), eff, model, 0.2)
        key_c = store.key_for(self._mix("gamma", intensity=16.0), eff,
                              model, 0.2)
        assert key_a == key_b
        assert key_a != key_c

    def test_hit_is_bit_identical_and_relabelled(self):
        from repro.characterization import characterize_mix
        from repro.parallel import (
            activate_char_store,
            deactivate_char_store,
        )
        from repro.sim.execution import ExecutionModel

        model = ExecutionModel()
        eff = np.ones(2)
        store = activate_char_store()
        try:
            fresh = characterize_mix(self._mix("alpha"), eff, model)
            assert store.misses == 1
            shared = characterize_mix(self._mix("beta"), eff, model)
            assert store.hits == 1
            assert shared.mix_name == "beta"
            assert _char_equal(
                dataclasses.replace(shared, mix_name="alpha"), fresh
            )
        finally:
            deactivate_char_store()

    def test_disk_store_shares_across_instances(self, tmp_path):
        from repro.characterization import characterize_mix
        from repro.parallel import (
            SharedCharStore,
            activate_char_store,
            deactivate_char_store,
        )
        from repro.sim.execution import ExecutionModel

        model = ExecutionModel()
        eff = np.ones(2)
        try:
            activate_char_store(cache_dir=str(tmp_path))
            first = characterize_mix(self._mix("alpha"), eff, model)
            # A brand-new store over the same directory (another
            # process, in real runs) must hit through the disk tier.
            second_store = activate_char_store(
                SharedCharStore(cache_dir=str(tmp_path))
            )
            again = characterize_mix(self._mix("alpha"), eff, model)
            assert second_store.hits == 1
            assert _char_equal(again, first)
        finally:
            deactivate_char_store()

    def test_inactive_store_changes_nothing(self):
        from repro.characterization import characterize_mix
        from repro.parallel import active_char_store
        from repro.sim.execution import ExecutionModel

        assert active_char_store() is None
        char = characterize_mix(self._mix("alpha"), np.ones(2),
                                ExecutionModel())
        assert char.mix_name == "alpha"


class TestProfileWriter:
    def test_writes_span_attributed_report(self, tmp_path):
        from repro.telemetry import (
            get_tracer,
            profile_command,
            span,
            write_profile,
        )

        with profile_command() as profiler:
            with span("sim.probe"):
                np.linalg.norm(np.arange(512.0))
        pstats_path, txt_path = write_profile(
            tmp_path, profiler, get_tracer().finished()
        )
        assert pstats_path.exists()
        text = txt_path.read_text()
        assert "Span self time" in text
        assert "Hottest frames" in text
        assert "sim.probe" in text

    def test_span_self_times_subtracts_children(self):
        from repro.telemetry import Span, span_self_times

        parent = Span(name="outer", span_id="p", trace_id="t",
                      wall_s=2.0)
        child = Span(name="inner", span_id="c", trace_id="t",
                     parent_id="p", wall_s=1.5)
        rows = {name: (count, wall, self_s)
                for name, count, wall, self_s
                in span_self_times([parent, child])}
        assert rows["outer"][2] == pytest.approx(0.5)
        assert rows["inner"][2] == pytest.approx(1.5)
