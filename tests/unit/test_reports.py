"""Unit tests for GEOPM-style reports."""

import numpy as np
import pytest

from repro.runtime.reports import HostReport, JobReport


def _host(i, power=200.0, runtime=10.0):
    return HostReport(
        host_id=i,
        runtime_s=runtime,
        energy_j=power * runtime,
        mean_power_w=power,
        mean_freq_ghz=2.0,
        power_limit_w=240.0,
        epochs=5,
    )


class TestHostReport:
    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            HostReport(0, -1.0, 0.0, 0.0, 2.0, 240.0, 1)

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            HostReport(0, 1.0, -5.0, 0.0, 2.0, 240.0, 1)


class TestJobReport:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JobReport(job_name="j", agent="monitor", hosts=())

    def test_rejects_unordered_hosts(self):
        with pytest.raises(ValueError, match="ordered"):
            JobReport(job_name="j", agent="monitor", hosts=(_host(1), _host(0)))

    def test_rejects_duplicate_hosts(self):
        with pytest.raises(ValueError):
            JobReport(job_name="j", agent="monitor", hosts=(_host(0), _host(0)))

    def test_array_accessors(self):
        report = JobReport(
            job_name="j", agent="monitor", hosts=(_host(0, 180.0), _host(1, 220.0))
        )
        np.testing.assert_allclose(report.mean_power_w(), [180.0, 220.0])
        assert report.host_count == 2

    def test_max_host_power(self):
        report = JobReport(
            job_name="j", agent="monitor", hosts=(_host(0, 180.0), _host(1, 220.0))
        )
        assert report.max_host_power_w() == pytest.approx(220.0)

    def test_total_energy(self):
        report = JobReport(
            job_name="j", agent="monitor",
            hosts=(_host(0, 100.0, 10.0), _host(1, 200.0, 10.0)),
        )
        assert report.total_energy_j() == pytest.approx(3000.0)

    def test_summary(self):
        report = JobReport(
            job_name="j", agent="monitor", hosts=(_host(0, 100.0), _host(1, 300.0))
        )
        s = report.summary()
        assert s["hosts"] == 2.0
        assert s["mean_power_w"] == pytest.approx(200.0)
        assert s["min_power_w"] == pytest.approx(100.0)
