"""Unit tests for jobs, mixes, and the flattened host layout."""

import numpy as np
import pytest

from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig, POLL_ACTIVITY_FACTOR


def _job(name="j", intensity=4.0, nodes=10, waiting=0.0, imbalance=1, iters=5):
    return Job(
        name=name,
        config=KernelConfig(
            intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
        ),
        node_count=nodes,
        iterations=iters,
    )


class TestJob:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            _job(nodes=0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            _job(iters=0)

    def test_balanced_critical_count(self):
        assert _job(nodes=10).critical_node_count() == 10

    def test_waiting_rounds_to_whole_nodes(self):
        job = _job(nodes=10, waiting=0.75, imbalance=2)
        assert job.critical_node_count() == 2  # 8 of 10 waiting (rounded)

    def test_critical_set_never_empty(self):
        """Even at extreme waiting fractions one node stays critical."""
        job = Job(
            name="extreme",
            config=KernelConfig(intensity=1.0, waiting_fraction=0.99, imbalance=2),
            node_count=4,
        )
        assert job.critical_node_count() >= 1


class TestWorkloadMix:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WorkloadMix(name="m", jobs=())

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadMix(name="m", jobs=(_job("a"), _job("a")))

    def test_total_nodes(self):
        mix = WorkloadMix(name="m", jobs=(_job("a", nodes=3), _job("b", nodes=7)))
        assert mix.total_nodes == 10

    def test_offsets(self):
        mix = WorkloadMix(name="m", jobs=(_job("a", nodes=3), _job("b", nodes=7)))
        np.testing.assert_array_equal(mix.job_offsets(), [0, 3, 10])

    def test_iterations_array(self):
        mix = WorkloadMix(name="m", jobs=(_job("a", iters=5), _job("b", iters=9)))
        np.testing.assert_array_equal(mix.iterations_array(), [5, 9])


class TestHostLayout:
    def test_host_count(self):
        mix = WorkloadMix(name="m", jobs=(_job("a", nodes=4), _job("b", nodes=6)))
        assert mix.layout().host_count == 10

    def test_job_index_blocks(self):
        mix = WorkloadMix(name="m", jobs=(_job("a", nodes=4), _job("b", nodes=6)))
        layout = mix.layout()
        np.testing.assert_array_equal(layout.job_index[:4], 0)
        np.testing.assert_array_equal(layout.job_index[4:], 1)

    def test_critical_mask_prefix(self):
        """The first critical_node_count hosts of each job are critical."""
        mix = WorkloadMix(
            name="m", jobs=(_job("a", nodes=8, waiting=0.5, imbalance=2),)
        )
        layout = mix.layout()
        assert layout.critical[:4].all()
        assert not layout.critical[4:].any()

    def test_work_arrays_reflect_imbalance(self):
        mix = WorkloadMix(
            name="m", jobs=(_job("a", nodes=4, waiting=0.5, imbalance=3),)
        )
        layout = mix.layout()
        assert layout.traffic_gb[0] == pytest.approx(3 * layout.traffic_gb[-1])
        assert layout.gflop[0] == pytest.approx(3 * layout.gflop[-1])

    def test_kappa_per_job(self):
        mix = WorkloadMix(
            name="m",
            jobs=(_job("a", intensity=8.0, nodes=2), _job("b", intensity=1.0, nodes=2)),
        )
        layout = mix.layout()
        assert layout.kappa[0] > layout.kappa[2]

    def test_poll_kappa_constant(self):
        layout = WorkloadMix(name="m", jobs=(_job("a"),)).layout()
        np.testing.assert_allclose(layout.poll_kappa, POLL_ACTIVITY_FACTOR)

    def test_ceiling_dedup(self):
        """Jobs sharing a vector width share one ceiling entry."""
        mix = WorkloadMix(
            name="m",
            jobs=(_job("a", intensity=8.0), _job("b", intensity=1.0)),
        )
        layout = mix.layout()
        assert layout.ceiling_names == ("dp_fma_ymm",)
        np.testing.assert_array_equal(layout.compute_ceiling_index, 0)

    def test_boundaries_sentinel(self):
        mix = WorkloadMix(name="m", jobs=(_job("a", nodes=4), _job("b", nodes=6)))
        layout = mix.layout()
        assert layout.job_boundaries[-1] == layout.host_count
