"""Unit tests for cross-process telemetry state merging.

Workers capture their registry/bus deltas with ``state()`` /
``events()``; the parent folds them back with ``merge_state()`` /
``replay()``.  These tests pin the exactness guarantees that makes a
pooled run as observable as a serial one.
"""

import numpy as np
import pytest

from repro.telemetry.context import isolate
from repro.telemetry.events import Event, EventBus
from repro.telemetry.metrics import Histogram, MetricsRegistry


class TestHistogramState:
    def test_roundtrip_exact_stats(self):
        source = Histogram()
        for value in [1.0, 2.0, 3.5, 0.25]:
            source.observe(value)
        target = Histogram()
        target.merge_state(source.state())
        assert target.count == source.count
        assert target.mean == source.mean
        assert target.snapshot().min == 0.25
        assert target.snapshot().max == 3.5

    def test_merge_accumulates_two_workers(self):
        worker_a, worker_b = Histogram(), Histogram()
        for v in range(10):
            worker_a.observe(float(v))
        for v in range(10, 30):
            worker_b.observe(float(v))
        parent = Histogram()
        parent.merge_state(worker_a.state())
        parent.merge_state(worker_b.state())
        assert parent.count == 30
        assert parent.mean == pytest.approx(np.mean(np.arange(30.0)))
        assert parent.snapshot().min == 0.0
        assert parent.snapshot().max == 29.0

    def test_merge_beyond_reservoir_keeps_exact_count(self):
        small = Histogram(reservoir_size=8)
        big_state = Histogram(reservoir_size=8)
        for v in range(100):
            big_state.observe(float(v))
        small.merge_state(big_state.state())
        small.merge_state(big_state.state())
        assert small.count == 200
        # quantiles stay within the observed range even after downsampling
        assert 0.0 <= small.quantile(0.5) <= 99.0

    def test_merge_empty_state_is_noop(self):
        histogram = Histogram()
        histogram.observe(2.0)
        empty = Histogram()
        histogram.merge_state(empty.state())
        assert histogram.count == 1


class TestRegistryMerge:
    def test_counters_gauges_histograms_fold_in(self):
        worker = MetricsRegistry()
        worker.counter("cells").inc(5)
        worker.gauge("workers").set(4)
        worker.histogram("cell_s").observe(0.25)
        parent = MetricsRegistry()
        parent.counter("cells").inc(2)
        parent.merge_state(worker.state())
        assert parent.counter("cells").value == 7
        assert parent.gauge("workers").value == 4
        assert parent.histogram("cell_s").count == 1

    def test_merge_creates_missing_metrics(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("only.in.worker").inc()
        parent.merge_state(worker.state())
        assert parent.counter("only.in.worker").value == 1

    def test_gauges_merge_as_peak_not_last_writer(self):
        # Regression: per-worker occupancy gauges used to be overwritten
        # by whichever worker's state merged last, so a low-water final
        # value silently replaced the true peak.
        parent = MetricsRegistry()
        parent.gauge("active_runs").set(3)
        busy, idle = MetricsRegistry(), MetricsRegistry()
        busy.gauge("active_runs").set(7)
        idle.gauge("active_runs").set(1)
        parent.merge_state(busy.state())
        parent.merge_state(idle.state())  # later, lower value
        assert parent.gauge("active_runs").value == 7

    def test_gauge_merge_creates_missing_gauge_at_shipped_value(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.gauge("depth").set(2)
        parent.merge_state(worker.state())
        assert parent.gauge("depth").value == 2

    def test_labelled_metrics_keep_labels(self):
        worker = MetricsRegistry()
        worker.counter("cells", mix="LowPower").inc(3)
        parent = MetricsRegistry()
        parent.merge_state(worker.state())
        assert parent.counter("cells", mix="LowPower").value == 3
        assert parent.counter("cells", mix="HighPower").value == 0


class TestEventReplay:
    def test_replay_preserves_order_and_timestamps(self):
        worker = EventBus()
        worker.publish("sim", "start", cell=1)
        worker.publish("sim", "done", cell=1)
        parent = EventBus()
        parent.replay(worker.events())
        replayed = parent.events()
        assert [e.kind for e in replayed] == ["start", "done"]
        assert [e.ts for e in replayed] == [
            e.ts for e in worker.events()
        ]

    def test_replay_fires_subscribers_with_filters(self):
        parent = EventBus()
        seen = []
        parent.subscribe(lambda e: seen.append(e.kind), kinds=["done"])
        worker = EventBus()
        worker.publish("sim", "start")
        worker.publish("sim", "done")
        parent.replay(worker.events())
        assert seen == ["done"]

    def test_replay_accepts_reconstructed_events(self):
        parent = EventBus()
        parent.replay([Event(ts=12.5, source="w", kind="k",
                             payload={"a": 1})])
        assert parent.events()[0].ts == 12.5


class TestIsolate:
    def test_isolate_installs_fresh_context(self):
        from repro.telemetry import get_bus, get_registry

        registry = get_registry()
        bus = get_bus()
        isolate()
        try:
            assert get_registry() is not registry
            assert get_bus() is not bus
            assert get_bus().subscriber_count == 0
        finally:
            isolate()  # leave a clean context either way
