"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_default(self):
        args = build_parser().parse_args(["survey"])
        assert args.scale == 10

    def test_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "NotAMix"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_help_epilog_shows_examples(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "examples:" in out
        assert "telemetry" in out


class TestCommands:
    def test_survey(self, capsys):
        assert main(["--scale", "5", "survey"]) == 0
        out = capsys.readouterr().out
        assert "medium" in out and "GHz" in out

    def test_facility(self, capsys):
        assert main(["facility"]) == 0
        out = capsys.readouterr().out
        assert "rating_mw" in out

    def test_budgets_single_mix(self, capsys):
        assert main(["--scale", "5", "budgets", "LowPower"]) == 0
        out = capsys.readouterr().out
        assert "LowPower" in out
        assert "HighPower" not in out

    def test_budgets_all_mixes(self, capsys):
        assert main(["--scale", "5", "budgets"]) == 0
        out = capsys.readouterr().out
        assert "LowPower" in out and "HighPower" in out

    def test_characterize_with_save(self, capsys, tmp_path):
        path = tmp_path / "char.json"
        assert main(
            ["--scale", "5", "characterize", "WastefulPower", "--save", str(path)]
        ) == 0
        data = json.loads(path.read_text())
        assert data["format"].startswith("repro.mix-characterization")
        out = capsys.readouterr().out
        assert "observed W/node" in out

    def test_grid_one_mix_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "grid.csv"
        assert main(
            ["--scale", "5", "grid", "--mix", "LowPower", "--csv", str(csv_path)]
        ) == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "MixedAdaptive" in out

    def test_grid_check_skipped_for_partial_mixes(self, capsys):
        assert main(["--scale", "5", "grid", "--mix", "LowPower", "--check"]) == 0
        out = capsys.readouterr().out
        assert "skipping" in out

    def test_grid_full_check_passes(self, capsys):
        assert main(["--scale", "5", "grid", "--check"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_telemetry_command(self, capsys):
        assert main(["--scale", "4", "telemetry"]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out
        assert "runtime.controller.run_s" in out
        assert "Events by source" in out

    def test_telemetry_command_with_out_dir(self, capsys, tmp_path):
        out_dir = tmp_path / "telemetry"
        assert main(["--scale", "4", "telemetry", "-o", str(out_dir)]) == 0
        assert (out_dir / "metrics.txt").exists()
        lines = (out_dir / "events.jsonl").read_text().strip().splitlines()
        rows = [json.loads(line) for line in lines]
        layers = {row["source"].split(".")[0] for row in rows}
        # The probe + grid cell + site pass cover all three stack layers.
        assert {"runtime", "manager", "experiments"} <= layers

    def test_grid_telemetry_out(self, capsys, tmp_path):
        out_dir = tmp_path / "t"
        assert main(
            ["--scale", "4", "grid", "--mix", "LowPower",
             "--telemetry-out", str(out_dir)]
        ) == 0
        metrics = (out_dir / "metrics.txt").read_text()
        assert "runtime.controller.run_s" in metrics
        assert "sim.execution.simulate_mix_s" in metrics
        assert (out_dir / "events.csv").exists()

    def test_figures_command(self, capsys, tmp_path):
        from repro.cli import main

        out_dir = tmp_path / "figs"
        assert main(["--scale", "5", "figures", "-o", str(out_dir)]) == 0
        assert (out_dir / "fig1_facility.svg").exists()
        listed = capsys.readouterr().out
        assert "fig8_energy" in listed


class TestWorkersAndCacheFlags:
    def test_workers_default_is_none(self):
        args = build_parser().parse_args(["survey"])
        assert args.workers is None
        assert args.cache_dir is None

    def test_workers_parses_positive(self):
        args = build_parser().parse_args(["--workers", "4", "survey"])
        assert args.workers == 4

    @pytest.mark.parametrize("value", ["0", "-3", "two"])
    def test_workers_rejects_bad_values_with_exit_2(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--workers", value, "survey"])
        assert exc.value.code == 2
        assert "positive int" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_scale_rejects_nonpositive_with_exit_2(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--scale", value, "survey"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_cache_dir_accepts_and_creates_directory(self, tmp_path):
        target = tmp_path / "made" / "by" / "argparse"
        args = build_parser().parse_args(
            ["--cache-dir", str(target), "survey"]
        )
        assert args.cache_dir == str(target)
        assert target.is_dir()

    def test_cache_dir_rejects_unwritable_with_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["--cache-dir", "/proc/definitely/not/writable", "survey"]
            )
        assert exc.value.code == 2
        assert "not writable" in capsys.readouterr().err

    def test_grid_with_workers_runs(self, capsys):
        assert main(
            ["--scale", "4", "--workers", "2", "grid", "--mix", "LowPower"]
        ) == 0
        assert "Savings vs StaticCaps" in capsys.readouterr().out

    def test_grid_with_cache_dir_populates_store(self, capsys, tmp_path):
        from repro.parallel import deactivate_cache

        try:
            assert main(
                ["--scale", "4", "--cache-dir", str(tmp_path),
                 "grid", "--mix", "LowPower"]
            ) == 0
        finally:
            deactivate_cache()
        assert list(tmp_path.glob("char-*.json"))
        assert list(tmp_path.glob("simulate-*.json"))


class TestSiteCommand:
    def test_site_defaults(self):
        args = build_parser().parse_args(["site"])
        assert args.policy == "MixedAdaptive"
        assert args.jobs == 6
        assert args.replays == 4

    def test_site_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["site", "--policy", "NotAPolicy"])

    def test_site_rejects_zero_replays(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["site", "--replays", "0"])
        assert exc.value.code == 2

    def test_site_runs_and_reports(self, capsys):
        assert main(
            ["--scale", "4", "site", "--jobs", "3", "--replays", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Site simulation" in out
        assert "makespan" in out


class TestFaultsCommand:
    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.scenarios is None
        assert args.policies is None
        assert not args.check
        assert not args.list_only

    def test_faults_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--scenario", "meteor"])

    def test_faults_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--policy", "NotAPolicy"])

    def test_faults_list_names_scenarios(self, capsys):
        from repro.faults.scenarios import SCENARIO_NAMES

        assert main(["faults", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert name in out

    def test_faults_single_cell_reports_matrix(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SMOKE", "1")
        assert main(
            ["faults", "--scenario", "budget-step",
             "--policy", "StaticCaps"]
        ) == 0
        out = capsys.readouterr().out
        assert "Resilience suite" in out
        assert "budget-step" in out
        assert "QoS loss" in out

    def test_faults_check_passes_on_feasible_scenario(self, capsys,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_SMOKE", "1")
        assert main(
            ["faults", "--scenario", "budget-step",
             "--policy", "MixedAdaptive", "--check"]
        ) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "[FAIL]" not in out
