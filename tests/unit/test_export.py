"""Unit tests for CSV export."""

import csv
import io

from repro.analysis.export import rows_to_csv, write_csv


class TestRowsToCsv:
    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_header_from_first_seen_keys(self):
        out = rows_to_csv([{"b": 1, "a": 2}])
        assert out.splitlines()[0] == "b,a"

    def test_heterogeneous_rows(self):
        out = rows_to_csv([{"a": 1}, {"a": 2, "b": 3}])
        reader = list(csv.DictReader(io.StringIO(out)))
        assert reader[0]["b"] == ""
        assert reader[1]["b"] == "3"

    def test_roundtrip(self):
        rows = [{"mix": "LowPower", "savings": 2.5}, {"mix": "HighPower", "savings": 7.0}]
        parsed = list(csv.DictReader(io.StringIO(rows_to_csv(rows))))
        assert parsed[0]["mix"] == "LowPower"
        assert float(parsed[1]["savings"]) == 7.0


class TestWriteCsv:
    def test_writes_file(self, tmp_path):
        path = write_csv([{"a": 1}], tmp_path / "out.csv")
        assert path.read_text().startswith("a")

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv([{"a": 1}], tmp_path / "deep" / "dir" / "out.csv")
        assert path.exists()
