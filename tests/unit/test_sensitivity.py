"""Unit tests for the budget-sweep and variation-sensitivity studies."""

import pytest

from repro.experiments.sensitivity import budget_sweep, variation_sensitivity


class TestBudgetSweep:
    @pytest.fixture(scope="class")
    def points(self, small_grid):
        return budget_sweep(small_grid, mix_name="WastefulPower", points=5)

    def test_point_count(self, points):
        assert len(points) == 5 * 4  # levels x policies

    def test_budgets_span_floor_to_tdp(self, points):
        per_node = sorted({p.budget_per_node_w for p in points})
        assert per_node[0] == pytest.approx(1.05 * 136.0)
        assert per_node[-1] == pytest.approx(240.0)

    def test_static_caps_is_zero_baseline(self, points):
        for p in points:
            if p.policy_name == "StaticCaps":
                assert p.time_savings_pct == 0.0
                assert p.energy_savings_pct == 0.0

    def test_energy_savings_grow_with_budget(self, points):
        mixed = sorted(
            (p for p in points if p.policy_name == "MixedAdaptive"),
            key=lambda p: p.budget_per_node_w,
        )
        assert mixed[-1].energy_savings_pct > mixed[0].energy_savings_pct

    def test_utilization_decreases_with_budget(self, points):
        static = sorted(
            (p for p in points if p.policy_name == "StaticCaps"),
            key=lambda p: p.budget_per_node_w,
        )
        assert static[-1].utilization < static[0].utilization

    def test_rejects_single_point(self, small_grid):
        with pytest.raises(ValueError):
            budget_sweep(small_grid, points=1)


class TestVariationSensitivity:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return variation_sensitivity(
            nodes_per_job=5, survey_nodes=600, budget_per_node_w=180.0
        )

    def test_all_partitions_present(self, outcomes):
        assert set(outcomes) == {"low", "medium", "high", "novariation"}

    def test_inefficient_partition_slower(self, outcomes):
        assert (
            outcomes["low"]["mean_elapsed_s"]
            > outcomes["high"]["mean_elapsed_s"]
        )

    def test_medium_tracks_ideal(self, outcomes):
        med = outcomes["medium"]["mean_elapsed_s"]
        ideal = outcomes["novariation"]["mean_elapsed_s"]
        assert med == pytest.approx(ideal, rel=0.05)

    def test_efficiency_ordering(self, outcomes):
        assert (
            outcomes["high"]["mean_efficiency"]
            < outcomes["medium"]["mean_efficiency"]
            < outcomes["low"]["mean_efficiency"]
        )

    def test_undersized_survey_rejected(self):
        with pytest.raises(ValueError, match="increase survey_nodes"):
            variation_sensitivity(nodes_per_job=100, survey_nodes=600)
