"""Meta-test: every public item in the library carries a docstring.

The documentation deliverable is enforced mechanically: every module,
public class, public function, and public method reachable under the
``repro`` package must have a non-trivial docstring.  Private names
(leading underscore) and inherited members are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, (
        f"{module.__name__} lacks a meaningful module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not (inspect.isfunction(meth) or isinstance(meth, property)):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                if target is None or not (target.__doc__ and target.__doc__.strip()):
                    undocumented.append(
                        f"{module.__name__}.{name}.{meth_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"
