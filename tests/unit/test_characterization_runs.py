"""Unit tests for the heat-map characterization run helpers."""

import numpy as np
import pytest

from repro.characterization.balancer_runs import balancer_heatmap
from repro.characterization.monitor_runs import (
    HeatmapGrid,
    monitor_heatmap,
    monitor_power_for_config,
)
from repro.hardware.cluster import Cluster
from repro.workload.kernel import KernelConfig, VectorWidth


@pytest.fixture(scope="module")
def tiny_cluster():
    return Cluster(node_count=12, variation=None, seed=0)


class TestHeatmapGrid:
    def test_shape_validated(self):
        with pytest.raises(ValueError):
            HeatmapGrid(
                title="t",
                intensities=(1.0, 2.0),
                columns=((0.0, 1),),
                values=np.ones((3, 1)),
            )

    def test_cell_lookup(self):
        grid = HeatmapGrid(
            title="t",
            intensities=(1.0, 2.0),
            columns=((0.0, 1), (0.5, 2)),
            values=np.array([[10.0, 11.0], [20.0, 21.0]]),
        )
        assert grid.cell(2.0, 0.5, 2) == 21.0

    def test_cell_missing_raises(self):
        grid = HeatmapGrid(
            title="t",
            intensities=(1.0,),
            columns=((0.0, 1),),
            values=np.array([[10.0]]),
        )
        with pytest.raises(KeyError):
            grid.cell(3.0, 0.0, 1)

    def test_column_labels(self):
        grid = HeatmapGrid(
            title="t",
            intensities=(1.0,),
            columns=((0.0, 1), (0.25, 3)),
            values=np.ones((1, 2)),
        )
        assert grid.column_labels() == ("0%", "25% at 3x")


class TestMonitorRunHelpers:
    def test_monitor_power_for_config_matches_analytic(
        self, tiny_cluster, execution_model
    ):
        """The controller path agrees with the analytic uncapped power."""
        config = KernelConfig(intensity=8.0)
        measured = monitor_power_for_config(
            config, tiny_cluster, np.arange(6), execution_model
        )
        expected = execution_model.power_model.uncapped_power(config.kappa)
        assert measured == pytest.approx(expected, rel=5e-3)

    def test_small_heatmap_grid(self, tiny_cluster, execution_model):
        grid = monitor_heatmap(
            tiny_cluster, np.arange(6),
            intensities=(1.0, 8.0),
            columns=((0.0, 1), (0.5, 2)),
            model=execution_model,
        )
        assert grid.values.shape == (2, 2)
        # Balanced column matches the Fig. 4 anchors.
        assert grid.cell(8.0, 0.0, 1) == pytest.approx(232.0, abs=1.0)

    def test_xmm_heatmap_lower_power(self, tiny_cluster, execution_model):
        ymm = monitor_heatmap(
            tiny_cluster, np.arange(6), VectorWidth.YMM,
            intensities=(8.0,), columns=((0.0, 1),), model=execution_model,
        )
        xmm = monitor_heatmap(
            tiny_cluster, np.arange(6), VectorWidth.XMM,
            intensities=(8.0,), columns=((0.0, 1),), model=execution_model,
        )
        assert xmm.values[0, 0] < ymm.values[0, 0] - 10.0


class TestBalancerHeatmapHelpers:
    def test_small_balancer_grid(self, tiny_cluster, execution_model):
        grid = balancer_heatmap(
            tiny_cluster, np.arange(6),
            intensities=(8.0,),
            columns=((0.0, 1), (0.75, 3)),
            model=execution_model,
        )
        # The waiting column needs less than the balanced one.
        assert grid.values[0, 1] < grid.values[0, 0] - 10.0

    def test_titles_name_the_agent(self, tiny_cluster, execution_model):
        monitor = monitor_heatmap(
            tiny_cluster, np.arange(4), intensities=(1.0,),
            columns=((0.0, 1),), model=execution_model,
        )
        balancer = balancer_heatmap(
            tiny_cluster, np.arange(4), intensities=(1.0,),
            columns=((0.0, 1),), model=execution_model,
        )
        assert "monitor" in monitor.title
        assert "balancer" in balancer.title
