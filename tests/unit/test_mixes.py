"""Unit tests for the Table II workload mixes."""

import pytest

from repro.workload.mixes import MIX_NAMES, MixBuilder
from repro.workload.kernel import VectorWidth


class TestMixNames:
    def test_paper_order(self):
        assert MIX_NAMES == (
            "NeedUsedPower",
            "HighImbalance",
            "WastefulPower",
            "LowPower",
            "HighPower",
            "RandomLarge",
        )

    def test_unknown_mix_raises(self, mix_builder):
        with pytest.raises(KeyError, match="unknown mix"):
            mix_builder.build("MadeUp")


class TestStructure:
    def test_all_mixes_have_900_equivalent_nodes(self, mix_builder):
        """Every mix fills jobs_per_mix x nodes_per_job hosts."""
        total = mix_builder.nodes_per_job * mix_builder.jobs_per_mix
        for name in MIX_NAMES:
            assert mix_builder.build(name).total_nodes == total

    def test_multi_job_mixes_have_nine_jobs(self, mix_builder):
        for name in MIX_NAMES:
            if name == "HighImbalance":
                continue
            assert len(mix_builder.build(name).jobs) == 9

    def test_high_imbalance_single_job(self, mix_builder):
        mix = mix_builder.build("HighImbalance")
        assert len(mix.jobs) == 1
        cfg = mix.jobs[0].config
        assert cfg.imbalance == 3
        assert cfg.waiting_fraction == 0.75

    def test_iterations_propagate(self):
        builder = MixBuilder(nodes_per_job=5, iterations=42)
        mix = builder.build("LowPower")
        assert all(j.iterations == 42 for j in mix.jobs)

    def test_build_all(self, mix_builder):
        mixes = mix_builder.build_all()
        assert set(mixes) == set(MIX_NAMES)


class TestSemantics:
    def test_need_used_power_all_balanced(self, mix_builder):
        """Needed == used requires balanced kernels (no waiting ranks)."""
        mix = mix_builder.build("NeedUsedPower")
        assert all(j.config.imbalance == 1 for j in mix.jobs)

    def test_need_used_power_has_one_hungry_job(self, mix_builder):
        mix = mix_builder.build("NeedUsedPower")
        ymm_jobs = [j for j in mix.jobs if j.config.vector is VectorWidth.YMM]
        assert len(ymm_jobs) == 1
        assert ymm_jobs[0].config.intensity == 8.0

    def test_wasteful_power_has_pollers_and_receivers(self, mix_builder):
        mix = mix_builder.build("WastefulPower")
        wasteful = [j for j in mix.jobs if j.config.waiting_fraction >= 0.5]
        balanced = [j for j in mix.jobs if j.config.imbalance == 1]
        assert len(wasteful) >= 5
        assert len(balanced) >= 3

    def test_low_power_mean_below_high_power(self, mix_builder, catalog):
        low = mix_builder.build("LowPower")
        high = mix_builder.build("HighPower")
        low_mean = sum(
            catalog.mean_monitor_power_w(j.config) for j in low.jobs
        ) / len(low.jobs)
        high_mean = sum(
            catalog.mean_monitor_power_w(j.config) for j in high.jobs
        ) / len(high.jobs)
        assert low_mean + 15 < high_mean

    def test_random_large_deterministic(self, mix_builder):
        a = mix_builder.build("RandomLarge")
        b = mix_builder.build("RandomLarge")
        assert a.job_names == b.job_names

    def test_random_seed_changes_selection(self):
        a = MixBuilder(nodes_per_job=5, random_seed=1).build("RandomLarge")
        b = MixBuilder(nodes_per_job=5, random_seed=2).build("RandomLarge")
        assert a.job_names != b.job_names
