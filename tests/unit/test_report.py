"""Unit tests for the full reproduction report builder."""

import pytest

from repro.experiments.report import build_report, write_report


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self, small_grid, small_grid_results):
        return build_report(small_grid, small_grid_results)

    def test_contains_every_section(self, report):
        for heading in (
            "Table I", "Fig. 6", "Table II", "Table III",
            "Fig. 7", "Fig. 8", "Takeaways", "Headlines",
        ):
            assert heading in report, heading

    def test_all_mixes_listed(self, report):
        for mix in ("NeedUsedPower", "HighImbalance", "WastefulPower",
                    "LowPower", "HighPower", "RandomLarge"):
            assert mix in report

    def test_all_checks_pass(self, report):
        assert "FAIL" not in report
        assert report.count("PASS") >= 7

    def test_headlines_state_agreement(self, report):
        assert "All takeaway checks hold: **True**" in report

    def test_scale_recorded(self, report):
        assert "9 jobs x 10 nodes" in report

    def test_markdown_structure(self, report):
        assert report.startswith("# Reproduction report")
        # Code fences are balanced.
        assert report.count("```") % 2 == 0


class TestWriteReport:
    def test_writes_file(self, small_grid, small_grid_results, tmp_path):
        path = write_report(small_grid, tmp_path / "report.md",
                            small_grid_results)
        assert path.read_text().startswith("# Reproduction report")

    def test_creates_parents(self, small_grid, small_grid_results, tmp_path):
        path = write_report(small_grid, tmp_path / "a" / "b" / "report.md",
                            small_grid_results)
        assert path.exists()


class TestCliReport:
    def test_report_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["--scale", "5", "report"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out

    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "out.md"
        assert main(["--scale", "5", "report", "-o", str(target)]) == 0
        assert target.exists()
