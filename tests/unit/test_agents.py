"""Unit tests for the agent framework, monitor, and governor agents."""

import numpy as np
import pytest

from repro.runtime.agent import Agent, AgentRegistry, PlatformSample
from repro.runtime.monitor import MonitorAgent
from repro.runtime.power_governor import PowerGovernorAgent


def _sample(limits, times=None, epoch=0):
    limits = np.asarray(limits, dtype=float)
    n = limits.size
    times = np.asarray(times if times is not None else np.ones(n), dtype=float)
    return PlatformSample(
        epoch=epoch,
        host_time_s=times,
        epoch_time_s=float(times.max()),
        host_power_w=limits * 0.9,
        power_limit_w=limits,
        host_energy_j=limits * times,
        mean_freq_ghz=np.full(n, 2.0),
    )


class TestRegistry:
    def test_create_by_name(self):
        registry = AgentRegistry()
        registry.register(MonitorAgent)
        agent = registry.create("monitor")
        assert isinstance(agent, MonitorAgent)

    def test_duplicate_name_rejected(self):
        registry = AgentRegistry()
        registry.register(MonitorAgent)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(MonitorAgent)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown agent"):
            AgentRegistry().create("nope")

    def test_abstract_name_rejected(self):
        class Nameless(Agent):
            def adjust(self, sample):
                return sample.power_limit_w

        with pytest.raises(ValueError, match="concrete name"):
            AgentRegistry().register(Nameless)

    def test_kwargs_forwarded(self):
        registry = AgentRegistry()
        registry.register(PowerGovernorAgent)
        agent = registry.create("power_governor", job_budget_w=1000.0)
        assert agent.job_budget_w == 1000.0

    def test_names_sorted(self):
        registry = AgentRegistry()
        registry.register(PowerGovernorAgent)
        registry.register(MonitorAgent)
        assert registry.names() == ["monitor", "power_governor"]


class TestMonitorAgent:
    def test_echoes_limits(self):
        agent = MonitorAgent()
        limits = np.array([200.0, 210.0])
        out = agent.adjust(_sample(limits))
        np.testing.assert_array_equal(out, limits)

    def test_returns_copy(self):
        agent = MonitorAgent()
        limits = np.array([200.0, 210.0])
        out = agent.adjust(_sample(limits))
        out[0] = 0.0
        assert limits[0] == 200.0

    def test_trivially_converged(self):
        assert MonitorAgent().converged()


class TestPowerGovernorAgent:
    def test_uniform_split(self):
        agent = PowerGovernorAgent(job_budget_w=800.0)
        out = agent.adjust(_sample(np.full(4, 240.0)))
        np.testing.assert_allclose(out, 200.0)

    def test_constant_across_epochs(self):
        agent = PowerGovernorAgent(job_budget_w=800.0)
        first = agent.adjust(_sample(np.full(4, 240.0), epoch=0))
        second = agent.adjust(_sample(first, epoch=1))
        np.testing.assert_array_equal(first, second)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            PowerGovernorAgent(job_budget_w=0.0)

    def test_describe(self):
        assert PowerGovernorAgent(500.0).describe() == {"job_budget_w": 500.0}
