"""Unit tests for the roofline model (paper Fig. 3)."""

import numpy as np
import pytest

from repro.hardware.roofline import (
    ADVISOR_SINGLE_CORE_ROOFLINE,
    NODE_LEVEL_ROOFLINE,
    BandwidthCeiling,
    ComputeCeiling,
    RooflineModel,
)


class TestCeilings:
    def test_bandwidth_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BandwidthCeiling("X", 0.0)

    def test_bandwidth_rejects_bad_sensitivity(self):
        with pytest.raises(ValueError):
            BandwidthCeiling("X", 10.0, freq_sensitivity=1.5)

    def test_bandwidth_effective_at_base(self):
        c = BandwidthCeiling("X", 100.0, freq_sensitivity=0.5)
        assert c.effective(1.0) == pytest.approx(100.0)

    def test_bandwidth_sensitivity_blend(self):
        c = BandwidthCeiling("X", 100.0, freq_sensitivity=0.5)
        # Half the bandwidth scales with frequency: at half frequency the
        # effective bandwidth is 75 %.
        assert c.effective(0.5) == pytest.approx(75.0)

    def test_insensitive_bandwidth_constant(self):
        c = BandwidthCeiling("X", 100.0, freq_sensitivity=0.0)
        assert c.effective(0.1) == pytest.approx(100.0)

    def test_compute_scales_linearly(self):
        c = ComputeCeiling("fma", 40.0)
        assert c.effective(0.5) == pytest.approx(20.0)


class TestModelStructure:
    def test_advisor_has_paper_ceilings(self):
        """The Fig. 3 constants are present verbatim."""
        r = ADVISOR_SINGLE_CORE_ROOFLINE
        assert r.bandwidth("L1").bw_gbps == pytest.approx(314.65)
        assert r.bandwidth("DRAM").bw_gbps == pytest.approx(12.44)
        assert r.compute("dp_vector_fma").gflops == pytest.approx(38.49)
        assert r.compute("sp_vector_fma").gflops == pytest.approx(61.98)

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError):
            ADVISOR_SINGLE_CORE_ROOFLINE.bandwidth("L9")

    def test_unknown_compute_raises(self):
        with pytest.raises(KeyError):
            ADVISOR_SINGLE_CORE_ROOFLINE.compute("quantum")

    def test_peak_compute_is_max(self):
        r = ADVISOR_SINGLE_CORE_ROOFLINE
        assert r.peak_compute.name == "sp_vector_fma"

    def test_working_set_level_validated(self):
        with pytest.raises(ValueError, match="working_set_level"):
            RooflineModel(
                name="bad",
                bandwidths=(BandwidthCeiling("L1", 100.0),),
                computes=(ComputeCeiling("c", 10.0),),
                working_set_level="DRAM",
            )

    def test_needs_ceilings(self):
        with pytest.raises(ValueError):
            RooflineModel(name="empty", bandwidths=(), computes=())


class TestAttainable:
    def test_memory_bound_region(self):
        """Below the ridge, attainable throughput is intensity * BW."""
        r = ADVISOR_SINGLE_CORE_ROOFLINE
        g = r.attainable_gflops(0.1, "dp_vector_fma")
        assert g == pytest.approx(0.1 * 12.44)

    def test_compute_bound_region(self):
        r = ADVISOR_SINGLE_CORE_ROOFLINE
        g = r.attainable_gflops(40.0, "dp_vector_fma")
        assert g == pytest.approx(38.49)

    def test_ridge_point(self):
        r = ADVISOR_SINGLE_CORE_ROOFLINE
        ridge = r.ridge_intensity("dp_vector_fma")
        assert ridge == pytest.approx(38.49 / 12.44)

    def test_node_ridge_below_four(self):
        """The node ridge sits below intensity 4, so the paper's 4-32
        FLOPs/byte configurations are compute-bound (power-responsive)."""
        assert NODE_LEVEL_ROOFLINE.ridge_intensity("dp_fma_ymm") < 4.0

    def test_envelope_monotone_in_intensity(self):
        r = NODE_LEVEL_ROOFLINE
        intensities = np.geomspace(0.01, 100, 50)
        env = r.attainable_gflops(intensities, "dp_fma_ymm")
        assert np.all(np.diff(env) >= -1e-9)

    def test_xmm_is_half_ymm(self):
        r = NODE_LEVEL_ROOFLINE
        assert r.compute("dp_fma_xmm").gflops == pytest.approx(
            r.compute("dp_fma_ymm").gflops / 2
        )


class TestTimeForWork:
    def test_zero_flops_is_memory_time(self):
        """Intensity 0 work takes pure streaming time, no special case."""
        r = NODE_LEVEL_ROOFLINE
        t = r.time_for_work(gbytes=2.0, gflop=0.0, compute_ceiling="dp_fma_ymm")
        assert t == pytest.approx(2.0 / 110.0)

    def test_compute_heavy_work(self):
        r = NODE_LEVEL_ROOFLINE
        peak = r.compute("dp_fma_ymm").gflops
        t = r.time_for_work(gbytes=0.001, gflop=peak, compute_ceiling="dp_fma_ymm")
        assert t == pytest.approx(1.0, rel=1e-3)

    def test_time_decreases_with_frequency(self):
        r = NODE_LEVEL_ROOFLINE
        t_slow = r.time_for_work(2.0, 32.0, "dp_fma_ymm", freq_ghz=1.2)
        t_fast = r.time_for_work(2.0, 32.0, "dp_fma_ymm", freq_ghz=2.2)
        assert t_fast < t_slow

    def test_memory_bound_weakly_freq_sensitive(self):
        """DRAM-bound time changes much less than compute-bound time for
        the same frequency change."""
        r = NODE_LEVEL_ROOFLINE
        mem_ratio = r.time_for_work(2.0, 0.0, "dp_fma_ymm", 1.1) / r.time_for_work(
            2.0, 0.0, "dp_fma_ymm", 2.2
        )
        cpu_ratio = r.time_for_work(0.0001, 32.0, "dp_fma_ymm", 1.1) / r.time_for_work(
            0.0001, 32.0, "dp_fma_ymm", 2.2
        )
        assert mem_ratio < cpu_ratio


class TestPlotSeries:
    def test_series_keys(self):
        r = ADVISOR_SINGLE_CORE_ROOFLINE
        series = r.as_plot_series("dp_vector_fma", np.geomspace(0.01, 40, 10))
        assert "attainable" in series
        assert "bw:DRAM" in series
        assert "compute:dp_vector_fma" in series

    def test_attainable_below_all_relevant_ceilings(self):
        r = ADVISOR_SINGLE_CORE_ROOFLINE
        x = np.geomspace(0.01, 40, 30)
        series = r.as_plot_series("dp_vector_fma", x)
        assert np.all(series["attainable"] <= series["bw:DRAM"] + 1e-9)
        assert np.all(series["attainable"] <= series["compute:dp_vector_fma"] + 1e-9)
