"""Unit tests for the result container's derived metrics."""

import numpy as np
import pytest

from repro.sim.results import MixRunResult


def _result(iter_times, host_energy, job_index, gflop=100.0, budget=1000.0):
    iter_times = np.asarray(iter_times, dtype=float)
    host_energy = np.asarray(host_energy, dtype=float)
    job_index = np.asarray(job_index, dtype=int)
    jobs = int(job_index.max()) + 1
    elapsed = iter_times.sum(axis=0)
    host_elapsed = elapsed[job_index]
    return MixRunResult(
        mix_name="m",
        policy_name="p",
        budget_w=budget,
        job_names=tuple(f"j{i}" for i in range(jobs)),
        iteration_times_s=iter_times,
        iteration_energy_j=np.full(iter_times.shape[0], host_energy.sum() / iter_times.shape[0]),
        host_energy_j=host_energy,
        host_mean_power_w=host_energy / host_elapsed,
        host_job_index=job_index,
        total_gflop=gflop,
    )


class TestDerived:
    def test_job_elapsed(self):
        res = _result([[1.0, 2.0], [1.0, 2.0]], [10, 10, 20, 20], [0, 0, 1, 1])
        np.testing.assert_allclose(res.job_elapsed_s, [2.0, 4.0])

    def test_mean_elapsed(self):
        res = _result([[1.0, 3.0]], [1, 1], [0, 1])
        assert res.mean_elapsed_s == pytest.approx(2.0)

    def test_total_energy(self):
        res = _result([[1.0]], [5.0, 7.0], [0, 0])
        assert res.total_energy_j == pytest.approx(12.0)

    def test_job_energy_groups_hosts(self):
        res = _result([[1.0, 1.0]], [5.0, 7.0, 11.0], [0, 0, 1])
        np.testing.assert_allclose(res.job_energy_j, [12.0, 11.0])

    def test_mean_system_power_sums_host_powers(self):
        res = _result([[2.0]], [100.0, 300.0], [0, 0])
        # host powers: 50 W and 150 W while running
        assert res.mean_system_power_w == pytest.approx(200.0)

    def test_edp(self):
        res = _result([[2.0]], [100.0], [0])
        assert res.energy_delay_product == pytest.approx(100.0 * 2.0)

    def test_gflops_per_watt(self):
        res = _result([[1.0]], [50.0], [0], gflop=200.0)
        assert res.gflops_per_watt == pytest.approx(4.0)

    def test_budget_utilization(self):
        res = _result([[2.0]], [100.0, 300.0], [0, 0], budget=400.0)
        assert res.budget_utilization() == pytest.approx(0.5)

    def test_gflop_per_iteration(self):
        res = _result([[1.0], [1.0]], [10.0], [0], gflop=100.0)
        assert res.gflop_per_iteration == pytest.approx(50.0)

    def test_summary_keys(self):
        res = _result([[1.0]], [10.0], [0])
        summary = res.summary()
        for key in (
            "budget_w",
            "mean_elapsed_s",
            "total_energy_j",
            "mean_system_power_w",
            "budget_utilization",
            "energy_delay_product",
            "gflops_per_watt",
        ):
            assert key in summary
