"""Unit tests for the facility power trace (paper Fig. 1)."""

import numpy as np
import pytest

from repro.workload.facility import (
    FacilityTraceConfig,
    generate_facility_trace,
    moving_average,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.array([1.0, 5.0, 3.0])
        np.testing.assert_array_equal(moving_average(x, 1), x)

    def test_constant_series(self):
        x = np.full(100, 7.0)
        np.testing.assert_allclose(moving_average(x, 10), 7.0)

    def test_warmup_is_cumulative_mean(self):
        x = np.array([2.0, 4.0, 6.0, 8.0])
        out = moving_average(x, 3)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(3.0)
        assert out[2] == pytest.approx(4.0)

    def test_steady_state_window(self):
        x = np.arange(10, dtype=float)
        out = moving_average(x, 3)
        assert out[9] == pytest.approx((7 + 8 + 9) / 3)

    def test_smooths_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5000)
        out = moving_average(x, 50)
        assert np.std(out) < np.std(x) / 3

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)


class TestConfig:
    def test_rejects_mean_above_rating(self):
        with pytest.raises(ValueError):
            FacilityTraceConfig(rating_mw=1.0, mean_draw_mw=1.2)

    def test_rejects_bad_correlation(self):
        with pytest.raises(ValueError):
            FacilityTraceConfig(noise_correlation=1.0)


class TestTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_facility_trace(FacilityTraceConfig(days=120))

    def test_length(self, trace):
        assert trace.power_mw.shape == (120 * 288,)
        assert trace.time_days.shape == trace.power_mw.shape

    def test_mean_matches_fig1(self, trace):
        """Mean draw ~0.83 MW against the 1.35 MW rating."""
        stats = trace.statistics()
        assert stats["mean_mw"] == pytest.approx(0.83, abs=0.02)

    def test_never_exceeds_rating(self, trace):
        assert trace.statistics()["peak_mw"] < trace.config.rating_mw

    def test_utilization_well_below_one(self, trace):
        """The Fig. 1 story: substantial stranded capacity."""
        stats = trace.statistics()
        assert stats["mean_utilization"] < 0.75
        assert stats["stranded_power_mw"] > 0.3

    def test_daily_average_smoother_than_raw(self, trace):
        assert np.std(trace.daily_average_mw) < np.std(trace.power_mw)

    def test_deterministic_per_seed(self):
        a = generate_facility_trace(FacilityTraceConfig(days=30, seed=5))
        b = generate_facility_trace(FacilityTraceConfig(days=30, seed=5))
        np.testing.assert_array_equal(a.power_mw, b.power_mw)

    def test_diurnal_cycle_visible(self, trace):
        """Power autocorrelates at the one-day lag."""
        x = trace.power_mw - trace.power_mw.mean()
        lag = trace.config.samples_per_day
        corr = np.corrcoef(x[:-lag], x[lag:])[0, 1]
        assert corr > 0.3

    def test_positive_power(self, trace):
        assert np.all(trace.power_mw > 0)


class TestMeanRecentring:
    """The mean-bias fix: re-centre *through* the clip, not before it.

    Re-centring once before the clip let deep or overlapping maintenance
    dips drag the realized mean below ``mean_draw_mw`` (the clip eats
    part of the upward shift); the generator now iterates
    shift-then-clip to tolerance.
    """

    def test_mean_exact_under_aggressive_dips(self):
        for dips, depth in [(6, 0.6), (12, 0.9), (24, 1.2)]:
            config = FacilityTraceConfig(
                days=60, maintenance_dips=dips, dip_depth_mw=depth
            )
            stats = generate_facility_trace(config).statistics()
            assert stats["mean_mw"] == pytest.approx(
                config.mean_draw_mw, abs=1e-6
            )

    def test_clip_bounds_still_hold_under_aggressive_dips(self):
        config = FacilityTraceConfig(
            days=60, maintenance_dips=24, dip_depth_mw=1.2
        )
        trace = generate_facility_trace(config)
        assert np.all(trace.power_mw >= 0.05 - 1e-12)
        assert np.all(trace.power_mw <= 0.97 * config.rating_mw + 1e-12)

    def test_mean_exact_on_custom_target(self):
        config = FacilityTraceConfig(
            mean_draw_mw=0.6, days=45, maintenance_dips=8,
            dip_depth_mw=0.8, seed=11
        )
        stats = generate_facility_trace(config).statistics()
        assert stats["mean_mw"] == pytest.approx(0.6, abs=1e-6)
