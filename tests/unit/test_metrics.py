"""Unit tests for the Fig. 8 savings metrics."""

import numpy as np
import pytest

from repro.experiments.metrics import savings_grid, savings_vs_baseline
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


def _run(caps_scale, execution_model, seed=0, policy="p"):
    mix = WorkloadMix(
        name="m",
        jobs=(
            Job(name="a", config=KernelConfig(intensity=32.0), node_count=4,
                iterations=20),
        ),
    )
    caps = np.full(4, 240.0 * caps_scale)
    return simulate_mix(
        mix, caps, np.ones(4), execution_model,
        SimulationOptions(seed=seed), policy_name=policy, budget_w=960.0,
    )


class TestSavingsVsBaseline:
    def test_more_power_saves_time(self, execution_model):
        fast = _run(1.0, execution_model, policy="fast")
        slow = _run(0.7, execution_model, policy="slow")
        savings = savings_vs_baseline(fast, slow)
        assert savings.time_savings.mean > 0.02

    def test_identical_runs_zero_savings(self, execution_model):
        a = _run(1.0, execution_model, seed=1)
        b = _run(1.0, execution_model, seed=1)
        savings = savings_vs_baseline(a, b)
        assert savings.time_savings.mean == pytest.approx(0.0, abs=1e-12)
        assert savings.energy_savings.mean == pytest.approx(0.0, abs=1e-12)

    def test_edp_combines_time_and_energy(self, execution_model):
        fast = _run(1.0, execution_model)
        slow = _run(0.7, execution_model)
        s = savings_vs_baseline(fast, slow)
        # EDP savings exceed either component alone when both are positive
        # (here time improves, energy worsens -> EDP in between).
        assert s.edp_savings.mean < s.time_savings.mean + abs(s.energy_savings.mean)

    def test_mismatched_mixes_rejected(self, execution_model):
        a = _run(1.0, execution_model)
        mix_b = WorkloadMix(
            name="m2",
            jobs=(Job(name="x", config=KernelConfig(intensity=1.0), node_count=4,
                      iterations=20),),
        )
        b = simulate_mix(mix_b, np.full(4, 240.0), np.ones(4), execution_model)
        with pytest.raises(ValueError, match="different mixes"):
            savings_vs_baseline(a, b)

    def test_ci_nonzero_with_noise(self, execution_model):
        fast = _run(1.0, execution_model, seed=2)
        slow = _run(0.7, execution_model, seed=3)
        s = savings_vs_baseline(fast, slow)
        assert s.time_savings.half_width > 0

    def test_row_units_percent(self, execution_model):
        s = savings_vs_baseline(_run(1.0, execution_model), _run(0.7, execution_model))
        row = s.row()
        assert row["time_savings_pct"] == pytest.approx(100 * s.time_savings.mean)


class TestSavingsGrid:
    def test_covers_dynamic_policies(self, small_grid_results):
        grid = savings_grid(small_grid_results)
        policies = {k[2] for k in grid}
        assert policies == {"MinimizeWaste", "JobAdaptive", "MixedAdaptive"}

    def test_precharacterized_omitted(self, small_grid_results):
        grid = savings_grid(small_grid_results)
        assert not any(k[2] == "Precharacterized" for k in grid)

    def test_covers_all_mixes_and_levels(self, small_grid_results):
        grid = savings_grid(small_grid_results)
        assert len(grid) == 6 * 3 * 3

    def test_metadata_filled(self, small_grid_results):
        grid = savings_grid(small_grid_results)
        s = grid[("WastefulPower", "max", "MixedAdaptive")]
        assert s.mix_name == "WastefulPower"
        assert s.budget_level == "max"

    def test_by_metric_keys(self, small_grid_results):
        grid = savings_grid(small_grid_results)
        s = next(iter(grid.values()))
        assert set(s.by_metric()) == {
            "time_savings",
            "energy_savings",
            "edp_savings",
            "flops_per_watt_increase",
        }
