"""Unit tests for the job queue."""

import pytest

from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.workload.kernel import KernelConfig


def _request(name="job", nodes=10):
    return JobRequest(name=name, config=KernelConfig(intensity=4.0), node_count=nodes)


class TestJobRequest:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            _request(nodes=0)

    def test_rejects_bad_hint(self):
        with pytest.raises(ValueError):
            JobRequest(
                name="j", config=KernelConfig(intensity=1.0), node_count=1,
                power_hint_w=-5.0,
            )

    def test_to_job(self):
        job = _request().to_job()
        assert job.node_count == 10
        assert job.name == "job"

    def test_starts_pending(self):
        assert _request().state is JobState.PENDING


class TestJobQueue:
    def test_submit_and_get(self):
        q = JobQueue()
        q.submit(_request("a"))
        assert q.get("a").name == "a"
        assert len(q) == 1

    def test_duplicate_name_rejected(self):
        q = JobQueue()
        q.submit(_request("a"))
        with pytest.raises(ValueError, match="already queued"):
            q.submit(_request("a"))

    def test_missing_job_raises(self):
        with pytest.raises(KeyError):
            JobQueue().get("ghost")

    def test_pending_in_submission_order(self):
        q = JobQueue()
        for name in ("z", "a", "m"):
            q.submit(_request(name))
        assert [r.name for r in q.pending()] == ["z", "a", "m"]

    def test_lifecycle_happy_path(self):
        q = JobQueue()
        q.submit(_request("a"))
        q.mark("a", JobState.ALLOCATED)
        q.mark("a", JobState.RUNNING)
        q.mark("a", JobState.COMPLETED)
        assert q.get("a").state is JobState.COMPLETED

    def test_illegal_transition_rejected(self):
        q = JobQueue()
        q.submit(_request("a"))
        with pytest.raises(ValueError, match="illegal transition"):
            q.mark("a", JobState.RUNNING)  # must be allocated first

    def test_terminal_states_frozen(self):
        q = JobQueue()
        q.submit(_request("a"))
        q.mark("a", JobState.FAILED)
        with pytest.raises(ValueError):
            q.mark("a", JobState.ALLOCATED)

    def test_pending_excludes_started(self):
        q = JobQueue()
        q.submit(_request("a"))
        q.submit(_request("b"))
        q.mark("a", JobState.ALLOCATED)
        assert [r.name for r in q.pending()] == ["b"]

    def test_pending_count_and_peek_are_constant_time_views(self):
        q = JobQueue()
        assert q.pending_count() == 0
        assert q.peek_pending() is None
        q.submit(_request("a"))
        q.submit(_request("b"))
        assert q.pending_count() == 2
        assert q.peek_pending().name == "a"
        q.mark("a", JobState.ALLOCATED)
        assert q.pending_count() == 1
        assert q.peek_pending().name == "b"
