"""Unit tests for content-addressed child seeds."""

import pytest

from repro.parallel.seeding import child_seed, child_seeds


class TestChildSeed:
    def test_deterministic(self):
        assert child_seed(7, "Mix", "ideal") == child_seed(7, "Mix", "ideal")

    def test_identity_parts_matter(self):
        base = child_seed(7, "Mix", "ideal")
        assert child_seed(7, "Mix", "max") != base
        assert child_seed(8, "Mix", "ideal") != base

    def test_order_matters(self):
        assert child_seed(0, "a", "b") != child_seed(0, "b", "a")

    def test_mixed_int_and_str_identity(self):
        assert child_seed(1, 3, "cap") == child_seed(1, 3, "cap")
        assert child_seed(1, 3, "cap") != child_seed(1, 4, "cap")

    def test_range_fits_uint32(self):
        for seed in (child_seed(0), child_seed(2**31, "x"), child_seed(5, 0)):
            assert 0 <= seed < 2**32
            assert isinstance(seed, int)

    def test_rejects_negative_run_seed(self):
        with pytest.raises(ValueError):
            child_seed(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            child_seed(0, True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            child_seed(0, 1.5)

    def test_independent_of_sibling_count(self):
        """A cell's seed never depends on which other cells run."""
        alone = child_seeds(3, [("OnlyMix", "ideal", "StaticCaps")])
        among = child_seeds(
            3,
            [
                ("OtherMix", "max", "StaticCaps"),
                ("OnlyMix", "ideal", "StaticCaps"),
            ],
        )
        assert alone[0] == among[1]


class TestChildSeeds:
    def test_one_per_identity(self):
        seeds = child_seeds(0, [("a",), ("b",), ("c",)])
        assert len(seeds) == 3
        assert len(set(seeds)) == 3
