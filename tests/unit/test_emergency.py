"""Unit tests for the emergency power-capping response."""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.manager.emergency import (
    EmergencyResponse,
    emergency_clamp,
    respond_to_budget_drop,
)


class TestEmergencyClamp:
    def test_meets_new_budget(self):
        caps = np.array([240.0, 200.0, 180.0])
        out = emergency_clamp(caps, 500.0)
        assert float(np.sum(out)) <= 500.0 + 1e-6

    def test_proportional_above_floor(self):
        caps = np.array([236.0, 186.0])  # above-floor 100, 50
        out = emergency_clamp(caps, 372.0)
        np.testing.assert_allclose(out, [136 + 100 * 2 / 3, 136 + 50 * 2 / 3])

    def test_noop_when_budget_suffices(self):
        caps = np.array([200.0, 200.0])
        out = emergency_clamp(caps, 500.0)
        np.testing.assert_array_equal(out, caps)

    def test_infeasible_budget_returns_floor(self):
        caps = np.array([240.0, 240.0])
        out = emergency_clamp(caps, 100.0)
        np.testing.assert_allclose(out, 136.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            emergency_clamp(np.array([200.0]), 0.0)


class TestRespondToBudgetDrop:
    @pytest.fixture(scope="class")
    def response(self, scheduled_wasteful, execution_model) -> EmergencyResponse:
        prepared = scheduled_wasteful
        char = prepared.characterization
        return respond_to_budget_drop(
            prepared.scheduled,
            char,
            create_policy("MixedAdaptive"),
            old_budget_w=prepared.budgets.max_w,
            new_budget_w=prepared.budgets.min_w,
            model=execution_model,
        )

    def test_rejects_budget_rise(self, scheduled_wasteful, execution_model):
        prepared = scheduled_wasteful
        with pytest.raises(ValueError, match="drop"):
            respond_to_budget_drop(
                prepared.scheduled,
                prepared.characterization,
                create_policy("MixedAdaptive"),
                old_budget_w=1000.0,
                new_budget_w=2000.0,
                model=execution_model,
            )

    def test_both_stages_within_new_budget(self, response):
        assert response.within_new_budget()

    def test_clamp_slows_execution(self, response):
        impact = response.qos_impact()
        assert impact["clamp_slowdown"] > 0.0

    def test_replan_no_worse_than_clamp(self, response):
        impact = response.qos_impact()
        assert impact["replanned_slowdown"] <= impact["clamp_slowdown"] + 1e-9

    def test_replan_recovers_some_qos(self, response):
        """On a waste-heavy mix the application-aware re-plan recovers a
        meaningful fraction of the clamp's penalty."""
        impact = response.qos_impact()
        assert impact["recovered"] > 0.1

    def test_static_policy_recovers_nothing_special(
        self, scheduled_wasteful, execution_model
    ):
        """With StaticCaps on a uniform state, stage 2's re-plan is just
        another uniform distribution — recovery is ~0 by construction."""
        prepared = scheduled_wasteful
        response = respond_to_budget_drop(
            prepared.scheduled,
            prepared.characterization,
            create_policy("StaticCaps"),
            old_budget_w=prepared.budgets.max_w,
            new_budget_w=prepared.budgets.min_w,
            model=execution_model,
        )
        mixed_impact = response.qos_impact()
        # StaticCaps' stage-2 equals its stage-1 outcome within noise.
        assert abs(
            mixed_impact["replanned_slowdown"] - mixed_impact["clamp_slowdown"]
        ) < 0.02
