"""Unit tests for the emergency power-capping response."""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.manager.emergency import (
    EmergencyResponse,
    InfeasibleBudgetError,
    emergency_clamp,
    respond_to_budget_change,
    respond_to_budget_drop,
)


class TestEmergencyClamp:
    def test_meets_new_budget(self):
        caps = np.array([240.0, 200.0, 180.0])
        out = emergency_clamp(caps, 500.0)
        assert float(np.sum(out)) <= 500.0 + 1e-6

    def test_proportional_above_floor(self):
        caps = np.array([236.0, 186.0])  # above-floor 100, 50
        out = emergency_clamp(caps, 372.0)
        np.testing.assert_allclose(out, [136 + 100 * 2 / 3, 136 + 50 * 2 / 3])

    def test_noop_when_budget_suffices(self):
        caps = np.array([200.0, 200.0])
        out = emergency_clamp(caps, 500.0)
        np.testing.assert_array_equal(out, caps)

    def test_infeasible_budget_returns_floor(self):
        caps = np.array([240.0, 240.0])
        out = emergency_clamp(caps, 100.0)
        np.testing.assert_allclose(out, 136.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            emergency_clamp(np.array([200.0]), 0.0)

    def test_strict_raises_on_infeasible_budget(self):
        caps = np.array([240.0, 240.0])
        with pytest.raises(InfeasibleBudgetError) as info:
            emergency_clamp(caps, 100.0, strict=True)
        assert info.value.budget_w == 100.0
        assert info.value.floor_power_w == pytest.approx(272.0)
        assert info.value.host_count == 2
        assert "272.0 W" in str(info.value)

    def test_strict_passes_on_feasible_budget(self):
        caps = np.array([240.0, 240.0])
        out = emergency_clamp(caps, 300.0, strict=True)
        assert float(np.sum(out)) <= 300.0 + 1e-6


class TestRespondToBudgetDrop:
    @pytest.fixture(scope="class")
    def response(self, scheduled_wasteful, execution_model) -> EmergencyResponse:
        prepared = scheduled_wasteful
        char = prepared.characterization
        return respond_to_budget_drop(
            prepared.scheduled,
            char,
            create_policy("MixedAdaptive"),
            old_budget_w=prepared.budgets.max_w,
            new_budget_w=prepared.budgets.min_w,
            model=execution_model,
        )

    def test_rejects_budget_rise(self, scheduled_wasteful, execution_model):
        prepared = scheduled_wasteful
        with pytest.raises(ValueError, match="drop"):
            respond_to_budget_drop(
                prepared.scheduled,
                prepared.characterization,
                create_policy("MixedAdaptive"),
                old_budget_w=1000.0,
                new_budget_w=2000.0,
                model=execution_model,
            )

    def test_both_stages_within_new_budget(self, response):
        assert response.within_new_budget()

    def test_clamp_slows_execution(self, response):
        impact = response.qos_impact()
        assert impact["clamp_slowdown"] > 0.0

    def test_replan_no_worse_than_clamp(self, response):
        impact = response.qos_impact()
        assert impact["replanned_slowdown"] <= impact["clamp_slowdown"] + 1e-9

    def test_replan_recovers_some_qos(self, response):
        """On a waste-heavy mix the application-aware re-plan recovers a
        meaningful fraction of the clamp's penalty."""
        impact = response.qos_impact()
        assert impact["recovered"] > 0.1

    def test_static_policy_recovers_nothing_special(
        self, scheduled_wasteful, execution_model
    ):
        """With StaticCaps on a uniform state, stage 2's re-plan is just
        another uniform distribution — recovery is ~0 by construction."""
        prepared = scheduled_wasteful
        response = respond_to_budget_drop(
            prepared.scheduled,
            prepared.characterization,
            create_policy("StaticCaps"),
            old_budget_w=prepared.budgets.max_w,
            new_budget_w=prepared.budgets.min_w,
            model=execution_model,
        )
        mixed_impact = response.qos_impact()
        # StaticCaps' stage-2 equals its stage-1 outcome within noise.
        assert abs(
            mixed_impact["replanned_slowdown"] - mixed_impact["clamp_slowdown"]
        ) < 0.02

    def test_feasible_drop_has_zero_overshoot(self, response):
        overshoot = response.overshoot_watt_seconds()
        assert overshoot["clamp"] == pytest.approx(0.0, abs=1e-6)
        assert overshoot["replanned"] == pytest.approx(0.0, abs=1e-6)


class TestRespondToBudgetChange:
    def test_floor_infeasible_budget_flagged(
        self, scheduled_wasteful, execution_model
    ):
        """A budget below hosts x floor completes (policies degrade to the
        all-floor state) but the response must say the clamp failed."""
        prepared = scheduled_wasteful
        char = prepared.characterization
        floor_w = char.host_count * char.min_cap_w
        response = respond_to_budget_change(
            prepared.scheduled,
            char,
            create_policy("MixedAdaptive"),
            old_budget_w=prepared.budgets.max_w,
            new_budget_w=0.9 * floor_w,
            model=execution_model,
        )
        assert not response.clamp_feasible
        assert response.floor_power_w == pytest.approx(floor_w)
        # Even if the waiting-heavy mix happens to draw under the budget,
        # the infeasibility flag alone must fail the response.
        assert not response.within_new_budget()

    def test_equal_budgets_are_a_noop_replan(
        self, scheduled_wasteful, execution_model
    ):
        """Near-equal budgets must not raise: the clamp stage keeps the
        old caps and stage 2 re-plans at the (identical) budget."""
        prepared = scheduled_wasteful
        budget = prepared.budgets.ideal_w
        response = respond_to_budget_change(
            prepared.scheduled,
            prepared.characterization,
            create_policy("MixedAdaptive"),
            old_budget_w=budget,
            new_budget_w=budget,
            model=execution_model,
        )
        assert response.clamp_feasible
        assert response.within_new_budget()
        impact = response.qos_impact()
        # Stage 1 keeps the old caps: no clamp penalty on a flat budget.
        assert impact["clamp_slowdown"] == pytest.approx(0.0, abs=1e-9)

    def test_budget_rise_reclaims_headroom(
        self, scheduled_wasteful, execution_model
    ):
        """A restore event re-plans into the larger budget and speeds the
        mix up rather than raising like respond_to_budget_drop."""
        prepared = scheduled_wasteful
        response = respond_to_budget_change(
            prepared.scheduled,
            prepared.characterization,
            create_policy("MixedAdaptive"),
            old_budget_w=prepared.budgets.min_w,
            new_budget_w=prepared.budgets.max_w,
            model=execution_model,
        )
        assert response.clamp_feasible
        assert response.within_new_budget()
        impact = response.qos_impact()
        assert impact["replanned_slowdown"] < 0.0

    def test_app_aware_recovers_more_than_unaware(
        self, scheduled_wasteful, execution_model
    ):
        """On a waste-heavy mix the application-aware policy's stage-2
        re-plan recovers more of the clamp penalty than StaticCaps."""
        prepared = scheduled_wasteful

        def recovered(policy_name):
            return respond_to_budget_change(
                prepared.scheduled,
                prepared.characterization,
                create_policy(policy_name),
                old_budget_w=prepared.budgets.max_w,
                new_budget_w=prepared.budgets.min_w,
                model=execution_model,
            ).qos_impact()["recovered"]

        assert recovered("MixedAdaptive") > recovered("StaticCaps") + 0.05
