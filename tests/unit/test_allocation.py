"""Unit tests for the water-filling allocation primitives."""

import numpy as np
import pytest

from repro.core.allocation import (
    PowerAllocation,
    distribute_uniform,
    distribute_weighted,
    fit_to_budget,
)


class TestPowerAllocation:
    def test_total(self):
        a = PowerAllocation("p", "m", 500.0, np.array([100.0, 200.0]))
        assert a.total_allocated_w == pytest.approx(300.0)

    def test_within_budget(self):
        a = PowerAllocation("p", "m", 300.0, np.array([100.0, 200.0]))
        assert a.within_budget()
        b = PowerAllocation("p", "m", 250.0, np.array([100.0, 200.0]))
        assert not b.within_budget()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PowerAllocation("p", "m", 100.0, np.array([]))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            PowerAllocation("p", "m", 100.0, np.array([np.nan]))


class TestDistributeUniform:
    def test_simple_fill(self):
        alloc, left = distribute_uniform(30.0, np.zeros(3), np.full(3, 100.0))
        np.testing.assert_allclose(alloc, 10.0)
        assert left == pytest.approx(0.0)

    def test_respects_bounds_with_rollover(self):
        """A host that saturates rolls its share to the others."""
        alloc, left = distribute_uniform(
            30.0, np.zeros(3), np.array([5.0, 100.0, 100.0])
        )
        assert alloc[0] == pytest.approx(5.0)
        np.testing.assert_allclose(alloc[1:], 12.5)
        assert left == pytest.approx(0.0)

    def test_leftover_when_everyone_saturated(self):
        alloc, left = distribute_uniform(50.0, np.zeros(2), np.full(2, 10.0))
        np.testing.assert_allclose(alloc, 10.0)
        assert left == pytest.approx(30.0)

    def test_zero_pool_identity(self):
        start = np.array([1.0, 2.0])
        alloc, left = distribute_uniform(0.0, start, np.full(2, 10.0))
        np.testing.assert_array_equal(alloc, start)
        assert left == 0.0

    def test_conservation(self):
        rng = np.random.default_rng(0)
        start = rng.uniform(0, 10, 8)
        bounds = start + rng.uniform(0, 10, 8)
        pool = 25.0
        alloc, left = distribute_uniform(pool, start, bounds)
        assert np.sum(alloc - start) + left == pytest.approx(pool)

    def test_rejects_negative_pool(self):
        with pytest.raises(ValueError):
            distribute_uniform(-1.0, np.zeros(2), np.ones(2))

    def test_rejects_bounds_below_allocation(self):
        with pytest.raises(ValueError):
            distribute_uniform(1.0, np.full(2, 5.0), np.full(2, 3.0))

    def test_input_not_mutated(self):
        start = np.array([1.0, 1.0])
        distribute_uniform(4.0, start, np.full(2, 10.0))
        np.testing.assert_array_equal(start, [1.0, 1.0])


class TestDistributeWeighted:
    def test_proportional_split(self):
        alloc, left = distribute_weighted(
            30.0, np.zeros(2), np.array([1.0, 2.0]), np.full(2, 100.0)
        )
        np.testing.assert_allclose(alloc, [10.0, 20.0])
        assert left == pytest.approx(0.0)

    def test_zero_weight_receives_nothing(self):
        alloc, _ = distribute_weighted(
            30.0, np.zeros(3), np.array([0.0, 1.0, 1.0]), np.full(3, 100.0)
        )
        assert alloc[0] == 0.0

    def test_saturation_rollover(self):
        alloc, left = distribute_weighted(
            30.0, np.zeros(2), np.array([1.0, 1.0]), np.array([5.0, 100.0])
        )
        assert alloc[0] == pytest.approx(5.0)
        assert alloc[1] == pytest.approx(25.0)
        assert left == pytest.approx(0.0)

    def test_leftover_with_no_eligible_hosts(self):
        alloc, left = distribute_weighted(
            10.0, np.zeros(2), np.zeros(2), np.full(2, 100.0)
        )
        np.testing.assert_array_equal(alloc, 0.0)
        assert left == pytest.approx(10.0)

    def test_conservation(self):
        rng = np.random.default_rng(3)
        start = rng.uniform(0, 10, 6)
        bounds = start + rng.uniform(0, 5, 6)
        weights = rng.uniform(0, 1, 6)
        pool = 12.0
        alloc, left = distribute_weighted(pool, start, weights, bounds)
        assert np.sum(alloc - start) + left == pytest.approx(pool)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            distribute_weighted(1.0, np.zeros(2), np.ones(3), np.ones(2))


class TestFitToBudget:
    def test_no_change_when_under_budget(self):
        targets = np.array([150.0, 160.0])
        out = fit_to_budget(targets, 400.0, 136.0)
        np.testing.assert_array_equal(out, targets)

    def test_proportional_scale_down(self):
        targets = np.array([236.0, 186.0])  # above-floor: 100, 50
        out = fit_to_budget(targets, 372.0, 136.0)  # need to shed 50 W
        # Above-floor parts scale by (150-50)/150 = 2/3.
        np.testing.assert_allclose(out, [136 + 100 * 2 / 3, 136 + 50 * 2 / 3])

    def test_result_meets_budget(self):
        rng = np.random.default_rng(5)
        targets = rng.uniform(140, 240, 10)
        out = fit_to_budget(targets, 1500.0, 136.0)
        assert np.sum(out) <= 1500.0 + 1e-6

    def test_never_below_floor(self):
        targets = np.array([240.0, 137.0, 200.0])
        out = fit_to_budget(targets, 420.0, 136.0)
        assert np.all(out >= 136.0 - 1e-9)

    def test_infeasible_budget_returns_floor(self):
        targets = np.array([240.0, 240.0])
        out = fit_to_budget(targets, 100.0, 136.0)
        np.testing.assert_allclose(out, 136.0)

    def test_rejects_targets_below_floor(self):
        with pytest.raises(ValueError):
            fit_to_budget(np.array([100.0]), 500.0, 136.0)

    def test_preserves_ordering(self):
        """Scaling never reorders hosts: hungrier targets stay hungrier."""
        targets = np.array([240.0, 200.0, 170.0, 150.0])
        out = fit_to_budget(targets, 650.0, 136.0)
        assert np.all(np.diff(out) <= 1e-9)
