"""Unit tests for the MixedAdaptive policy — the paper's §III-A steps."""

import numpy as np
import pytest

from repro.core.mixed_adaptive import MixedAdaptivePolicy
from repro.core.job_adaptive import JobAdaptivePolicy
from tests.unit.test_policies_basic import make_char


class TestSteps:
    def test_step2_trims_to_needed(self):
        """Hosts above their needed power are trimmed to it."""
        char = make_char(
            monitor=[220, 220],
            needed=[160, 160],
            boundaries=[0, 2],
        )
        alloc = MixedAdaptivePolicy().allocate(char, 400.0)  # 200/host
        # Needed total 320 < budget 400: trimmed then step-4 surplus
        # returns, weighted equally -> equal caps.
        assert alloc.caps_w[0] == pytest.approx(alloc.caps_w[1])
        assert alloc.caps_w.sum() <= 400.0 + 1e-6

    def test_step3_refills_needy_across_jobs(self):
        """Deallocated power crosses job boundaries — the capability
        JobAdaptive lacks."""
        char = make_char(
            monitor=[235, 235, 150, 150],
            needed=[235, 235, 150, 150],
            boundaries=[0, 2, 4],
        )
        budget = 760.0  # 190/host: job 1 donates 2 x 40 W to job 0
        mixed = MixedAdaptivePolicy().allocate(char, budget)
        job_silo = JobAdaptivePolicy().allocate(char, budget)
        assert mixed.caps_w[0] > job_silo.caps_w[0]
        assert mixed.caps_w[0] == pytest.approx(230.0)  # 190 + 40

    def test_step3_caps_at_needed(self):
        char = make_char(
            monitor=[210, 150],
            needed=[210, 150],
            boundaries=[0, 1, 2],
        )
        alloc = MixedAdaptivePolicy().allocate(char, 360.0)  # 180/host
        assert alloc.caps_w[0] == pytest.approx(210.0)
        assert alloc.caps_w[1] == pytest.approx(150.0)

    def test_step4_weighted_surplus(self):
        """True surplus spreads weighted by distance from the floor."""
        char = make_char(
            monitor=[200, 160],
            needed=[200, 160],
            boundaries=[0, 1, 2],
        )
        alloc = MixedAdaptivePolicy().allocate(char, 400.0)  # 40 W surplus
        grant_high = alloc.caps_w[0] - 200.0
        grant_low = alloc.caps_w[1] - 160.0
        assert grant_high > grant_low > 0
        # Weights are (needed - floor): 64 vs 24.
        assert grant_high / grant_low == pytest.approx(64.0 / 24.0, rel=1e-6)

    def test_power_shortage_pool_can_be_zero(self):
        """Paper: 'If there is a significant enough power shortage, the
        surplus can be as low as zero watts' — every host needs more than
        the share, so the allocation stays uniform."""
        char = make_char(
            monitor=[230, 230, 235, 235],
            needed=[230, 230, 235, 235],
            boundaries=[0, 2, 4],
        )
        alloc = MixedAdaptivePolicy().allocate(char, 600.0)  # 150/host
        np.testing.assert_allclose(alloc.caps_w, 150.0)

    def test_within_budget_always(self):
        char = make_char(
            monitor=[230, 200, 180, 150],
            needed=[230, 180, 160, 140],
            boundaries=[0, 2, 4],
        )
        for budget in (560.0, 680.0, 800.0, 1100.0):
            assert MixedAdaptivePolicy().allocate(char, budget).within_budget()

    def test_dominates_job_adaptive_on_cross_job_mixes(self):
        """With cross-job diversity, MixedAdaptive satisfies hungry hosts
        at least as well as JobAdaptive at every budget."""
        char = make_char(
            monitor=[235, 235, 150, 150],
            needed=[235, 235, 150, 150],
            boundaries=[0, 2, 4],
        )
        for budget in (700.0, 770.0, 850.0):
            mixed = MixedAdaptivePolicy().allocate(char, budget)
            silo = JobAdaptivePolicy().allocate(char, budget)
            hungry_mixed = mixed.caps_w[:2].min()
            hungry_silo = silo.caps_w[:2].min()
            assert hungry_mixed >= hungry_silo - 1e-6

    def test_single_job_equals_job_adaptive_needed_distribution(self):
        """On a single-job mix with a binding budget, both adaptive
        policies assign the same caps (the HighImbalance observation)."""
        char = make_char(
            monitor=[230, 230, 220, 220],
            needed=[230, 230, 145, 145],
            boundaries=[0, 4],
        )
        budget = 4 * 180.0
        mixed = MixedAdaptivePolicy().allocate(char, budget)
        silo = JobAdaptivePolicy().allocate(char, budget)
        # Both trim the waiting hosts to needed and push the rest to the
        # critical hosts; the refill paths differ in fine detail (MixedA
        # water-fills to needed, JobAdaptive scales proportionally), so
        # agreement is to within a couple of watts.
        np.testing.assert_allclose(
            mixed.caps_w[2:], silo.caps_w[2:], atol=2.0
        )

    def test_notes_expose_internals(self):
        char = make_char(
            monitor=[200, 200], needed=[180, 180], boundaries=[0, 2]
        )
        alloc = MixedAdaptivePolicy().allocate(char, 400.0)
        assert "uniform_share_w" in alloc.notes
        assert alloc.notes["needed_total_w"] == pytest.approx(360.0)
