"""Unit tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    MixedAdaptiveUniformSurplus,
    characterization_noise_sweep,
    harvest_fraction_sweep,
    step4_weighting_ablation,
)
from tests.unit.test_policies_basic import make_char


class TestHarvestSweep:
    def test_energy_savings_grow_with_harvest(self, small_grid):
        points = harvest_fraction_sweep(
            small_grid, fractions=(0.25, 1.0), budget_level="max"
        )
        assert points[0].energy_savings_pct < points[1].energy_savings_pct

    def test_points_carry_parameters(self, small_grid):
        points = harvest_fraction_sweep(small_grid, fractions=(0.5,))
        assert points[0].parameter == "harvest_fraction"
        assert points[0].value == 0.5
        assert points[0].mix_name == "WastefulPower"


class TestUniformSurplusPolicy:
    def test_respects_budget(self):
        char = make_char(
            monitor=[230, 180, 160, 200],
            needed=[230, 160, 150, 180],
            boundaries=[0, 2, 4],
        )
        policy = MixedAdaptiveUniformSurplus()
        for budget in (600.0, 720.0, 900.0):
            assert policy.allocate(char, budget).within_budget()

    def test_spreads_surplus_uniformly(self):
        char = make_char(
            monitor=[200, 160],
            needed=[200, 160],
            boundaries=[0, 1, 2],
        )
        alloc = MixedAdaptiveUniformSurplus().allocate(char, 400.0)
        # 40 W surplus split evenly (20/20), unlike the weighted variant.
        assert alloc.caps_w[0] - 200.0 == pytest.approx(20.0)
        assert alloc.caps_w[1] - 160.0 == pytest.approx(20.0)

    def test_registered_name(self):
        assert MixedAdaptiveUniformSurplus().name == "MixedAdaptiveUniformSurplus"


class TestStep4Ablation:
    def test_returns_both_variants(self, small_grid):
        out = step4_weighting_ablation(small_grid, levels=("ideal",))
        assert set(out["ideal"]) == {"weighted", "uniform"}

    def test_tuple_metrics(self, small_grid):
        out = step4_weighting_ablation(small_grid, levels=("max",))
        t, e = out["max"]["weighted"]
        assert isinstance(t, float) and isinstance(e, float)


class TestNoiseSweep:
    def test_zero_noise_matches_clean(self, small_grid):
        points = characterization_noise_sweep(
            small_grid, noise_levels=(0.0,), budget_level="ideal"
        )
        assert points[0].value == 0.0
        # Clean characterization yields positive time savings at ideal.
        assert points[0].time_savings_pct > 0

    def test_noise_levels_recorded(self, small_grid):
        points = characterization_noise_sweep(
            small_grid, noise_levels=(0.0, 0.05)
        )
        assert [p.value for p in points] == [0.0, 0.05]

    def test_heavy_noise_degrades_or_preserves(self, small_grid):
        """Savings under heavy characterization noise do not exceed the
        clean-characterization savings by more than noise jitter."""
        points = characterization_noise_sweep(
            small_grid, noise_levels=(0.0, 0.10), budget_level="ideal"
        )
        clean, noisy = points
        assert noisy.time_savings_pct <= clean.time_savings_pct + 1.5
