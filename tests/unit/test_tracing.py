"""Unit tests for the hierarchical tracing layer.

Span identity and nesting, the on/off switches, counter-delta
attribution, the cross-process merge, and the well-formedness validator
that the property suite and the provenance ledger both lean on.
"""

import json

import pytest

from repro import telemetry
from repro.telemetry.tracing import (
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracing,
    span,
    span_forest,
    tracing_enabled,
    validate_span_tree,
)


@pytest.fixture(autouse=True)
def _fresh_tracer():
    get_tracer().clear()
    telemetry.reset()
    yield
    get_tracer().clear()
    telemetry.reset()


class TestSpanBasics:
    def test_nested_spans_link_parent_and_trace(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id == outer.span_id
        finished = get_tracer().finished()
        assert [s.name for s in finished] == ["inner", "outer"]
        assert validate_span_tree(finished) == []

    def test_current_span_tracks_the_stack(self):
        assert current_span() is None
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_attributes_at_entry_and_exit(self):
        with span("work", mix="LowPower") as sp:
            sp.set_attribute("cells", 3)
        record, = get_tracer().finished("work")
        assert record.attributes == {"mix": "LowPower", "cells": 3}

    def test_timing_fields_populated(self):
        with span("work"):
            pass
        record, = get_tracer().finished()
        assert record.end_unix >= record.start_unix
        assert record.wall_s >= 0.0
        assert record.cpu_s >= 0.0

    def test_error_status_on_raise(self):
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        record, = get_tracer().finished("doomed")
        assert record.status == "error"
        assert current_span() is None

    def test_counter_deltas_attributed_to_span(self):
        telemetry.get_registry().counter("sim.runs").inc(2)
        with span("work"):
            telemetry.get_registry().counter("sim.runs").inc(3)
            telemetry.get_registry().counter("sim.cache_hits").inc()
        record, = get_tracer().finished("work")
        assert record.counters == {"sim.runs": 3.0, "sim.cache_hits": 1.0}

    def test_to_dict_from_dict_roundtrip(self):
        with span("work", k=1):
            pass
        record, = get_tracer().finished()
        clone = Span.from_dict(record.to_dict())
        assert clone == record


class TestSwitches:
    def test_set_tracing_off_yields_none_and_records_nothing(self):
        previous = set_tracing(False)
        try:
            assert not tracing_enabled()
            with span("invisible") as sp:
                assert sp is None
            assert get_tracer().finished() == []
        finally:
            set_tracing(previous)

    def test_global_telemetry_switch_also_gates(self):
        with telemetry.disabled():
            assert not tracing_enabled()
            with span("invisible") as sp:
                assert sp is None
        assert get_tracer().finished() == []

    def test_isolate_installs_fresh_tracer(self):
        with span("before"):
            pass
        tracer = get_tracer()
        telemetry.isolate()
        try:
            assert get_tracer() is not tracer
            assert get_tracer().finished() == []
        finally:
            telemetry.isolate()


class TestTracer:
    def test_capacity_bounds_finished_ring(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            record = tracer.start(f"s{i}")
            tracer.finish(record)
        assert len(tracer) == 4
        assert [s.name for s in tracer.finished()] == [
            "s6", "s7", "s8", "s9"
        ]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_finish_closes_abandoned_children(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("abandoned")
        tracer.finish(outer)
        assert tracer.current() is None

    def test_span_ids_are_pid_prefixed_and_unique(self):
        import os

        tracer = Tracer()
        ids = {tracer.start(f"s{i}").span_id for i in range(50)}
        assert len(ids) == 50
        assert all(i.startswith(f"{os.getpid():x}-") for i in ids)

    def test_to_json_writes_schema_and_spans(self, tmp_path):
        with span("outer"):
            pass
        path = get_tracer().to_json(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.trace.v1"
        assert [s["name"] for s in payload["spans"]] == ["outer"]


class TestMergeState:
    _fake_pids = iter(f"fake{i:x}" for i in range(100))

    def _worker_state(self):
        """A detached tracer's state, as a worker would ship it.

        Span ids are pid-prefixed, so a genuine worker (different pid)
        never collides with the parent; an in-process stand-in tracer
        would, so its ids are rewritten under a fake pid.
        """
        import os

        worker = Tracer()
        root = worker.start("parallel.task")
        child = worker.start("sim.simulate_mix")
        worker.finish(child)
        worker.finish(root)
        state = worker.state()
        real, fake = f"{os.getpid():x}-", f"{next(self._fake_pids)}-"
        for record in state:
            for key in ("span_id", "trace_id", "parent_id"):
                if record[key]:
                    record[key] = record[key].replace(real, fake)
        return state

    def test_merge_reparents_roots_under_current_span(self):
        state = self._worker_state()
        with span("parallel.map") as map_sp:
            merged = get_tracer().merge_state(state, parent=map_sp)
        spans = get_tracer().finished()
        assert validate_span_tree(spans) == []
        roots = [s for s in merged if s.name == "parallel.task"]
        assert roots[0].parent_id == map_sp.span_id
        assert all(s.trace_id == map_sp.trace_id for s in merged)

    def test_merge_without_parent_keeps_worker_roots(self):
        state = self._worker_state()
        merged = get_tracer().merge_state(state, parent=None)
        assert validate_span_tree(merged) == []
        root, = [s for s in merged if s.parent_id is None]
        assert root.name == "parallel.task"

    def test_merge_two_workers_stays_well_formed(self):
        state_a, state_b = self._worker_state(), self._worker_state()
        with span("parallel.map") as map_sp:
            get_tracer().merge_state(state_a, parent=map_sp)
            get_tracer().merge_state(state_b, parent=map_sp)
        spans = get_tracer().finished()
        assert validate_span_tree(spans) == []
        assert len([s for s in spans if s.name == "parallel.task"]) == 2


class TestValidateSpanTree:
    def _span(self, name, span_id, trace_id, parent_id=None,
              start=0.0, end=1.0):
        return Span(name=name, span_id=span_id, trace_id=trace_id,
                    parent_id=parent_id, start_unix=start, end_unix=end)

    def test_accepts_well_formed_tree(self):
        spans = [
            self._span("root", "a", "a", None, 0.0, 10.0),
            self._span("child", "b", "a", "a", 1.0, 5.0),
        ]
        assert validate_span_tree(spans) == []

    def test_flags_duplicate_ids(self):
        spans = [
            self._span("root", "a", "a"),
            self._span("twin", "a", "a"),
        ]
        assert any("duplicate" in p for p in validate_span_tree(spans))

    def test_flags_orphans(self):
        spans = [self._span("lost", "b", "a", parent_id="missing")]
        assert any("orphaned" in p for p in validate_span_tree(spans))

    def test_flags_multiple_roots_per_trace(self):
        spans = [
            self._span("r1", "a", "t"),
            self._span("r2", "b", "t"),
        ]
        assert any("roots" in p for p in validate_span_tree(spans))

    def test_flags_cross_trace_parent(self):
        spans = [
            self._span("root", "a", "t1", None),
            self._span("child", "b", "t2", "a"),
        ]
        problems = validate_span_tree(spans)
        assert any("crosses traces" in p for p in problems)

    def test_flags_non_nested_interval(self):
        spans = [
            self._span("root", "a", "a", None, 0.0, 1.0),
            self._span("late", "b", "a", "a", 0.5, 9.0),
        ]
        assert any("not" in p and "nested" in p
                   for p in validate_span_tree(spans))

    def test_nesting_slack_tolerates_clock_skew(self):
        spans = [
            self._span("root", "a", "a", None, 0.0, 1.0),
            self._span("child", "b", "a", "a", -0.01, 1.01),
        ]
        assert validate_span_tree(spans, nesting_slack_s=0.05) == []

    def test_flags_parent_cycle(self):
        spans = [
            self._span("x", "a", "t", "b"),
            self._span("y", "b", "t", "a"),
        ]
        assert any("cycle" in p for p in validate_span_tree(spans))

    def test_span_forest_groups_by_trace(self):
        spans = [
            self._span("r1", "a", "a"),
            self._span("c1", "b", "a", "a"),
            self._span("r2", "c", "c"),
        ]
        forest = span_forest(spans)
        assert set(forest) == {"a", "c"}
        assert [s.span_id for s in forest["a"]["roots"]] == ["a"]
        assert len(forest["a"]["spans"]) == 2
