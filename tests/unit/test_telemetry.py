"""Unit tests for the telemetry subsystem (events, metrics, timers)."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    Event,
    EventBus,
    Histogram,
    MetricsRegistry,
    ScopedTimer,
    TelemetrySummary,
    metric_key,
    timed,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def bus():
    ticks = iter(range(10_000))
    return EventBus(capacity=16, clock=lambda: float(next(ticks)))


@pytest.fixture(autouse=True)
def _fresh_global_state():
    """Each test starts and ends with pristine global telemetry."""
    telemetry.reset()
    yield
    telemetry.reset()


class TestMetricKey:
    def test_no_labels_is_bare_name(self):
        assert metric_key("a.b.c", {}) == "a.b.c"

    def test_labels_sorted(self):
        key = metric_key("m", {"z": "1", "a": "2"})
        assert key == "m{a=2,z=1}"


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("x").inc(-1.0)

    def test_get_or_create_is_idempotent(self, registry):
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", a="1") is not registry.counter("x")


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("depth")
        g.set(4.0)
        g.inc(-1.0)
        assert g.value == 3.0


class TestHistogram:
    def test_exact_stats_small_stream(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        snap = h.snapshot()
        assert snap.count == 4
        assert snap.mean == 2.5
        assert snap.min == 1.0
        assert snap.max == 4.0
        assert snap.p50 == 2.5

    def test_quantile_bounds_checked(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="q must be"):
            h.quantile(1.5)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Histogram().quantile(0.5)

    def test_empty_snapshot_is_zero(self):
        snap = Histogram().snapshot()
        assert snap.count == 0 and snap.mean == 0.0 and snap.max == 0.0

    def test_quantiles_within_range_beyond_reservoir(self):
        """Once the reservoir is full, estimates stay inside [min, max]."""
        h = Histogram(reservoir_size=32)
        for i in range(1000):
            h.observe(float(i % 97))
        assert h.count == 1000
        for q in (0.0, 0.5, 0.95, 1.0):
            assert 0.0 <= h.quantile(q) <= 96.0

    def test_deterministic_for_same_stream(self):
        a, b = Histogram(reservoir_size=8), Histogram(reservoir_size=8)
        for i in range(500):
            a.observe(float(i))
            b.observe(float(i))
        assert a.snapshot() == b.snapshot()


class TestRegistry:
    def test_len_and_reset(self, registry):
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3
        registry.reset()
        assert len(registry) == 0

    def test_snapshot_shape(self, registry):
        registry.counter("runs").inc()
        registry.gauge("depth").set(2.0)
        registry.histogram("lat_s").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"runs": 1.0}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["lat_s"]["count"] == 1.0


class TestEventBus:
    def test_publish_and_read_back(self, bus):
        bus.publish("layer.comp", "thing_happened", n=3)
        events = bus.events()
        assert len(events) == 1
        assert events[0].source == "layer.comp"
        assert events[0].payload == {"n": 3}

    def test_ring_buffer_drops_oldest(self, bus):
        for i in range(20):
            bus.publish("s", "k", i=i)
        assert len(bus) == 16
        assert bus.events()[0].payload == {"i": 4}

    def test_subscribers_fire_in_subscription_order(self, bus):
        calls = []
        bus.subscribe(lambda e: calls.append("first"))
        bus.subscribe(lambda e: calls.append("second"))
        bus.publish("s", "k")
        assert calls == ["first", "second"]

    def test_unsubscribe_stops_delivery(self, bus):
        calls = []
        token = bus.subscribe(calls.append)
        bus.publish("s", "k")
        bus.unsubscribe(token)
        bus.publish("s", "k")
        assert len(calls) == 1
        assert bus.subscriber_count == 0

    def test_unsubscribe_unknown_token_raises(self, bus):
        with pytest.raises(KeyError):
            bus.unsubscribe(99)

    def test_kind_and_source_filters(self, bus):
        seen = []
        bus.subscribe(seen.append, kinds=["hit"], sources=["a.b"])
        bus.publish("a.b", "hit")
        bus.publish("a.b", "miss")
        bus.publish("c.d", "hit")
        assert len(seen) == 1

    def test_counts_by_source(self, bus):
        bus.publish("a.b", "k")
        bus.publish("a.b", "k")
        bus.publish("c.d", "k")
        assert bus.counts_by_source() == {"a.b": 2, "c.d": 1}
        assert bus.sources() == ["a.b", "c.d"]

    def test_jsonl_export(self, bus, tmp_path):
        bus.publish("a.b", "k", x=1.5)
        path = bus.to_jsonl(tmp_path / "events.jsonl")
        row = json.loads(path.read_text().strip())
        assert row == {"ts": 0.0, "source": "a.b", "kind": "k", "x": 1.5}

    def test_csv_export_unions_payload_keys(self, bus, tmp_path):
        bus.publish("a", "k", x=1)
        bus.publish("a", "k", y=2)
        path = bus.to_csv(tmp_path / "events.csv")
        header, first, second = path.read_text().strip().splitlines()
        assert header == "ts,source,kind,x,y"
        assert first.endswith("1,")
        assert second.endswith(",2")

    def test_event_to_json_handles_non_serialisable(self):
        event = Event(ts=0.0, source="s", kind="k",
                      payload={"path": object()})
        assert "path" in json.loads(event.to_json())


class TestScopedTimer:
    def test_records_into_histogram(self, registry):
        with ScopedTimer("work_s", registry=registry):
            pass
        snap = registry.histogram("work_s").snapshot()
        assert snap.count == 1
        assert snap.max >= 0.0

    def test_elapsed_available_after_exit(self, registry):
        with ScopedTimer("work_s", registry=registry) as timer:
            pass
        assert timer.elapsed_s >= 0.0

    def test_nesting_records_both_levels(self, registry):
        with ScopedTimer("outer_s", registry=registry):
            with ScopedTimer("inner_s", registry=registry):
                pass
            with ScopedTimer("inner_s", registry=registry):
                pass
        assert registry.histogram("outer_s").count == 1
        assert registry.histogram("inner_s").count == 2
        outer = registry.histogram("outer_s").snapshot().max
        inner = registry.histogram("inner_s").snapshot().max
        assert outer >= inner  # the outer scope contains the inner ones

    def test_exception_still_records(self, registry):
        with pytest.raises(RuntimeError):
            with ScopedTimer("work_s", registry=registry):
                raise RuntimeError("boom")
        assert registry.histogram("work_s").count == 1

    def test_timed_decorator(self, registry):
        @timed("f_s", registry=registry)
        def f(x):
            """Doc preserved."""
            return x + 1

        assert f(1) == 2
        assert f.__doc__ == "Doc preserved."
        assert registry.histogram("f_s").count == 1

    def test_global_timer_noops_when_disabled(self):
        with telemetry.disabled():
            with ScopedTimer("work_s"):
                pass
        assert len(telemetry.get_registry()) == 0


class TestContext:
    def test_emit_respects_disable(self):
        telemetry.emit("a.b", "k")
        with telemetry.disabled():
            assert telemetry.emit("a.b", "k") is None
        assert len(telemetry.get_bus().events()) == 1

    def test_set_enabled_returns_previous(self):
        assert telemetry.set_enabled(False) is True
        assert telemetry.set_enabled(True) is False

    def test_reset_clears_registry_and_bus(self):
        telemetry.get_registry().counter("x").inc()
        telemetry.emit("a.b", "k")
        telemetry.reset()
        assert len(telemetry.get_registry()) == 0
        assert len(telemetry.get_bus().events()) == 0


class TestSummary:
    def test_empty_summary_renders_placeholder(self):
        summary = TelemetrySummary.capture()
        assert summary.empty
        assert "no telemetry" in summary.render()

    def test_capture_rolls_up_registry_and_bus(self):
        telemetry.get_registry().counter("runtime.x.runs").inc(2)
        telemetry.get_registry().histogram("runtime.x.run_s").observe(0.25)
        telemetry.emit("runtime.x", "run_complete")
        summary = TelemetrySummary.capture()
        assert not summary.empty
        text = summary.render()
        assert "runtime.x.runs" in text
        assert "runtime.x.run_s" in text
        assert "Events by source" in text
        assert summary.event_counts == {"runtime.x": 1}
