"""Unit tests for the SVG chart renderer."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.analysis.svg import (
    grouped_bar_chart,
    heatmap_chart,
    line_chart,
    write_svg,
    _nice_ticks,
)


def _well_formed(svg: str) -> bool:
    xml.dom.minidom.parseString(svg)
    return True


class TestNiceTicks:
    def test_simple_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0
        assert ticks[-1] <= 10.0 + 1e-9
        assert len(ticks) >= 3

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert len(ticks) >= 1

    def test_ticks_increase(self):
        ticks = _nice_ticks(-3.7, 42.1)
        assert all(b > a for a, b in zip(ticks, ticks[1:]))


class TestLineChart:
    def test_well_formed(self):
        svg = line_chart(
            [0, 1, 2, 3], {"a": [1.0, 2.0, 1.5, 3.0]}, title="t",
        )
        assert _well_formed(svg)

    def test_series_and_reference_lines(self):
        svg = line_chart(
            [0, 1, 2], {"draw": [0.8, 0.9, 0.85]}, title="Fig1",
            h_lines={"rating": 1.35},
        )
        assert "polyline" in svg
        assert "rating" in svg
        assert "stroke-dasharray" in svg

    def test_rejects_short_x(self):
        with pytest.raises(ValueError):
            line_chart([1], {"a": [1.0]}, title="t")

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            line_chart([0, 1], {"a": [1.0, 2.0, 3.0]}, title="t")

    def test_escapes_labels(self):
        svg = line_chart([0, 1], {"a<b>": [1.0, 2.0]}, title='x & "y"')
        assert "a&lt;b&gt;" in svg
        assert "x &amp; &quot;y&quot;" in svg
        assert _well_formed(svg)


class TestGroupedBarChart:
    def test_well_formed(self):
        svg = grouped_bar_chart(
            ["min", "ideal", "max"],
            {"A": [1.0, 2.0, 3.0], "B": [2.0, 1.0, 0.5]},
            title="bars",
        )
        assert _well_formed(svg)
        assert svg.count("<rect") >= 6

    def test_negative_values_supported(self):
        svg = grouped_bar_chart(
            ["g"], {"A": [-2.0], "B": [3.0]}, title="t",
        )
        assert _well_formed(svg)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"A": [1.0]}, title="t")

    def test_rejects_empty_groups(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([], {"A": []}, title="t")


class TestHeatmapChart:
    def test_well_formed(self):
        svg = heatmap_chart(
            ["1", "8"], ["0%", "50%"],
            np.array([[209.0, 199.0], [232.0, 205.0]]),
            title="heat", unit="W",
        )
        assert _well_formed(svg)
        assert svg.count("<rect") >= 5  # 4 cells + background

    def test_values_rendered(self):
        svg = heatmap_chart(
            ["r"], ["c"], np.array([[232.0]]), title="t",
        )
        assert "232" in svg

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            heatmap_chart(["a"], ["b"], np.ones((2, 2)), title="t")


class TestWriteSvg:
    def test_writes_file(self, tmp_path):
        svg = line_chart([0, 1], {"a": [1.0, 2.0]}, title="t")
        path = write_svg(svg, tmp_path / "chart.svg")
        assert path.read_text().startswith("<svg")

    def test_rejects_non_svg(self, tmp_path):
        with pytest.raises(ValueError):
            write_svg("<html></html>", tmp_path / "x.svg")


class TestRenderAllFigures:
    def test_all_figures_written(self, small_grid, small_grid_results, tmp_path):
        from repro.experiments.svg_figures import render_all_figures

        written = render_all_figures(
            small_grid, tmp_path, results=small_grid_results, heatmap_nodes=10
        )
        assert set(written) == {
            "fig1", "fig4", "fig5",
            "fig7_min", "fig7_ideal", "fig7_max",
            "fig8_time", "fig8_energy",
        }
        for path in written.values():
            assert path.exists()
            xml.dom.minidom.parse(str(path))
