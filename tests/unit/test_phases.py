"""Unit tests for the multi-phase workload extension."""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.workload.kernel import KernelConfig
from repro.workload.phases import (
    PhasedWorkload,
    WorkloadPhase,
    simulate_phased_job,
)


def _workload(nodes=6):
    return PhasedWorkload(
        name="solver",
        phases=(
            WorkloadPhase("assembly", KernelConfig(intensity=0.25), iterations=10),
            WorkloadPhase("kernel", KernelConfig(intensity=32.0), iterations=10),
        ),
        node_count=nodes,
    )


class TestStructure:
    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            PhasedWorkload(name="w", phases=(), node_count=4)

    def test_rejects_duplicate_phase_names(self):
        phase = WorkloadPhase("p", KernelConfig(intensity=1.0))
        with pytest.raises(ValueError, match="duplicate"):
            PhasedWorkload(name="w", phases=(phase, phase), node_count=4)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            WorkloadPhase("p", KernelConfig(intensity=1.0), iterations=0)

    def test_total_iterations(self):
        assert _workload().total_iterations() == 20


class TestSimulation:
    def test_runs_all_phases(self, execution_model):
        result = simulate_phased_job(
            _workload(), np.ones(6), create_policy("MixedAdaptive"),
            budget_w=6 * 200.0, model=execution_model,
        )
        assert len(result.phase_results) == 2
        assert result.total_elapsed_s > 0
        assert result.total_energy_j > 0

    def test_efficiency_shape_checked(self, execution_model):
        with pytest.raises(ValueError, match="efficiencies"):
            simulate_phased_job(
                _workload(), np.ones(3), create_policy("StaticCaps"),
                budget_w=1200.0, model=execution_model,
            )

    def test_phase_summary_rows(self, execution_model):
        result = simulate_phased_job(
            _workload(), np.ones(6), create_policy("StaticCaps"),
            budget_w=6 * 200.0, model=execution_model,
        )
        rows = result.phase_summary()
        assert len(rows) == 2
        assert rows[0]["phase"] == 0
        assert rows[1]["energy_j"] > 0

    def test_replanning_beats_frozen_caps(self, execution_model):
        """Re-planning at phase boundaries never loses to a frozen phase-0
        allocation, and wins when phases differ in character.

        Phase 0 is memory-bound (over-provisioned caps are harmless but
        the frozen plan carries them into the compute-bound phase 1 the
        wrong way around when the budget is tight).
        """
        workload = PhasedWorkload(
            name="w",
            phases=(
                WorkloadPhase(
                    "imbalanced",
                    KernelConfig(intensity=32.0, waiting_fraction=0.5, imbalance=3),
                    iterations=10,
                ),
                WorkloadPhase("balanced", KernelConfig(intensity=32.0), iterations=10),
            ),
            node_count=6,
        )
        policy = create_policy("MixedAdaptive")
        budget = 6 * 180.0
        replanned = simulate_phased_job(
            workload, np.ones(6), policy, budget,
            model=execution_model, replan_each_phase=True,
        )
        frozen = simulate_phased_job(
            workload, np.ones(6), policy, budget,
            model=execution_model, replan_each_phase=False,
        )
        assert replanned.total_elapsed_s < frozen.total_elapsed_s

    def test_single_phase_equivalence(self, execution_model):
        """With one phase, replanning and frozen execution agree."""
        workload = PhasedWorkload(
            name="w",
            phases=(WorkloadPhase("only", KernelConfig(intensity=8.0), iterations=5),),
            node_count=4,
        )
        policy = create_policy("StaticCaps")
        a = simulate_phased_job(
            workload, np.ones(4), policy, 800.0,
            model=execution_model, replan_each_phase=True,
        )
        b = simulate_phased_job(
            workload, np.ones(4), policy, 800.0,
            model=execution_model, replan_each_phase=False,
        )
        assert a.total_elapsed_s == pytest.approx(b.total_elapsed_s)
