"""Unit tests for the cluster container."""

import numpy as np
import pytest

from repro.hardware.cluster import Cluster


class TestConstruction:
    def test_len(self, small_cluster):
        assert len(small_cluster) == 120

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cluster(node_count=0)

    def test_variation_none_gives_unit_efficiencies(self, flat_cluster):
        np.testing.assert_array_equal(flat_cluster.efficiencies, np.ones(60))

    def test_efficiencies_deterministic_per_seed(self):
        a = Cluster(node_count=50, seed=9)
        b = Cluster(node_count=50, seed=9)
        np.testing.assert_array_equal(a.efficiencies, b.efficiencies)

    def test_different_seeds_differ(self):
        a = Cluster(node_count=50, seed=1)
        b = Cluster(node_count=50, seed=2)
        assert not np.array_equal(a.efficiencies, b.efficiencies)

    def test_total_tdp(self, flat_cluster):
        assert flat_cluster.total_tdp_w == pytest.approx(60 * 240.0)

    def test_nodes_materialised_lazily(self, small_cluster):
        nodes = small_cluster.nodes
        assert len(nodes) == 120
        assert nodes[7].node_id == 7
        assert nodes[7].efficiency == pytest.approx(small_cluster.efficiencies[7])


class TestSurvey:
    def test_survey_shape(self, small_cluster):
        freqs = small_cluster.survey_frequencies(cap_w=140.0, kappa=1.0)
        assert freqs.shape == (120,)

    def test_survey_band(self, small_cluster):
        """Frequencies under a 70 W/socket cap land in the Fig. 6 band."""
        freqs = small_cluster.survey_frequencies(cap_w=140.0, kappa=1.0)
        assert np.all(freqs > 1.4)
        assert np.all(freqs < 2.1)

    def test_efficient_nodes_run_faster(self, small_cluster):
        freqs = small_cluster.survey_frequencies(cap_w=140.0, kappa=1.0)
        order_by_eff = np.argsort(small_cluster.efficiencies)
        # The most efficient node clocks at least as high as the least.
        assert freqs[order_by_eff[0]] > freqs[order_by_eff[-1]]


class TestSubset:
    def test_subset_preserves_efficiencies(self, small_cluster):
        ids = np.array([3, 10, 50])
        sub = small_cluster.subset(ids)
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.efficiencies, small_cluster.efficiencies[ids])

    def test_subset_rejects_out_of_range(self, small_cluster):
        with pytest.raises(ValueError):
            small_cluster.subset([500])

    def test_subset_rejects_empty(self, small_cluster):
        with pytest.raises(ValueError):
            small_cluster.subset([])

    def test_subset_is_independent_copy(self, small_cluster):
        sub = small_cluster.subset([0, 1])
        sub.efficiencies[0] = 99.0
        assert small_cluster.efficiencies[0] != 99.0
