"""Unit tests for the experiment grid runner."""

import numpy as np
import pytest

from repro.experiments.grid import ExperimentConfig


class TestConfig:
    def test_paper_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.survey_nodes == 2000
        assert cfg.nodes_per_job == 100
        assert cfg.jobs_per_mix == 9
        assert cfg.iterations == 100

    def test_small_preserves_structure(self):
        cfg = ExperimentConfig.small(nodes_per_job=10)
        assert cfg.jobs_per_mix == 9
        assert cfg.survey_nodes >= 250

    def test_rejects_undersized_survey(self):
        with pytest.raises(ValueError, match="survey"):
            ExperimentConfig(survey_nodes=100, nodes_per_job=100)


class TestEnvironment:
    def test_partition_is_medium_cluster(self, small_grid):
        survey = small_grid.survey
        medium = survey.cluster_node_ids("medium")
        assert len(small_grid.partition) == medium.size

    def test_partition_large_enough(self, small_grid):
        needed = small_grid.config.nodes_per_job * small_grid.config.jobs_per_mix
        assert len(small_grid.partition) >= needed

    def test_survey_cached(self, small_grid):
        assert small_grid.survey is small_grid.survey


class TestPreparation:
    def test_prepare_mix_cached(self, small_grid):
        a = small_grid.prepare_mix("LowPower")
        b = small_grid.prepare_mix("LowPower")
        assert a is b

    def test_prepared_has_ordered_budgets(self, small_grid):
        prepared = small_grid.prepare_mix("RandomLarge")
        b = prepared.budgets
        assert b.min_w <= b.ideal_w <= b.max_w

    def test_characterization_matches_mix(self, small_grid):
        prepared = small_grid.prepare_mix("HighPower")
        assert prepared.characterization.host_count == prepared.scheduled.mix.total_nodes


class TestCells:
    def test_run_cell_metadata(self, small_grid):
        cell = small_grid.run_cell("LowPower", "ideal", "StaticCaps")
        assert cell.mix_name == "LowPower"
        assert cell.budget_level == "ideal"
        assert cell.run.result.policy_name == "StaticCaps"

    def test_bad_level_rejected(self, small_grid):
        with pytest.raises(ValueError, match="budget_level"):
            small_grid.run_cell("LowPower", "medium", "StaticCaps")

    def test_cell_deterministic(self, small_grid):
        a = small_grid.run_cell("LowPower", "min", "MixedAdaptive")
        b = small_grid.run_cell("LowPower", "min", "MixedAdaptive")
        np.testing.assert_array_equal(
            a.run.result.iteration_times_s, b.run.result.iteration_times_s
        )

    def test_row_export(self, small_grid):
        cell = small_grid.run_cell("LowPower", "max", "MinimizeWaste")
        row = cell.row()
        assert row["mix"] == "LowPower"
        assert "total_energy_j" in row


class TestResults:
    def test_full_grid_size(self, small_grid_results):
        assert len(small_grid_results.cells) == 6 * 3 * 5

    def test_lookup(self, small_grid_results):
        cell = small_grid_results.cell("HighPower", "max", "JobAdaptive")
        assert cell.policy_name == "JobAdaptive"

    def test_missing_lookup_raises(self, small_grid_results):
        with pytest.raises(KeyError):
            small_grid_results.cell("HighPower", "max", "Nope")

    def test_rows_deterministic_order(self, small_grid_results):
        rows = small_grid_results.rows()
        assert len(rows) == 90
        keys = [(r["mix"], r["budget_level"], r["policy"]) for r in rows]
        assert keys == sorted(keys)

    def test_subgrid(self, small_grid):
        results = small_grid.run_all(
            mixes=["LowPower"], levels=["ideal"], policies=["StaticCaps"]
        )
        assert len(results.cells) == 1
