"""Unit tests for GEOPM-style trace collection."""

import numpy as np
import pytest

from repro.runtime.agent import PlatformSample
from repro.runtime.controller import Controller
from repro.runtime.power_balancer import PowerBalancerAgent
from repro.runtime.trace import JobTrace, TraceWriter, attach_tracer
from repro.workload.job import Job
from repro.workload.kernel import KernelConfig


def _sample(epoch, n=3):
    return PlatformSample(
        epoch=epoch,
        host_time_s=np.full(n, 0.5),
        epoch_time_s=0.5,
        host_power_w=np.full(n, 200.0),
        power_limit_w=np.full(n, 220.0),
        host_energy_j=np.full(n, 100.0),
        mean_freq_ghz=np.full(n, 2.0),
    )


class TestTraceWriter:
    def test_records_per_host(self):
        writer = TraceWriter("job")
        writer.record(_sample(0, n=4))
        assert len(writer.trace) == 4
        assert writer.trace.hosts == 4
        assert writer.trace.epochs == 1

    def test_multiple_epochs(self):
        writer = TraceWriter("job")
        for e in range(3):
            writer.record(_sample(e))
        assert writer.trace.epochs == 3
        assert len(writer.trace) == 9


class TestJobTrace:
    @pytest.fixture()
    def trace(self):
        writer = TraceWriter("job")
        for e in range(4):
            writer.record(_sample(e))
        return writer.trace

    def test_column(self, trace):
        col = trace.column("power_w")
        assert col.shape == (12,)
        np.testing.assert_allclose(col, 200.0)

    def test_column_single_host(self, trace):
        col = trace.column("epoch_time_s", host=1)
        assert col.shape == (4,)

    def test_unknown_column_raises(self, trace):
        with pytest.raises(KeyError, match="unknown trace column"):
            trace.column("teraflops")

    def test_limit_history_shape(self, trace):
        history = trace.limit_history()
        assert history.shape == (4, 3)
        assert not np.any(np.isnan(history))

    def test_to_csv(self, trace, tmp_path):
        path = trace.to_csv(tmp_path / "trace.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 12
        assert lines[0].startswith("epoch,host,")

    def test_to_csv_empty_trace_writes_header_only(self, tmp_path):
        """Regression: an empty trace used to export an empty file."""
        path = JobTrace(job_name="idle").to_csv(tmp_path / "empty.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("epoch,host,")


class TestAttachTracer:
    def test_captures_controller_run(self, execution_model):
        job = Job(
            name="t",
            config=KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2),
            node_count=4,
        )
        agent = PowerBalancerAgent(job_budget_w=4 * 240.0)
        controller = Controller(job, np.ones(4), agent, model=execution_model)
        writer = attach_tracer(controller)
        controller.run(max_epochs=50)
        assert writer.trace.epochs == len(controller.history)
        assert writer.trace.hosts == 4

    def test_trace_shows_balancer_convergence(self, execution_model):
        """The limit history converges: last-epoch step is tiny compared
        to the first cut."""
        job = Job(
            name="t",
            config=KernelConfig(intensity=16.0, waiting_fraction=0.5, imbalance=3),
            node_count=6,
        )
        agent = PowerBalancerAgent(job_budget_w=6 * 240.0)
        controller = Controller(job, np.ones(6), agent, model=execution_model)
        writer = attach_tracer(controller)
        controller.run(max_epochs=200)
        history = writer.trace.limit_history()
        steps = np.max(np.abs(np.diff(history, axis=0)), axis=1)
        biggest = float(np.max(steps))
        last_step = float(steps[-1])
        assert biggest > 1.0  # the balancer did move limits
        assert last_step < biggest / 10
