"""Unit tests for the msr-safe register-file emulation."""

import pytest

from repro.hardware.msr import (
    DEFAULT_ALLOWLIST,
    IA32_PERF_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MsrAccessError,
    MsrFile,
)


class TestAllowlist:
    def test_default_allowlist_contains_power_registers(self):
        assert MSR_PKG_POWER_LIMIT in DEFAULT_ALLOWLIST
        assert MSR_PKG_ENERGY_STATUS in DEFAULT_ALLOWLIST

    def test_read_outside_allowlist_raises(self):
        msr = MsrFile()
        with pytest.raises(MsrAccessError, match="0x1a0"):
            msr.read(0x1A0)

    def test_write_outside_allowlist_raises(self):
        msr = MsrFile()
        with pytest.raises(MsrAccessError):
            msr.write(0xDEAD, 1)

    def test_custom_allowlist(self):
        msr = MsrFile(allowlist={0x10})
        msr.write(0x10, 5)
        assert msr.read(0x10) == 5
        with pytest.raises(MsrAccessError):
            msr.read(MSR_PKG_POWER_LIMIT)

    def test_allowlist_is_immutable_view(self):
        msr = MsrFile()
        assert isinstance(msr.allowlist, frozenset)


class TestReadWrite:
    def test_unwritten_register_reads_zero(self):
        assert MsrFile().read(IA32_PERF_STATUS) == 0

    def test_write_then_read(self):
        msr = MsrFile()
        msr.write(MSR_PKG_POWER_LIMIT, 0x1234)
        assert msr.read(MSR_PKG_POWER_LIMIT) == 0x1234

    def test_write_masks_to_64_bits(self):
        msr = MsrFile()
        msr.write(MSR_PKG_POWER_LIMIT, (1 << 65) | 7)
        assert msr.read(MSR_PKG_POWER_LIMIT) == 7

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            MsrFile().write(MSR_PKG_POWER_LIMIT, -1)


class TestFields:
    def test_field_roundtrip(self):
        msr = MsrFile()
        msr.write_field(MSR_PKG_POWER_LIMIT, shift=0, width=15, value=560)
        assert msr.read_field(MSR_PKG_POWER_LIMIT, 0, 15) == 560

    def test_field_write_preserves_other_bits(self):
        msr = MsrFile()
        msr.write(MSR_PKG_POWER_LIMIT, 0xFFFF_0000)
        msr.write_field(MSR_PKG_POWER_LIMIT, shift=0, width=8, value=0xAB)
        assert msr.read(MSR_PKG_POWER_LIMIT) == 0xFFFF_00AB

    def test_field_overflow_rejected(self):
        msr = MsrFile()
        with pytest.raises(ValueError, match="does not fit"):
            msr.write_field(MSR_PKG_POWER_LIMIT, 0, 4, 16)

    def test_bad_field_geometry_rejected(self):
        msr = MsrFile()
        with pytest.raises(ValueError):
            msr.write_field(MSR_PKG_POWER_LIMIT, 60, 10, 1)
        with pytest.raises(ValueError):
            msr.read_field(MSR_PKG_POWER_LIMIT, -1, 4)

    def test_full_width_field(self):
        msr = MsrFile()
        msr.write_field(MSR_PKG_POWER_LIMIT, 0, 64, (1 << 64) - 1)
        assert msr.read(MSR_PKG_POWER_LIMIT) == (1 << 64) - 1
