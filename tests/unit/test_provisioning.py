"""Unit tests for the over-provisioning analysis."""

import pytest

from repro.experiments.provisioning import overprovisioning_curve
from repro.workload.kernel import KernelConfig


class TestCurve:
    @pytest.fixture(scope="class")
    def compute_curve(self, execution_model):
        return overprovisioning_curve(
            KernelConfig(intensity=32.0), 24_000.0, execution_model, points=8
        )

    def test_fleet_range(self, compute_curve):
        # 24 kW: 100 nodes at TDP, ~176 at the floor.
        assert compute_curve.tdp_provisioned().nodes == 100
        assert compute_curve.points[-1].nodes >= 170

    def test_caps_respect_budget(self, compute_curve):
        for p in compute_curve.points:
            assert p.nodes * p.cap_per_node_w <= 24_000.0 + 1e-6

    def test_caps_never_exceed_tdp(self, compute_curve):
        for p in compute_curve.points:
            assert p.cap_per_node_w <= 240.0 + 1e-9

    def test_fleet_throughput_is_product(self, compute_curve):
        for p in compute_curve.points:
            assert p.fleet_gflops == pytest.approx(
                p.nodes * p.per_node_gflops
            )

    def test_per_node_rate_decreases_with_fleet(self, compute_curve):
        rates = [p.per_node_gflops for p in compute_curve.points]
        assert all(b <= a + 1e-9 for a, b in zip(rates, rates[1:]))

    def test_optimum_beats_tdp_sizing(self, compute_curve):
        assert compute_curve.gain_over_tdp_provisioning() > 0.0

    def test_memory_bound_gains_more(self, execution_model):
        mem = overprovisioning_curve(
            KernelConfig(intensity=0.25), 24_000.0, execution_model, points=8
        )
        cpu = overprovisioning_curve(
            KernelConfig(intensity=32.0), 24_000.0, execution_model, points=8
        )
        assert (
            mem.gain_over_tdp_provisioning()
            > cpu.gain_over_tdp_provisioning()
        )

    def test_zero_intensity_supported(self, execution_model):
        curve = overprovisioning_curve(
            KernelConfig(intensity=0.0), 10_000.0, execution_model, points=4
        )
        assert all(p.fleet_gflops > 0 for p in curve.points)

    def test_rejects_bad_inputs(self, execution_model):
        with pytest.raises(ValueError):
            overprovisioning_curve(
                KernelConfig(intensity=1.0), -5.0, execution_model
            )
        with pytest.raises(ValueError):
            overprovisioning_curve(
                KernelConfig(intensity=1.0), 1000.0, execution_model, points=1
            )
