"""Unit tests: the batched scenario engine and its consumers."""

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.characterization.mix_characterization import (
    characterize_mix,
    characterize_mix_batch,
)
from repro.parallel.cache import CharacterizationCache, activate_cache, deactivate_cache
from repro.sim.batch import LayoutBatch, simulate_cap_batch, stack_layouts
from repro.sim.execution import DEFAULT_OPTIONS, SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


@pytest.fixture(autouse=True)
def _fresh_global_state():
    telemetry.reset()
    yield
    telemetry.reset()
    deactivate_cache()


def make_mix(iterations: int = 6) -> WorkloadMix:
    jobs = (
        Job(name="a", config=KernelConfig(intensity=8.0, waiting_fraction=0.5,
                                          imbalance=2),
            node_count=4, iterations=iterations),
        Job(name="b", config=KernelConfig(intensity=0.25),
            node_count=3, iterations=iterations),
    )
    return WorkloadMix(name="unit", jobs=jobs)


def rand_inputs(mix, scenarios=4, seed=11):
    rng = np.random.default_rng(seed)
    caps = rng.uniform(130.0, 250.0, (scenarios, mix.total_nodes))
    eff = rng.uniform(0.9, 1.1, mix.total_nodes)
    return caps, eff


class TestSimulateCapBatch:
    def test_rejects_wrong_cap_shape(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix)
        with pytest.raises(ValueError, match="caps_sw must have shape"):
            simulate_cap_batch(mix, caps[0], eff)
        with pytest.raises(ValueError, match="caps_sw must have shape"):
            simulate_cap_batch(mix, caps[:, :-1], eff)

    def test_rejects_wrong_efficiency_shape(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix)
        with pytest.raises(ValueError, match="efficiencies must have shape"):
            simulate_cap_batch(mix, caps, eff[:-1])

    def test_rejects_mismatched_seed_length(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix)
        with pytest.raises(ValueError, match="seeds must have length"):
            simulate_cap_batch(mix, caps, eff, seeds=[1, 2])

    def test_rejects_mismatched_metadata_length(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix)
        with pytest.raises(ValueError, match="policy_names"):
            simulate_cap_batch(mix, caps, eff, policy_names=["only-one"])
        with pytest.raises(ValueError, match="budgets_w"):
            simulate_cap_batch(mix, caps, eff, budgets_w=[1.0, 2.0])

    def test_matches_serial_noisy_and_quiet(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix, scenarios=5)
        seeds = [3, 1, 4, 1, 5]
        for noise in (0.0, 0.01):
            options = SimulationOptions(noise_std=noise, seed=0)
            batch = simulate_cap_batch(mix, caps, eff, options=options, seeds=seeds)
            for s in range(5):
                serial = simulate_mix(
                    mix, caps[s], eff,
                    options=dataclasses.replace(options, seed=seeds[s]),
                )
                assert batch[s] == serial

    def test_single_scenario_single_job(self):
        job = Job(name="solo", config=KernelConfig(intensity=2.0),
                  node_count=1, iterations=3)
        mix = WorkloadMix(name="solo", jobs=(job,))
        caps = np.array([[181.5]])
        eff = np.array([1.02])
        batch = simulate_cap_batch(mix, caps, eff)
        assert len(batch) == 1
        assert batch[0] == simulate_mix(mix, caps[0], eff, options=DEFAULT_OPTIONS)

    def test_shares_cache_entries_with_serial(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix, scenarios=3)
        seeds = [7, 8, 9]
        options = SimulationOptions(noise_std=0.01, seed=0)
        cache = activate_cache(CharacterizationCache())
        try:
            first = simulate_cap_batch(mix, caps, eff, options=options, seeds=seeds)
            assert cache.stats()["misses"] == 3
            again = simulate_cap_batch(mix, caps, eff, options=options, seeds=seeds)
            assert cache.stats()["hits"] == 3
            assert all(a == b for a, b in zip(first, again))
            # A serial call with the matching per-scenario options hits the
            # entry the batch stored.
            serial = simulate_mix(
                mix, caps[1], eff,
                options=dataclasses.replace(options, seed=seeds[1]),
            )
            assert cache.stats()["hits"] == 4
            assert serial == first[1]
        finally:
            deactivate_cache()

    def test_batch_telemetry(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix, scenarios=3)
        simulate_cap_batch(mix, caps, eff)
        registry = telemetry.get_registry()
        assert registry.counter("sim.execution.batch_runs").value == 1
        assert registry.counter("sim.execution.runs").value == 3
        kinds = [e.kind for e in telemetry.get_bus().events()]
        assert "mix_batch_simulated" in kinds

    def test_batch_telemetry_counts_cache_hits(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix, scenarios=3)
        activate_cache(CharacterizationCache())
        try:
            simulate_cap_batch(mix, caps, eff)
            simulate_cap_batch(mix, caps, eff)
        finally:
            deactivate_cache()
        registry = telemetry.get_registry()
        assert registry.counter("sim.execution.runs").value == 3
        assert registry.counter("sim.execution.cache_hits").value == 3


class TestSerialCacheTelemetry:
    def test_cache_hit_counted_and_event_emitted(self):
        mix = make_mix()
        caps, eff = rand_inputs(mix, scenarios=1)
        activate_cache(CharacterizationCache())
        try:
            simulate_mix(mix, caps[0], eff)
            simulate_mix(mix, caps[0], eff)
        finally:
            deactivate_cache()
        registry = telemetry.get_registry()
        assert registry.counter("sim.execution.runs").value == 1
        assert registry.counter("sim.execution.cache_hits").value == 1
        kinds = [e.kind for e in telemetry.get_bus().events()]
        assert "mix_simulated_cached" in kinds


class TestStackLayouts:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one layout"):
            stack_layouts([])

    def test_rejects_mismatched_job_structure(self):
        a = make_mix().layout()
        solo = WorkloadMix(
            name="solo",
            jobs=(Job(name="s", config=KernelConfig(intensity=1.0),
                      node_count=7, iterations=6),),
        ).layout()
        with pytest.raises(ValueError, match="job block structure"):
            stack_layouts([a, solo])

    def test_unions_ceiling_vocabularies(self):
        from repro.workload.kernel import Precision, VectorWidth

        mixes = [
            WorkloadMix(
                name=f"m{i}",
                jobs=(Job(name="j", config=cfg, node_count=3, iterations=1),),
            )
            for i, cfg in enumerate(
                [
                    KernelConfig(intensity=4.0, vector=VectorWidth.YMM),
                    KernelConfig(intensity=4.0, vector=VectorWidth.XMM),
                    KernelConfig(intensity=4.0, precision=Precision.SINGLE),
                ]
            )
        ]
        layouts = [m.layout() for m in mixes]
        batch = stack_layouts(layouts)
        assert isinstance(batch, LayoutBatch)
        assert batch.scenario_count == 3
        assert batch.host_count == 3
        assert len(set(batch.ceiling_names)) == len(batch.ceiling_names)
        for s, layout in enumerate(layouts):
            resolved = [batch.ceiling_names[i]
                        for i in batch.compute_ceiling_index[s]]
            expected = [layout.ceiling_names[i]
                        for i in layout.compute_ceiling_index]
            assert resolved == expected
            assert np.array_equal(batch.kappa[s], layout.kappa)


class TestCharacterizeMixBatch:
    def test_matches_serial_per_fraction(self):
        mix = make_mix()
        _, eff = rand_inputs(mix)
        fractions = [0.25, 0.5, 1.0]
        batch = characterize_mix_batch(mix, eff, fractions)
        for fraction, char in zip(fractions, batch):
            serial = characterize_mix(mix, eff, harvest_fraction=fraction)
            assert np.array_equal(char.monitor_power_w, serial.monitor_power_w)
            assert np.array_equal(char.needed_power_w, serial.needed_power_w)
            assert np.array_equal(char.needed_cap_w, serial.needed_cap_w)
            assert char.min_cap_w == serial.min_cap_w

    def test_rejects_bad_fraction(self):
        mix = make_mix()
        _, eff = rand_inputs(mix)
        with pytest.raises(ValueError, match="harvest_fraction"):
            characterize_mix_batch(mix, eff, [0.5, 0.0])

    def test_shares_cache_with_serial(self):
        mix = make_mix()
        _, eff = rand_inputs(mix)
        cache = activate_cache(CharacterizationCache())
        try:
            characterize_mix_batch(mix, eff, [0.3, 0.9])
            assert cache.stats()["misses"] == 2
            serial = characterize_mix(mix, eff, harvest_fraction=0.9)
            assert cache.stats()["hits"] == 1
            batch = characterize_mix_batch(mix, eff, [0.3, 0.9])
            assert cache.stats()["hits"] == 3
            assert np.array_equal(batch[1].needed_cap_w, serial.needed_cap_w)
        finally:
            deactivate_cache()


class TestHotPathMemoization:
    def test_layout_is_memoized_and_read_only(self):
        mix = make_mix()
        layout = mix.layout()
        assert mix.layout() is layout
        for array in (layout.kappa, layout.gflop, layout.traffic_gb,
                      layout.job_index, layout.job_boundaries):
            assert not array.flags.writeable

    def test_common_iterations_memoized_and_validating(self):
        mix = make_mix(iterations=9)
        assert mix.common_iterations() == 9
        bad = WorkloadMix(
            name="bad",
            jobs=(
                Job(name="a", config=KernelConfig(intensity=1.0),
                    node_count=2, iterations=3),
                Job(name="b", config=KernelConfig(intensity=1.0),
                    node_count=2, iterations=4),
            ),
        )
        with pytest.raises(ValueError, match="same iteration count"):
            bad.common_iterations()

    def test_kernel_kappa_precomputed(self):
        config = KernelConfig(intensity=8.0)
        assert config.kappa == config._kappa
        from repro.workload.kernel import activity_factor

        assert config.kappa == float(activity_factor(8.0))
