"""Unit tests: the ``repro.stream.v1`` wire protocol."""

import pytest

from repro.manager.queue import JobRequest
from repro.stream import messages as msg
from repro.workload.kernel import KernelConfig, Precision, VectorWidth


def _request(name="wire-job"):
    return JobRequest(
        name=name,
        config=KernelConfig(intensity=2.0, vector=VectorWidth.XMM,
                            precision=Precision.SINGLE,
                            waiting_fraction=0.5, imbalance=2),
        node_count=6, iterations=40, power_hint_w=190.0,
    )


class TestEnvelope:
    def test_builders_validate_clean(self):
        for message in (
            msg.submit_message(_request()),
            msg.set_budget_message(1200.0),
            msg.stats_message(),
            msg.subscribe_message(kinds=["tick"]),
            msg.unsubscribe_message(),
            msg.shutdown_message(),
        ):
            assert msg.validate_upstream(message) == []
        for message in (
            msg.ack_message("submit"),
            msg.error_message("nope"),
            msg.stats_reply({"arrivals": 1}),
            msg.event_message("stream.engine", "tick", {"clock_s": 1.0}),
        ):
            assert msg.validate_downstream(message) == []

    def test_schema_tag_required(self):
        bad = msg.stats_message()
        bad["schema"] = "repro.stream.v0"
        problems = msg.validate_upstream(bad)
        assert any("schema mismatch" in p for p in problems)

    def test_unknown_op_reported(self):
        problems = msg.validate_upstream(
            {"schema": msg.STREAM_SCHEMA, "op": "reboot"}
        )
        assert any("unknown op" in p for p in problems)

    def test_missing_fields_reported(self):
        problems = msg.validate_upstream(
            {"schema": msg.STREAM_SCHEMA, "op": "set_budget"}
        )
        assert any("budget_w" in p for p in problems)

    def test_bool_is_not_a_number(self):
        problems = msg.validate_upstream(
            {"schema": msg.STREAM_SCHEMA, "op": "set_budget",
             "budget_w": True}
        )
        assert problems

    def test_submit_job_fields_checked(self):
        problems = msg.validate_upstream(
            {"schema": msg.STREAM_SCHEMA, "op": "submit",
             "job": {"name": "x"}}
        )
        assert any("intensity" in p for p in problems)

    def test_non_object_rejected(self):
        assert msg.validate_upstream([1, 2]) != []
        assert msg.validate_downstream("hi") != []


class TestFraming:
    def test_round_trip(self):
        frame = msg.encode_message(msg.stats_message())
        assert frame.endswith(b"\n")
        assert msg.decode_message(frame) == msg.stats_message()

    def test_malformed_json_raises(self):
        with pytest.raises(ValueError, match="malformed frame"):
            msg.decode_message(b"{nope\n")

    def test_non_object_frame_raises(self):
        with pytest.raises(ValueError, match="must decode to an object"):
            msg.decode_message(b"[1,2]\n")


class TestJobSpec:
    def test_payload_round_trip(self):
        original = _request()
        rebuilt = msg.job_request_from_payload(msg.job_payload(original))
        assert rebuilt.name == original.name
        assert rebuilt.config == original.config
        assert rebuilt.node_count == original.node_count
        assert rebuilt.iterations == original.iterations
        assert rebuilt.power_hint_w == original.power_hint_w

    def test_defaults_fill_in(self):
        request = msg.job_request_from_payload(
            {"name": "d", "intensity": 4.0, "node_count": 2,
             "iterations": 10}
        )
        assert request.config.vector is VectorWidth.YMM
        assert request.power_hint_w is None

    def test_bad_vector_is_value_error(self):
        with pytest.raises(ValueError, match="bad kernel spec"):
            msg.job_request_from_payload(
                {"name": "d", "intensity": 4.0, "node_count": 2,
                 "iterations": 10, "vector": "zmm"}
            )

    def test_domain_errors_surface(self):
        with pytest.raises(ValueError):
            msg.job_request_from_payload(
                {"name": "d", "intensity": 4.0, "node_count": 0,
                 "iterations": 10}
            )
