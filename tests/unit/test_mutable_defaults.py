"""Regression: no function may default an argument to a dataclass instance.

``def simulate_mix(..., options=SimulationOptions())`` evaluates the
default ONCE at import; every caller then shares that single anonymous
object, and anything that mutates or identity-compares it couples
unrelated call sites.  The fixed idiom is ``options=None`` plus an
in-body default.  This test walks every function and method in the
package and fails on any anonymous dataclass-instance (or plainly
mutable list/dict/set) default so the pattern cannot creep back in.

Defaults that *are* a declared UPPERCASE module constant (``QUARTZ_CPU``,
``NODE_LEVEL_ROOFLINE``, ...) are allowed: those are intentional,
documented shared singletons, which is a different thing from an
instance conjured in a ``def`` line.
"""

import dataclasses
import importlib
import inspect
import pkgutil

import repro


def _iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _named_constant_ids():
    """ids of every UPPERCASE module-level object in the package."""
    ids = set()
    for module in _iter_modules():
        for name, value in vars(module).items():
            if name.isupper():
                ids.add(id(value))
    return ids


def _iter_callables(module):
    for _, obj in inspect.getmembers(module, inspect.isfunction):
        if obj.__module__ == module.__name__:
            yield obj
    for _, cls in inspect.getmembers(module, inspect.isclass):
        if cls.__module__ != module.__name__:
            continue
        for _, method in inspect.getmembers(cls, inspect.isfunction):
            yield method


def _shared_mutable_defaults(func, allowed_ids=frozenset()):
    try:
        signature = inspect.signature(func)
    except (ValueError, TypeError):
        return []
    offending = []
    for name, parameter in signature.parameters.items():
        default = parameter.default
        if default is inspect.Parameter.empty or id(default) in allowed_ids:
            continue
        if dataclasses.is_dataclass(default) and not isinstance(default, type):
            offending.append((name, type(default).__name__))
        elif isinstance(default, (list, dict, set)):
            offending.append((name, type(default).__name__))
    return offending


class TestNoSharedMutableDefaults:
    def test_package_wide(self):
        allowed = _named_constant_ids()
        violations = []
        for module in _iter_modules():
            for func in _iter_callables(module):
                for name, type_name in _shared_mutable_defaults(func, allowed):
                    violations.append(
                        f"{func.__module__}.{func.__qualname__}"
                        f"({name}={type_name}())"
                    )
        assert not violations, (
            "shared mutable default arguments found (use None + in-body "
            "default instead):\n  " + "\n  ".join(sorted(set(violations)))
        )

    def test_detector_catches_the_original_bug(self):
        """The detector itself must flag the pattern this suite pins."""
        from repro.sim.execution import SimulationOptions

        def bad(options=SimulationOptions()):  # the pre-fix signature
            return options

        assert _shared_mutable_defaults(bad) == [
            ("options", "SimulationOptions")
        ]
