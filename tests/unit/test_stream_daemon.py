"""Unit tests: the asyncio stream daemon (plain ``asyncio.run`` — no
pytest-asyncio dependency)."""

import asyncio
import json

import pytest

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.stream import SiteStreamEngine, StreamDaemon, synthetic_job_factory
from repro.stream import messages as msg


def _engine(**kwargs):
    kwargs.setdefault("rolling", True)
    return SiteStreamEngine(
        Cluster(node_count=12, variation=None, seed=0),
        create_policy("StaticCaps"), 2500.0, **kwargs
    )


class _Client:
    """Line-framed test client that siphons pub/sub frames aside."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.events = []

    @classmethod
    async def connect(cls, host, port):
        return cls(*await asyncio.open_connection(host, port))

    async def rpc(self, message):
        self.writer.write(msg.encode_message(message))
        await self.writer.drain()
        while True:
            frame = json.loads(await self.reader.readline())
            if frame.get("type") == "event":
                self.events.append(frame)
                continue
            return frame

    async def close(self):
        self.writer.close()
        await self.writer.wait_closed()


async def _with_daemon(engine, body):
    daemon = StreamDaemon(engine)
    host, port = await daemon.start()
    client = await _Client.connect(host, port)
    try:
        return await body(daemon, client)
    finally:
        await client.close()
        await daemon.stop()


class TestDaemon:
    def test_requires_rolling_engine(self):
        with pytest.raises(ValueError, match="rolling"):
            StreamDaemon(_engine(rolling=False))

    def test_submit_runs_jobs_and_acks(self):
        async def body(daemon, client):
            factory = synthetic_job_factory(prefix="d")
            for i in range(3):
                reply = await client.rpc(msg.submit_message(factory(i)))
                assert reply["type"] == "ack"
                assert reply["name"] == f"d-{i}"
            reply = await client.rpc(msg.stats_message())
            assert reply["stats"]["jobs_completed"] == 3
            return reply

        asyncio.run(_with_daemon(_engine(), body))

    def test_pub_sub_delivers_bus_events(self):
        async def body(daemon, client):
            reply = await client.rpc(
                msg.subscribe_message(kinds=["batch_complete"])
            )
            assert reply["type"] == "ack"
            factory = synthetic_job_factory(prefix="s")
            await client.rpc(msg.submit_message(factory(0)))
            assert client.events
            frame = client.events[0]
            assert msg.validate_downstream(frame) == []
            assert frame["kind"] == "batch_complete"

        asyncio.run(_with_daemon(_engine(), body))

    def test_unsubscribe_stops_the_feed(self):
        async def body(daemon, client):
            await client.rpc(msg.subscribe_message())
            await client.rpc(msg.unsubscribe_message())
            client.events.clear()
            factory = synthetic_job_factory(prefix="u")
            await client.rpc(msg.submit_message(factory(0)))
            assert client.events == []

        asyncio.run(_with_daemon(_engine(), body))

    def test_malformed_and_invalid_frames_get_errors(self):
        async def body(daemon, client):
            client.writer.write(b"{broken\n")
            await client.writer.drain()
            frame = json.loads(await client.reader.readline())
            assert frame["type"] == "error"
            reply = await client.rpc(
                {"schema": msg.STREAM_SCHEMA, "op": "reboot"}
            )
            assert reply["type"] == "error"
            assert "unknown op" in reply["reason"]

        asyncio.run(_with_daemon(_engine(), body))

    def test_duplicate_name_is_an_error_not_a_crash(self):
        async def body(daemon, client):
            factory = synthetic_job_factory(prefix="dup")
            first = await client.rpc(msg.submit_message(factory(0)))
            assert first["type"] == "ack"
            again = await client.rpc(msg.submit_message(factory(0)))
            assert again["type"] == "error"
            # The daemon is still serving.
            reply = await client.rpc(msg.stats_message())
            assert reply["type"] == "stats"

        asyncio.run(_with_daemon(_engine(), body))

    def test_backpressure_surfaces_queue_full(self):
        engine = _engine(max_pending=1)
        # Occupy the queue before the daemon pumps: the daemon must
        # refuse further submissions with an error reply rather than
        # acking a job the engine would silently reject.
        factory = synthetic_job_factory(prefix="pre")
        engine.queue.submit(factory(0))

        async def body(daemon, client):
            reply = await client.rpc(msg.submit_message(factory(1)))
            assert reply["type"] == "error"
            assert reply["reason"] == "queue full"
            assert reply["max_pending"] == 1

        asyncio.run(_with_daemon(engine, body))

    def test_set_budget_round_trip(self):
        async def body(daemon, client):
            reply = await client.rpc(msg.set_budget_message(1200.0))
            assert reply["type"] == "ack"
            assert daemon.engine.budget_w == 1200.0

        asyncio.run(_with_daemon(_engine(), body))

    def test_shutdown_op_stops_serving(self):
        async def body():
            daemon = StreamDaemon(_engine())
            host, port = await daemon.start()
            serve = asyncio.create_task(daemon.serve_until_shutdown())
            client = await _Client.connect(host, port)
            reply = await client.rpc(msg.shutdown_message())
            assert reply["type"] == "ack"
            await asyncio.wait_for(serve, timeout=5.0)
            await client.close()

        asyncio.run(body())

    def test_two_clients_serialise_on_one_engine(self):
        async def body():
            daemon = StreamDaemon(_engine())
            host, port = await daemon.start()
            a = await _Client.connect(host, port)
            b = await _Client.connect(host, port)
            factory = synthetic_job_factory(prefix="pair")
            ra, rb = await asyncio.gather(
                a.rpc(msg.submit_message(factory(0))),
                b.rpc(msg.submit_message(factory(1))),
            )
            assert ra["type"] == "ack" and rb["type"] == "ack"
            reply = await a.rpc(msg.stats_message())
            assert reply["stats"]["arrivals"] == 2
            await a.close()
            await b.close()
            await daemon.stop()

        asyncio.run(body())


class TestObservability:
    def test_drop_oldest_increments_frames_dropped_counter(self):
        from repro.stream.daemon import _Subscriber
        from repro.telemetry import get_registry, reset

        reset()
        try:
            sub = _Subscriber(None, max_backlog=2)
            for i in range(5):
                sub.offer("src", "kind", {"i": i})
            assert sub.dropped == 3
            assert len(sub.buffer) == 2
            counters = get_registry().counter_values()
            assert counters["stream.daemon.frames_dropped"] == 3.0
        finally:
            reset()

    def test_drop_oldest_eviction_order(self):
        # Regression for the O(max_backlog)-per-drop list.pop(0) path:
        # the deque must still evict strictly oldest-first, keep exactly
        # the newest max_backlog frames in arrival order, and count
        # every drop.
        from repro.stream.daemon import _Subscriber
        from repro.telemetry import get_registry, reset

        reset()
        try:
            sub = _Subscriber(None, max_backlog=3)
            for i in range(8):
                sub.offer("src", "kind", {"i": i})
            assert sub.dropped == 5
            kept = [frame["payload"]["i"] for frame in sub.buffer]
            assert kept == [5, 6, 7]
            counters = get_registry().counter_values()
            assert counters["stream.daemon.frames_dropped"] == 5.0
            # Filtered-out kinds are never buffered, so they neither
            # evict nor count as drops.
            picky = _Subscriber(["wanted"], max_backlog=2)
            for i in range(4):
                picky.offer("src", "ignored", {"i": i})
            assert picky.dropped == 0
            assert len(picky.buffer) == 0
        finally:
            reset()

    def test_dispatch_emits_tracing_spans(self):
        from repro.telemetry import get_tracer, set_tracing

        async def body():
            async def inner(daemon, client):
                factory = synthetic_job_factory(prefix="traced")
                assert (await client.rpc(
                    msg.submit_message(factory(0))
                ))["type"] == "ack"
                assert (await client.rpc(
                    msg.stats_message()
                ))["type"] == "stats"

            await _with_daemon(_engine(), inner)

        previous = set_tracing(True)
        get_tracer().clear()
        try:
            asyncio.run(body())
            dispatches = get_tracer().finished("stream.daemon.dispatch")
            ops = [s.attributes["op"] for s in dispatches]
            assert "submit" in ops and "stats" in ops
        finally:
            set_tracing(previous)
            get_tracer().clear()
