"""Unit tests for the takeaway/marker checks."""

import pytest

from repro.experiments.takeaways import check_takeaways


class TestTakeawayReport:
    @pytest.fixture(scope="class")
    def report(self, small_grid_results):
        return check_takeaways(small_grid_results)

    def test_all_paper_shapes_hold(self, report):
        """The headline assertion of the reproduction: every takeaway and
        marker predicate from the paper holds on the simulated grid."""
        assert report.all_hold(), report.failed()

    def test_evidence_for_every_check(self, report):
        for name in report.checks:
            assert name in report.evidence

    def test_failed_empty_when_all_hold(self, report):
        assert report.failed() == ()

    def test_expected_check_names(self, report):
        assert set(report.checks) == {
            "t1_energy_savings_grow_with_budget",
            "t2_app_awareness_increases_energy_savings",
            "t3_combined_beats_either_alone",
            "t4_needusedpower_no_energy_opportunity",
            "marker_a_less_power_at_max",
            "marker_b_jobadaptive_underutilises_at_ideal",
            "marker_e_time_savings_at_constrained_budgets",
        }


class TestPartialGrid:
    def test_requires_all_levels(self, small_grid):
        partial = small_grid.run_all(mixes=["LowPower"], levels=["min"])
        with pytest.raises(ValueError, match="three budget levels"):
            check_takeaways(partial)
