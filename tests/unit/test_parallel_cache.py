"""Unit tests for the content-addressed characterization cache."""

import dataclasses
import enum
import json

import numpy as np
import pytest

from repro.parallel.cache import (
    CharacterizationCache,
    activate_cache,
    active_cache,
    canonical,
    deactivate_cache,
    stable_digest,
)


@dataclasses.dataclass(frozen=True)
class _Opts:
    noise_std: float = 0.008
    seed: int = 7


@dataclasses.dataclass(frozen=True)
class _OtherOpts:
    noise_std: float = 0.008
    seed: int = 7


class _Level(enum.Enum):
    IDEAL = "ideal"
    MAX = "max"


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(None) is None
        assert canonical(3) == 3
        assert canonical("x") == "x"
        assert canonical(1.5) == 1.5

    def test_ndarray_keeps_dtype_shape_values(self):
        form = canonical(np.arange(4, dtype=np.float64).reshape(2, 2))
        assert form["__ndarray__"] == "float64"
        assert form["shape"] == [2, 2]
        assert form["data"] == [[0.0, 1.0], [2.0, 3.0]]

    def test_numpy_scalar_unwraps(self):
        assert canonical(np.float64(2.5)) == 2.5

    def test_dataclass_tagged_by_class(self):
        assert canonical(_Opts()) != canonical(_OtherOpts())

    def test_enum_tagged(self):
        assert canonical(_Level.IDEAL) != canonical("ideal")

    def test_dict_key_order_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalise"):
            canonical(object())


class TestStableDigest:
    def test_deterministic(self):
        a = stable_digest("mix", np.ones(3), _Opts())
        b = stable_digest("mix", np.ones(3), _Opts())
        assert a == b

    def test_sensitive_to_float_bits(self):
        eps = np.nextafter(1.0, 2.0)
        assert stable_digest(1.0) != stable_digest(float(eps))

    def test_sensitive_to_dtype(self):
        assert stable_digest(np.ones(2, dtype=np.float64)) != stable_digest(
            np.ones(2, dtype=np.float32)
        )


class TestCacheTiers:
    def test_memory_hit(self):
        cache = CharacterizationCache(max_entries=4)
        key = cache.key("char", "payload")
        assert cache.get(key) is None
        cache.put(key, {"value": 1.25})
        assert cache.get(key) == {"value": 1.25}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = CharacterizationCache(max_entries=2)
        for i in range(3):
            cache.put(f"k{i}", {"i": i})
        assert len(cache) == 2
        assert cache.get("k0") is None  # evicted
        assert cache.get("k2") == {"i": 2}

    def test_disk_hit_survives_new_instance(self, tmp_path):
        first = CharacterizationCache(cache_dir=tmp_path)
        key = first.key("simulate", 42)
        first.put(key, {"energy_j": 703.042148974})
        second = CharacterizationCache(cache_dir=tmp_path)
        assert second.get(key) == {"energy_j": 703.042148974}

    def test_float_survives_disk_bit_exact(self, tmp_path):
        value = 0.1 + 0.2  # famously not 0.3
        cache = CharacterizationCache(cache_dir=tmp_path)
        cache.put("k", {"v": value})
        rebuilt = CharacterizationCache(cache_dir=tmp_path)
        assert rebuilt.get("k")["v"] == value

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = CharacterizationCache(cache_dir=tmp_path)
        cache.put("bad", {"v": 1})
        (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
        fresh = CharacterizationCache(cache_dir=tmp_path)
        assert fresh.get("bad") is None
        assert fresh.disk_errors == 1
        # recompute-and-overwrite heals the entry
        fresh.put("bad", {"v": 2})
        assert CharacterizationCache(cache_dir=tmp_path).get("bad") == {"v": 2}

    def test_wrong_format_tag_is_a_miss(self, tmp_path):
        cache = CharacterizationCache(cache_dir=tmp_path)
        (tmp_path / "k.json").write_text(
            json.dumps({"format": "other.v9", "payload": {"v": 1}}),
            encoding="utf-8",
        )
        assert cache.get("k") is None
        assert cache.disk_errors == 1

    def test_unwritable_disk_never_fails_put(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory", encoding="utf-8")
        cache = CharacterizationCache(cache_dir=target)
        cache.put("k", {"v": 1})  # must not raise
        assert cache.get("k") == {"v": 1}  # memory tier still works
        assert cache.disk_errors == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CharacterizationCache(max_entries=0)


class TestGlobalActivation:
    def teardown_method(self):
        deactivate_cache()

    def test_activate_and_deactivate(self):
        assert active_cache() is None
        cache = activate_cache(max_entries=8)
        assert active_cache() is cache
        deactivate_cache()
        assert active_cache() is None

    def test_activate_existing_instance(self):
        mine = CharacterizationCache(max_entries=2)
        assert activate_cache(mine) is mine
        assert active_cache() is mine
