"""Unit tests for JSON serialization of stack artefacts."""

import json

import numpy as np
import pytest

from repro.characterization.budgets import PowerBudgets, derive_budgets
from repro.io.serialize import (
    budgets_from_dict,
    budgets_to_dict,
    characterization_from_dict,
    characterization_to_dict,
    load_characterization,
    save_characterization,
    save_grid_results,
)
from tests.unit.test_policies_basic import make_char


@pytest.fixture()
def char():
    return make_char(
        monitor=[230, 210, 190, 170],
        needed=[230, 180, 160, 150],
        boundaries=[0, 2, 4],
    )


class TestCharacterizationRoundtrip:
    def test_dict_roundtrip(self, char):
        rebuilt = characterization_from_dict(characterization_to_dict(char))
        np.testing.assert_array_equal(rebuilt.monitor_power_w, char.monitor_power_w)
        np.testing.assert_array_equal(rebuilt.needed_power_w, char.needed_power_w)
        np.testing.assert_array_equal(rebuilt.job_boundaries, char.job_boundaries)
        assert rebuilt.mix_name == char.mix_name

    def test_file_roundtrip(self, char, tmp_path):
        path = save_characterization(char, tmp_path / "char.json")
        rebuilt = load_characterization(path)
        np.testing.assert_array_equal(rebuilt.needed_cap_w, char.needed_cap_w)

    def test_json_is_valid(self, char, tmp_path):
        path = save_characterization(char, tmp_path / "char.json")
        data = json.loads(path.read_text())
        assert data["format"] == "repro.mix-characterization.v1"

    def test_wrong_format_rejected(self, char):
        data = characterization_to_dict(char)
        data["format"] = "something.else.v9"
        with pytest.raises(ValueError, match="unsupported characterization"):
            characterization_from_dict(data)

    def test_roundtrip_feeds_policies(self, char):
        """A deserialized characterization produces bit-identical policy
        allocations — the cacheability guarantee."""
        from repro.core.registry import create_policy

        rebuilt = characterization_from_dict(characterization_to_dict(char))
        policy = create_policy("MixedAdaptive")
        a = policy.allocate(char, 760.0)
        b = policy.allocate(rebuilt, 760.0)
        np.testing.assert_array_equal(a.caps_w, b.caps_w)

    def test_derived_budgets_survive_roundtrip(self, char):
        rebuilt = characterization_from_dict(characterization_to_dict(char))
        assert derive_budgets(rebuilt).by_level() == derive_budgets(char).by_level()


class TestBudgetsRoundtrip:
    def test_roundtrip(self):
        budgets = PowerBudgets("m", 100.0, 150.0, 200.0, 240.0)
        rebuilt = budgets_from_dict(budgets_to_dict(budgets))
        assert rebuilt == budgets

    def test_wrong_format_rejected(self):
        data = budgets_to_dict(PowerBudgets("m", 1.0, 2.0, 3.0, 4.0))
        data["format"] = "nope"
        with pytest.raises(ValueError, match="unsupported budgets"):
            budgets_from_dict(data)


class TestGridExport:
    def test_save_grid_results(self, small_grid, tmp_path):
        results = small_grid.run_all(mixes=["LowPower"], levels=["ideal"])
        path = save_grid_results(results, tmp_path / "grid.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 5  # header + five policies
        assert "LowPower" in lines[1]


def _run_result():
    """A small MixRunResult with awkward float values (simulated noise)."""
    from repro.sim.results import MixRunResult

    rng = np.random.default_rng(11)
    iteration_times = rng.uniform(0.01, 0.2, size=(5, 4))
    host_energy = rng.uniform(50.0, 900.0, size=4)
    return MixRunResult(
        mix_name="RoundTrip",
        policy_name="MixedAdaptive",
        budget_w=0.1 + 0.2,  # deliberately not representable as 0.3
        job_names=("j0", "j1"),
        iteration_times_s=iteration_times,
        iteration_energy_j=rng.uniform(10.0, 40.0, size=5),
        host_energy_j=host_energy,
        host_mean_power_w=host_energy / iteration_times.sum(axis=0),
        host_job_index=np.array([0, 0, 1, 1]),
        total_gflop=1234.5678,
    )


class TestResultRoundtrip:
    """Bit-exactness through dict and JSON-file forms.

    This is the guarantee the characterization cache rests on: a result
    decoded from the disk store must compare equal — exact float bits,
    exact array contents — to the freshly computed one.
    """

    def test_dict_roundtrip_is_equal(self):
        from repro.io.serialize import result_from_dict, result_to_dict

        original = _run_result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt == original  # MixRunResult.__eq__ is bit-exact

    def test_json_file_roundtrip_is_equal(self, tmp_path):
        from repro.io.serialize import load_result, save_result

        original = _run_result()
        path = save_result(original, tmp_path / "result.json")
        rebuilt = load_result(path)
        assert rebuilt == original
        assert rebuilt.budget_w == 0.1 + 0.2  # float bits survived repr

    def test_dtypes_restored(self):
        from repro.io.serialize import result_from_dict, result_to_dict

        rebuilt = result_from_dict(result_to_dict(_run_result()))
        assert rebuilt.host_job_index.dtype.kind == "i"
        assert rebuilt.iteration_times_s.dtype == np.float64
        assert isinstance(rebuilt.job_names, tuple)

    def test_wrong_format_rejected(self):
        from repro.io.serialize import result_from_dict, result_to_dict

        data = result_to_dict(_run_result())
        data["format"] = "nope.v0"
        with pytest.raises(ValueError, match="unsupported"):
            result_from_dict(data)

    def test_equality_is_sensitive_to_a_single_bit(self):
        import dataclasses as _dc

        original = _run_result()
        nudged = _dc.replace(
            original,
            budget_w=np.nextafter(original.budget_w, np.inf),
        )
        assert original == original
        assert original != nudged

    def test_equality_ignores_other_types(self):
        assert _run_result() != "not a result"
