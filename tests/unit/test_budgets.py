"""Unit tests for Table III budget derivation."""

import numpy as np
import pytest

from repro.characterization.budgets import PowerBudgets, derive_budgets
from repro.characterization.mix_characterization import MixCharacterization


def _char(monitor, needed, boundaries=None):
    monitor = np.asarray(monitor, dtype=float)
    needed = np.asarray(needed, dtype=float)
    boundaries = (
        np.asarray(boundaries)
        if boundaries is not None
        else np.array([0, monitor.size])
    )
    return MixCharacterization(
        mix_name="m",
        job_boundaries=boundaries,
        monitor_power_w=monitor,
        needed_power_w=needed,
        needed_cap_w=np.clip(needed, 136.0, 240.0),
        min_cap_w=136.0,
        tdp_w=240.0,
    )


class TestPowerBudgets:
    def test_rejects_unordered(self):
        with pytest.raises(ValueError, match="ordered"):
            PowerBudgets(mix_name="m", min_w=200.0, ideal_w=150.0, max_w=300.0,
                         total_tdp_w=400.0)

    def test_by_level(self):
        b = PowerBudgets("m", 100.0, 150.0, 200.0, 240.0)
        assert b.by_level() == {"min": 100.0, "ideal": 150.0, "max": 200.0}

    def test_kilowatts(self):
        b = PowerBudgets("m", 100_000.0, 150_000.0, 200_000.0, 216_000.0)
        kw = b.as_kilowatts()
        assert kw["min"] == pytest.approx(100.0)
        assert kw["tdp"] == pytest.approx(216.0)


class TestDerivation:
    def test_min_rule(self):
        """min = least per-host needed power, provisioned for every node."""
        char = _char(monitor=[230, 210, 220, 200], needed=[200, 180, 160, 150],
                     boundaries=[0, 2, 4])
        budgets = derive_budgets(char)
        assert budgets.min_w == pytest.approx(150.0 * 4)

    def test_max_rule(self):
        """max = most power-hungry observed node, provisioned for every node."""
        char = _char(monitor=[230, 210, 220, 200], needed=[200, 180, 160, 150],
                     boundaries=[0, 2, 4])
        budgets = derive_budgets(char)
        assert budgets.max_w == pytest.approx(230.0 * 4)

    def test_ideal_rule(self):
        char = _char(monitor=[230, 210], needed=[200, 180])
        budgets = derive_budgets(char)
        assert budgets.ideal_w == pytest.approx(380.0)

    def test_ordering_holds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            monitor = rng.uniform(180, 240, size=12)
            needed = monitor - rng.uniform(0, 40, size=12)
            char = _char(monitor, needed, boundaries=[0, 4, 8, 12])
            b = derive_budgets(char)
            assert b.min_w <= b.ideal_w <= b.max_w

    def test_tdp_footnote(self):
        char = _char(monitor=[230, 210], needed=[200, 180])
        assert derive_budgets(char).total_tdp_w == pytest.approx(480.0)

    def test_balanced_mix_min_equals_cheapest_node(self):
        """With needed == monitor, min is set by the cheapest node."""
        char = _char(monitor=[190, 210, 230], needed=[190, 210, 230],
                     boundaries=[0, 1, 2, 3])
        assert derive_budgets(char).min_w == pytest.approx(190.0 * 3)
