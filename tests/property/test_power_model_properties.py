"""Property-based tests: socket power-model invariants.

The policies assume monotone, invertible physics; hypothesis hammers the
model across the whole parameter space to guarantee it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cpu import QUARTZ_CPU, SocketPowerModel

MODEL = SocketPowerModel(QUARTZ_CPU)

freqs = st.floats(QUARTZ_CPU.min_freq_ghz, QUARTZ_CPU.turbo_freq_ghz,
                  allow_nan=False)
kappas = st.floats(0.5, 1.0, allow_nan=False)
effs = st.floats(0.85, 1.15, allow_nan=False)
powers = st.floats(20.0, 130.0, allow_nan=False)


class TestForwardMap:
    @given(f=freqs, k=kappas, e=effs)
    @settings(max_examples=300, deadline=None)
    def test_power_above_uncore(self, f, k, e):
        assert MODEL.power_at(f, k, e) > QUARTZ_CPU.uncore_power_w

    @given(f1=freqs, f2=freqs, k=kappas, e=effs)
    @settings(max_examples=300, deadline=None)
    def test_monotone_in_frequency(self, f1, f2, k, e):
        if f1 + 1e-9 < f2:
            assert MODEL.power_at(f1, k, e) < MODEL.power_at(f2, k, e)

    @given(f=freqs, k1=kappas, k2=kappas, e=effs)
    @settings(max_examples=300, deadline=None)
    def test_monotone_in_activity(self, f, k1, k2, e):
        if k1 + 1e-9 < k2:
            assert MODEL.power_at(f, k1, e) < MODEL.power_at(f, k2, e)


class TestInverseMap:
    @given(f=freqs, k=kappas, e=effs)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip(self, f, k, e):
        """freq -> power -> freq is the identity inside the DVFS band."""
        p = MODEL.power_at(f, k, e)
        back = MODEL.freq_at_power(p, k, e)
        assert back == pytest.approx(f, rel=1e-9)

    @given(p1=powers, p2=powers, k=kappas, e=effs)
    @settings(max_examples=300, deadline=None)
    def test_monotone_in_power(self, p1, p2, k, e):
        if p1 < p2:
            f1 = MODEL.freq_at_power(p1, k, e)
            f2 = MODEL.freq_at_power(p2, k, e)
            assert f1 <= f2 + 1e-12

    @given(p=powers, k=kappas, e=effs)
    @settings(max_examples=300, deadline=None)
    def test_frequency_in_band(self, p, k, e):
        f = MODEL.freq_at_power(p, k, e)
        assert QUARTZ_CPU.min_freq_ghz <= f <= QUARTZ_CPU.turbo_freq_ghz

    @given(p=powers, k=kappas, e=effs)
    @settings(max_examples=300, deadline=None)
    def test_consumption_never_exceeds_cap_in_band(self, p, k, e):
        """When the inverse map lands strictly inside the DVFS band, the
        consumption at that frequency equals the cap."""
        f = MODEL.freq_at_power(p, k, e)
        if QUARTZ_CPU.min_freq_ghz < f < QUARTZ_CPU.turbo_freq_ghz:
            assert MODEL.power_at(f, k, e) == pytest.approx(p, rel=1e-9)
        elif f == QUARTZ_CPU.turbo_freq_ghz:
            assert MODEL.power_at(f, k, e) <= p + 1e-9


class TestDerived:
    @given(k=kappas, e=effs)
    @settings(max_examples=200, deadline=None)
    def test_uncapped_at_most_tdp(self, k, e):
        assert MODEL.uncapped_power(k, e) <= QUARTZ_CPU.tdp_w + 1e-9

    @given(k=kappas, e=effs)
    @settings(max_examples=200, deadline=None)
    def test_floor_power_at_most_floor_cap(self, k, e):
        assert MODEL.floor_power(k, e) <= QUARTZ_CPU.min_rapl_w + 1e-9

    @given(k=kappas, e1=effs, e2=effs)
    @settings(max_examples=200, deadline=None)
    def test_inefficiency_lowers_capped_frequency(self, k, e1, e2):
        if e1 < e2:
            f1 = MODEL.freq_at_power(70.0, k, e1)
            f2 = MODEL.freq_at_power(70.0, k, e2)
            assert f1 >= f2 - 1e-12
