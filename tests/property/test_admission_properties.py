"""Property-based tests: admission-control invariants over random queues."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manager.admission import PowerAwareAdmission
from repro.manager.queue import JobQueue, JobRequest
from repro.workload.kernel import KernelConfig


@st.composite
def queues(draw):
    """A random queue of 1-8 hinted jobs."""
    count = draw(st.integers(1, 8))
    queue = JobQueue()
    for i in range(count):
        queue.submit(
            JobRequest(
                name=f"job-{i}",
                config=KernelConfig(intensity=8.0),
                node_count=draw(st.integers(1, 12)),
                power_hint_w=draw(st.floats(140.0, 240.0, allow_nan=False)),
            )
        )
    return queue


budgets = st.floats(200.0, 20000.0, allow_nan=False)
node_pools = st.integers(0, 40)
backfills = st.booleans()


class TestAdmissionInvariants:
    @given(queue=queues(), budget=budgets, nodes=node_pools, backfill=backfills)
    @settings(max_examples=200, deadline=None)
    def test_power_budget_respected(self, queue, budget, nodes, backfill):
        decision = PowerAwareAdmission(backfill=backfill).decide(
            queue, budget, nodes, mark=False
        )
        assert decision.admitted_power_w <= budget + 1e-6
        assert decision.feasible()

    @given(queue=queues(), budget=budgets, nodes=node_pools, backfill=backfills)
    @settings(max_examples=200, deadline=None)
    def test_node_pool_respected(self, queue, budget, nodes, backfill):
        decision = PowerAwareAdmission(backfill=backfill).decide(
            queue, budget, nodes, mark=False
        )
        assert decision.admitted_nodes <= nodes

    @given(queue=queues(), budget=budgets, nodes=node_pools, backfill=backfills)
    @settings(max_examples=200, deadline=None)
    def test_partition_complete(self, queue, budget, nodes, backfill):
        """Every pending job is either admitted or deferred, never both."""
        decision = PowerAwareAdmission(backfill=backfill).decide(
            queue, budget, nodes, mark=False
        )
        admitted = set(decision.admitted)
        deferred = set(decision.deferred)
        pending = {r.name for r in queue.pending()}
        assert admitted | deferred == pending
        assert not admitted & deferred

    @given(queue=queues(), budget=budgets, nodes=node_pools)
    @settings(max_examples=150, deadline=None)
    def test_backfill_admits_superset_power(self, queue, budget, nodes):
        """Backfill never admits less total work than strict FIFO."""
        fifo = PowerAwareAdmission(backfill=False).decide(
            queue, budget, nodes, mark=False
        )
        easy = PowerAwareAdmission(backfill=True).decide(
            queue, budget, nodes, mark=False
        )
        assert len(easy.admitted) >= len(fifo.admitted)
        # FIFO's admitted prefix is preserved by backfill.
        assert set(fifo.admitted) <= set(easy.admitted)

    @given(queue=queues(), budget=budgets, nodes=node_pools)
    @settings(max_examples=150, deadline=None)
    def test_fifo_stops_at_first_blocker(self, queue, budget, nodes):
        """Strict FIFO admissions form a prefix of the queue order."""
        decision = PowerAwareAdmission(backfill=False).decide(
            queue, budget, nodes, mark=False
        )
        order = [r.name for r in queue.pending()]
        prefix = order[: len(decision.admitted)]
        assert list(decision.admitted) == prefix
