"""Property-based tests: a fault-free ``FaultSchedule`` changes nothing.

The fault subsystem's bit-identity contract: attaching an *empty*
schedule (or an active schedule whose engine slice is empty) to
``simulate_mix`` / ``simulate_cap_batch`` must reproduce the fault-free
run exactly — ``MixRunResult.__eq__`` is bitwise array equality, so
these assert with ``==``.  A second group pins algebraic properties of
the schedule queries themselves across random schedules.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import FaultKind, FaultSchedule, random_schedule
from repro.sim.batch import simulate_cap_batch
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import INTENSITY_GRID, KernelConfig


@st.composite
def kernel_configs(draw):
    intensity = draw(st.sampled_from(INTENSITY_GRID))
    if draw(st.booleans()):
        waiting = draw(st.sampled_from([0.25, 0.5, 0.75]))
        imbalance = draw(st.sampled_from([2, 3]))
    else:
        waiting, imbalance = 0.0, 1
    return KernelConfig(
        intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
    )


@st.composite
def sim_cases(draw):
    """A mix (1-3 jobs), caps, efficiencies, and simulation options."""
    n_jobs = draw(st.integers(1, 3))
    jobs = tuple(
        Job(
            name=f"j{i}",
            config=draw(kernel_configs()),
            node_count=draw(st.integers(1, 4)),
            iterations=draw(st.integers(1, 4)),
        )
        for i in range(n_jobs)
    )
    iters = min(j.iterations for j in jobs)
    jobs = tuple(dataclasses.replace(j, iterations=iters) for j in jobs)
    mix = WorkloadMix(name="fault-prop", jobs=jobs)
    hosts = mix.total_nodes
    caps = np.array(
        draw(
            st.lists(
                st.floats(140.0, 240.0, allow_nan=False),
                min_size=hosts, max_size=hosts,
            )
        )
    )
    effs = np.array(
        draw(
            st.lists(
                st.floats(0.85, 1.15, allow_nan=False),
                min_size=hosts, max_size=hosts,
            )
        )
    )
    noise_std = draw(st.sampled_from([0.0, 0.008, 0.02]))
    options = SimulationOptions(
        noise_std=noise_std, seed=draw(st.integers(0, 99))
    )
    return mix, caps, effs, options


@st.composite
def fault_schedules(draw):
    return random_schedule(
        duration_s=draw(st.floats(10.0, 500.0, allow_nan=False)),
        host_count=draw(st.integers(1, 32)),
        base_budget_w=draw(st.floats(500.0, 20000.0, allow_nan=False)),
        events=draw(st.integers(1, 8)),
        seed=draw(st.integers(0, 2**31 - 1)),
    )


class TestFaultFreeBitIdentity:
    @given(case=sim_cases())
    @settings(max_examples=40, deadline=None)
    def test_empty_schedule_equals_none(self, case):
        mix, caps, effs, options = case
        plain = simulate_mix(mix, caps, effs, options=options)
        attached = simulate_mix(
            mix, caps, effs,
            options=dataclasses.replace(
                options, fault_schedule=FaultSchedule()
            ),
        )
        assert attached == plain

    @given(case=sim_cases())
    @settings(max_examples=20, deadline=None)
    def test_empty_engine_slice_equals_none(self, case):
        """Manager-level faults (budget drops, node failures) carry no
        engine events; their ``engine_slice`` is None and the run must be
        untouched even though the parent schedule is active."""
        mix, caps, effs, options = case
        schedule = (FaultSchedule(name="manager-only")
                    .budget_drop(5.0, 1000.0)
                    .node_failure(8.0, (0,))
                    .node_recovery(18.0, (0,)))
        sliced = schedule.engine_slice(0.0)
        assert sliced is None
        plain = simulate_mix(mix, caps, effs, options=options)
        attached = simulate_mix(
            mix, caps, effs,
            options=dataclasses.replace(options, fault_schedule=sliced),
        )
        assert attached == plain

    @given(case=sim_cases())
    @settings(max_examples=20, deadline=None)
    def test_batch_rows_unchanged_by_empty_schedule(self, case):
        mix, caps, effs, options = case
        scenarios = np.vstack([caps, np.minimum(caps + 10.0, 240.0)])
        plain = simulate_cap_batch(mix, scenarios, effs, options=options)
        attached = simulate_cap_batch(
            mix, scenarios, effs,
            options=dataclasses.replace(
                options, fault_schedule=FaultSchedule()
            ),
        )
        assert list(attached) == list(plain)


class TestSiteSimulationBitIdentity:
    @given(run_seed=st.integers(0, 2**16),
           noise_std=st.sampled_from([0.0, 0.004, 0.01]),
           jobs=st.integers(2, 4))
    @settings(max_examples=8, deadline=None)
    def test_empty_schedule_equals_none(self, run_seed, noise_std, jobs):
        from repro.core.registry import create_policy
        from repro.experiments.resilience import (
            _fresh_arrivals,
            standard_arrivals,
        )
        from repro.hardware.cluster import Cluster
        from repro.manager.site_simulation import run_site_simulation

        arrivals = standard_arrivals(jobs, nodes_per_job=2, iterations=4)
        cluster = Cluster(node_count=6, variation=None, seed=11)
        policy = create_policy("MixedAdaptive")
        budget_w = 0.9 * len(cluster) * 240.0
        plain = run_site_simulation(
            _fresh_arrivals(arrivals), cluster, policy, budget_w,
            noise_std=noise_std, run_seed=run_seed,
        )
        attached = run_site_simulation(
            _fresh_arrivals(arrivals), cluster, policy, budget_w,
            noise_std=noise_std, run_seed=run_seed,
            fault_schedule=FaultSchedule(),
        )
        assert attached == plain


class TestScheduleQueryProperties:
    @given(schedule=fault_schedules(),
           t=st.floats(0.0, 600.0, allow_nan=False),
           base=st.floats(500.0, 20000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_budget_at_is_positive_and_bounded_by_events(self, schedule, t,
                                                         base):
        budget = schedule.budget_at(t, base)
        floor = min(
            [base] + [e.budget_w for e in schedule.events
                      if e.kind is FaultKind.BUDGET_CHANGE]
        )
        ceiling = max(
            [base] + [e.budget_w for e in schedule.events
                      if e.kind is FaultKind.BUDGET_CHANGE]
        )
        assert floor - 1e-9 <= budget <= ceiling + 1e-9

    @given(schedule=fault_schedules(),
           t=st.floats(0.0, 600.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_failed_hosts_subset_of_failure_events(self, schedule, t):
        failed = schedule.failed_hosts_at(t)
        mentioned = {
            h for e in schedule.of_kind(FaultKind.NODE_FAILURE)
            for h in e.host_ids
        }
        assert failed <= mentioned

    @given(schedule=fault_schedules(),
           dt=st.floats(-100.0, 100.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_shifted_preserves_order_and_nonnegative_times(self, schedule,
                                                           dt):
        moved = schedule.shifted(dt)
        times = [e.time_s for e in moved.events]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    @given(schedule=fault_schedules(),
           start=st.floats(0.0, 600.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_engine_slice_contains_only_engine_kinds(self, schedule, start):
        from repro.faults.schedule import ENGINE_KINDS

        sliced = schedule.engine_slice(start)
        if sliced is None:
            return
        assert sliced.active
        assert all(e.kind in ENGINE_KINDS for e in sliced.events)

    @given(schedule=fault_schedules(),
           t=st.floats(0.0, 600.0, allow_nan=False),
           base=st.floats(0.0, 0.05, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_noise_sigma_never_below_base(self, schedule, t, base):
        assert schedule.noise_sigma_at(t, base) >= base


# ----------------------------------------------------------------------
# bisect fast paths vs the reference linear scans
# ----------------------------------------------------------------------
def _scan_budget_at(schedule, time_s, base_budget_w):
    """The original O(E) linear scan ``budget_at`` (reference)."""
    budget = float(base_budget_w)
    for event in schedule.of_kind(FaultKind.BUDGET_CHANGE):
        if time_s < event.time_s:
            break
        if event.duration_s > 0 and time_s < event.end_s:
            frac = (time_s - event.time_s) / event.duration_s
            budget = budget + frac * (event.budget_w - budget)
        else:
            budget = float(event.budget_w)
    return budget


def _scan_failed_hosts_at(schedule, time_s):
    """The original O(E) linear scan ``failed_hosts_at`` (reference)."""
    failed = set()
    for event in schedule.events:
        if event.time_s > time_s:
            break
        if event.kind is FaultKind.NODE_FAILURE:
            failed.update(event.host_ids)
        elif event.kind is FaultKind.NODE_RECOVERY:
            failed.difference_update(event.host_ids)
    return frozenset(failed)


def _scan_sensor_dropout_at(schedule, time_s):
    """The original O(E) linear filter ``sensor_dropout_at`` (reference)."""
    return tuple(
        e for e in schedule.of_kind(FaultKind.SENSOR_DROPOUT)
        if e.time_s <= time_s < e.end_s
    )


def _query_times(schedule, draw_times):
    """Fuzzed query instants plus every exact boundary of the schedule
    (the off-by-one hot spots of any bisect)."""
    times = list(draw_times)
    for event in schedule.events:
        times.append(event.time_s)
        if np.isfinite(event.end_s):
            times.append(event.end_s)
            times.append(np.nextafter(event.end_s, -np.inf))
        times.append(np.nextafter(event.time_s, np.inf))
    return times


class TestScheduleFastPathBitIdentity:
    """The bisect/prefix fast paths must be bit-identical to the scans."""

    @given(schedule=fault_schedules(),
           draw_times=st.lists(st.floats(0.0, 700.0, allow_nan=False),
                               min_size=1, max_size=8),
           base=st.floats(500.0, 20000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_budget_at_matches_scan(self, schedule, draw_times, base):
        for t in _query_times(schedule, draw_times):
            assert schedule.budget_at(t, base) == \
                _scan_budget_at(schedule, t, base)

    @given(schedule=fault_schedules(),
           draw_times=st.lists(st.floats(0.0, 700.0, allow_nan=False),
                               min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_failed_hosts_at_matches_scan(self, schedule, draw_times):
        for t in _query_times(schedule, draw_times):
            assert schedule.failed_hosts_at(t) == \
                _scan_failed_hosts_at(schedule, t)

    @given(schedule=fault_schedules(),
           draw_times=st.lists(st.floats(0.0, 700.0, allow_nan=False),
                               min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_sensor_dropout_at_matches_scan(self, schedule, draw_times):
        for t in _query_times(schedule, draw_times):
            assert schedule.sensor_dropout_at(t) == \
                _scan_sensor_dropout_at(schedule, t)

    @given(base=st.floats(500.0, 20000.0, allow_nan=False),
           t=st.floats(0.0, 200.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_budget_at_overlapping_ramps_match_scan(self, base, t):
        # Hand-built worst case: chained, overlapping ramps with a step
        # in the middle — the in-flight-ramp replay after the last
        # completed change must interpolate exactly like the scan.
        schedule = (FaultSchedule()
                    .budget_drop(10.0, 4000.0, ramp_s=60.0)
                    .budget_drop(30.0, 9000.0, ramp_s=100.0)
                    .budget_drop(50.0, 6000.0)
                    .budget_drop(55.0, 7000.0, ramp_s=80.0)
                    .budget_drop(60.0, 5000.0, ramp_s=90.0))
        assert schedule.budget_at(t, base) == \
            _scan_budget_at(schedule, t, base)

    @given(schedule=fault_schedules(), dt=st.floats(-50.0, 50.0,
                                                    allow_nan=False),
           t=st.floats(0.0, 700.0, allow_nan=False),
           base=st.floats(500.0, 20000.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_derived_schedules_rebuild_their_indices(self, schedule, dt, t,
                                                     base):
        # Warm the parent's lazy indices, then derive: the child must
        # answer from its own (rebuilt) indices, not stale parent state.
        schedule.budget_at(t, base)
        schedule.failed_hosts_at(t)
        moved = schedule.shifted(dt)
        assert moved.budget_at(t, base) == _scan_budget_at(moved, t, base)
        assert moved.failed_hosts_at(t) == _scan_failed_hosts_at(moved, t)
