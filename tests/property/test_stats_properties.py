"""Property-based tests: statistics and renderer robustness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.stats import mean_ci95, summarize
from repro.characterization.clustering import kmeans_1d
from repro.workload.facility import moving_average

samples = arrays(
    float,
    st.integers(1, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestStats:
    @given(x=samples)
    @settings(max_examples=200, deadline=None)
    def test_ci_contains_mean(self, x):
        ci = mean_ci95(x)
        assert ci.low <= np.mean(x) <= ci.high

    @given(x=samples)
    @settings(max_examples=200, deadline=None)
    def test_half_width_nonnegative(self, x):
        assert mean_ci95(x).half_width >= 0.0

    @given(x=samples, shift=st.floats(-100.0, 100.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_ci_translation_equivariant(self, x, shift):
        a = mean_ci95(x)
        b = mean_ci95(x + shift)
        np.testing.assert_allclose(b.mean, a.mean + shift, rtol=1e-6, atol=1e-6)
        np.testing.assert_allclose(b.half_width, a.half_width, rtol=1e-6, atol=1e-6)

    @given(x=samples)
    @settings(max_examples=150, deadline=None)
    def test_summary_ordering(self, x):
        s = summarize(x)
        assert s["min"] <= s["median"] <= s["max"]
        # Pairwise summation can push the mean one ulp past an extreme
        # for constant arrays; allow that rounding.
        eps = 1e-9 * max(1.0, abs(s["max"]), abs(s["min"]))
        assert s["min"] - eps <= s["mean"] <= s["max"] + eps


class TestMovingAverage:
    @given(
        x=arrays(float, st.integers(1, 300),
                 elements=st.floats(-1e3, 1e3, allow_nan=False)),
        window=st.integers(1, 50),
    )
    @settings(max_examples=150, deadline=None)
    def test_bounded_by_extremes(self, x, window):
        out = moving_average(x, window)
        assert np.all(out >= np.min(x) - 1e-9)
        assert np.all(out <= np.max(x) + 1e-9)

    @given(
        x=arrays(float, st.integers(2, 300),
                 elements=st.floats(-1e3, 1e3, allow_nan=False)),
        window=st.integers(1, 50),
    )
    @settings(max_examples=150, deadline=None)
    def test_length_preserved(self, x, window):
        assert moving_average(x, window).shape == x.shape


class TestKmeans:
    @given(
        x=arrays(float, st.integers(10, 300),
                 elements=st.floats(0.0, 100.0, allow_nan=False)),
        k=st.integers(2, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_labels_and_centroids_consistent(self, x, k):
        if np.unique(x).size < k:
            return  # degenerate data is rejected; covered by unit tests
        labels, centroids = kmeans_1d(x, k=k)
        assert labels.shape == x.shape
        assert np.all(labels >= 0) and np.all(labels < k)
        assert np.all(np.diff(centroids) >= 0)

    @given(
        x=arrays(float, st.integers(10, 200),
                 elements=st.floats(0.0, 100.0, allow_nan=False)),
    )
    @settings(max_examples=100, deadline=None)
    def test_each_point_nearest_own_centroid(self, x):
        if np.unique(x).size < 3:
            return
        labels, centroids = kmeans_1d(x, k=3)
        dist_own = np.abs(x - centroids[labels])
        dist_all = np.abs(x[:, None] - centroids[None, :]).min(axis=1)
        np.testing.assert_allclose(dist_own, dist_all, atol=1e-9)
