"""Property-based tests: batched scenario evaluation == serial, bitwise.

The batched engine's whole contract is that ``simulate_cap_batch`` row
``s`` is *bit-identical* — not merely close — to the corresponding serial
``simulate_mix`` call.  ``MixRunResult.__eq__`` is exact bitwise array
equality, so these tests assert with ``==`` across random cap matrices,
noise levels (including the noise-free path), scenario counts (including
S=1), and mix shapes (including single-job mixes).
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.batch import simulate_cap_batch
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import INTENSITY_GRID, KernelConfig


@st.composite
def kernel_configs(draw):
    intensity = draw(st.sampled_from(INTENSITY_GRID))
    if draw(st.booleans()):
        waiting = draw(st.sampled_from([0.25, 0.5, 0.75]))
        imbalance = draw(st.sampled_from([2, 3]))
    else:
        waiting, imbalance = 0.0, 1
    return KernelConfig(
        intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
    )


@st.composite
def batch_cases(draw):
    """A mix (1-3 jobs), an (S, hosts) cap matrix, seeds, and options."""
    n_jobs = draw(st.integers(1, 3))
    jobs = tuple(
        Job(
            name=f"j{i}",
            config=draw(kernel_configs()),
            node_count=draw(st.integers(1, 5)),
            iterations=draw(st.integers(1, 4)),
        )
        for i in range(n_jobs)
    )
    iters = min(j.iterations for j in jobs)
    jobs = tuple(dataclasses.replace(j, iterations=iters) for j in jobs)
    mix = WorkloadMix(name="batch-prop", jobs=jobs)
    hosts = mix.total_nodes
    scenarios = draw(st.integers(1, 5))
    caps = np.array(
        draw(
            st.lists(
                st.lists(
                    st.floats(100.0, 260.0, allow_nan=False),
                    min_size=hosts, max_size=hosts,
                ),
                min_size=scenarios, max_size=scenarios,
            )
        )
    )
    effs = np.array(
        draw(
            st.lists(
                st.floats(0.85, 1.15, allow_nan=False),
                min_size=hosts, max_size=hosts,
            )
        )
    )
    noise_std = draw(st.sampled_from([0.0, 0.008, 0.02]))
    seeds = draw(
        st.lists(
            st.integers(0, 2**32 - 1),
            min_size=scenarios, max_size=scenarios,
        )
    )
    options = SimulationOptions(noise_std=noise_std, seed=draw(st.integers(0, 99)))
    return mix, caps, effs, options, seeds


class TestBatchedEqualsSerial:
    @given(case=batch_cases())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_with_explicit_seeds(self, case):
        mix, caps, effs, options, seeds = case
        batch = simulate_cap_batch(mix, caps, effs, options=options, seeds=seeds)
        for s in range(caps.shape[0]):
            serial = simulate_mix(
                mix, caps[s], effs,
                options=dataclasses.replace(options, seed=seeds[s]),
            )
            assert batch[s] == serial

    @given(case=batch_cases())
    @settings(max_examples=30, deadline=None)
    def test_default_seeds_replicate_options_seed(self, case):
        mix, caps, effs, options, _ = case
        batch = simulate_cap_batch(mix, caps, effs, options=options)
        for s in range(caps.shape[0]):
            assert batch[s] == simulate_mix(mix, caps[s], effs, options=options)

    @given(case=batch_cases())
    @settings(max_examples=30, deadline=None)
    def test_metadata_rows_carry_through(self, case):
        mix, caps, effs, options, seeds = case
        scenarios = caps.shape[0]
        names = [f"policy-{s}" for s in range(scenarios)]
        budgets = [float(100 + s) for s in range(scenarios)]
        batch = simulate_cap_batch(
            mix, caps, effs, options=options, seeds=seeds,
            policy_names=names, budgets_w=budgets,
        )
        for s, result in enumerate(batch):
            assert result.policy_name == names[s]
            assert result.budget_w == budgets[s]
            assert result.mix_name == mix.name
