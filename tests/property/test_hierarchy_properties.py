"""Property-based determinism contracts of the facility hierarchy.

Two contracts, both asserted with ``==`` (every result field is a
tuple / float / dict of floats, so equality is bitwise):

* **Degenerate identity** — a one-cluster facility under a constant
  budget composes an empty leaf schedule and must be bit-identical to a
  plain :func:`run_site_simulation` of the same arrivals, cluster,
  policy, and seed.
* **Shard invariance** — the facility result is bit-identical whether
  the leaf clusters run serially (``workers=1``) or across a process
  pool (``workers=2``), across broker policies, seeds, and fault
  schedules: the budget plan is open loop and leaf tasks are pure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import create_policy
from repro.faults.schedule import FaultSchedule, random_schedule
from repro.hierarchy import (
    ClusterSpec,
    FacilityConfig,
    build_cluster,
    cluster_arrivals,
    run_facility_simulation,
)
from repro.manager.site_simulation import run_site_simulation
from repro.parallel.seeding import child_seed


@st.composite
def cluster_specs(draw, index: int = 0,
                  with_faults: bool = False) -> ClusterSpec:
    schedule = None
    if with_faults and draw(st.booleans()):
        schedule = random_schedule(
            duration_s=40.0,
            host_count=8,
            base_budget_w=8 * 200.0,
            events=draw(st.integers(1, 3)),
            seed=draw(st.integers(0, 2**16)),
        )
    return ClusterSpec(
        name=f"cluster-{index}",
        node_count=8,
        racks=draw(st.sampled_from([1, 2, 4])),
        nodes_per_job=2,
        jobs=draw(st.integers(2, 4)),
        iterations=draw(st.integers(3, 5)),
        spacing_s=draw(st.sampled_from([0.5, 1.0, 2.0])),
        weight=float(draw(st.integers(1, 4))),
        priority=draw(st.integers(0, 2)),
        fault_schedule=schedule,
    )


class TestDegenerateIdentity:
    @given(seed=st.integers(0, 2**16),
           budget_fraction=st.sampled_from([0.5, 0.75, 0.95]),
           spec=cluster_specs())
    @settings(max_examples=10, deadline=None)
    def test_one_cluster_equals_plain_site_simulation(
        self, seed, budget_fraction, spec,
    ):
        budget_w = budget_fraction * spec.node_count * 240.0
        config = FacilityConfig(
            clusters=(spec,), budget_w=budget_w,
            window_s=10.0, horizon_s=40.0, seed=seed,
        )
        facility = run_facility_simulation(config, workers=1)
        plain = run_site_simulation(
            cluster_arrivals(spec),
            build_cluster(spec, config.seed),
            create_policy(config.policy),
            budget_w,
            noise_std=config.noise_std,
            max_batches=config.max_batches,
            run_seed=child_seed(config.seed, "facility-cluster", spec.name),
        )
        assert facility.clusters[0].result == plain
        # The identity holds because a constant budget composes *no*
        # leaf schedule — the guaranteed-no-op path.
        assert facility.clusters[0].allocations_w == \
            (budget_w,) * len(facility.epoch_s)

    @given(seed=st.integers(0, 2**16), spec=cluster_specs())
    @settings(max_examples=5, deadline=None)
    def test_empty_leaf_schedule_equals_attached_empty(self, seed, spec):
        budget_w = 0.8 * spec.node_count * 240.0
        config = FacilityConfig(
            clusters=(spec,), budget_w=budget_w,
            window_s=10.0, horizon_s=40.0, seed=seed,
        )
        facility = run_facility_simulation(config, workers=1)
        attached = run_site_simulation(
            cluster_arrivals(spec),
            build_cluster(spec, config.seed),
            create_policy(config.policy),
            budget_w,
            noise_std=config.noise_std,
            max_batches=config.max_batches,
            run_seed=child_seed(config.seed, "facility-cluster", spec.name),
            fault_schedule=FaultSchedule(),
        )
        assert facility.clusters[0].result == attached


class TestShardInvariance:
    @given(seed=st.integers(0, 2**16),
           broker_policy=st.sampled_from(["uniform", "demand", "priority"]),
           data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_workers_do_not_change_the_result(self, seed, broker_policy,
                                              data):
        n_clusters = data.draw(st.integers(2, 3))
        specs = tuple(
            data.draw(cluster_specs(index=i, with_faults=True))
            for i in range(n_clusters)
        )
        config = FacilityConfig(
            clusters=specs,
            broker_policy=broker_policy,
            budget_w=0.7 * sum(s.node_count for s in specs) * 240.0,
            window_s=10.0, horizon_s=30.0, seed=seed,
        )
        serial = run_facility_simulation(config, workers=1)
        sharded = run_facility_simulation(config, workers=2)
        assert serial == sharded

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=3, deadline=None)
    def test_trace_driven_budgets_shard_identically(self, seed):
        from repro.workload.facility import FacilityTraceConfig

        specs = tuple(
            ClusterSpec(name=f"c{i}", node_count=8, nodes_per_job=2,
                        jobs=3, iterations=4, racks=2,
                        weight=float(1 + i), priority=i)
            for i in range(3)
        )
        config = FacilityConfig(
            clusters=specs, trace=FacilityTraceConfig(days=2),
            window_s=300.0, horizon_s=1200.0, seed=seed,
        )
        serial = run_facility_simulation(config, workers=1)
        sharded = run_facility_simulation(config, workers=2)
        assert serial == sharded
        # The trace varies across five-minute windows, so this case
        # exercises real BUDGET_CHANGE leaf events, not the no-op path.
        assert len(set(serial.budgets_w)) > 1
