"""Property-based identity contract of the fused facility engine.

The tentpole contract: **fused ≡ sharded ≡ workers=1, bit-identical**
(``FacilitySimulationResult.__eq__`` over tuples / floats / dicts of
floats is bitwise), across broker policies × seeds × fault schedules ×
trace-driven budgets — including non-uniform (heterogeneous-efficiency)
clusters, whose staged batches replicate the shift loop's whole-cluster
shuffle draw, and budget-only feeder-dip schedules, which stage through
the batched pipeline with the degradation ladder and compliance
accounting split across stages.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import FaultSchedule, random_schedule
from repro.hierarchy import ClusterSpec, FacilityConfig, run_facility_simulation


@st.composite
def cluster_specs(draw, index: int = 0,
                  with_faults: bool = False) -> ClusterSpec:
    schedule = None
    if with_faults and draw(st.booleans()):
        if draw(st.booleans()):
            # Engine-applicable faults: the fused engine must fall back
            # to the scalar path for this cluster and still agree.
            schedule = random_schedule(
                duration_s=40.0,
                host_count=8,
                base_budget_w=8 * 200.0,
                events=draw(st.integers(1, 3)),
                seed=draw(st.integers(0, 2**16)),
            )
        else:
            # A budget-only feeder dip: stages through the batched
            # pipeline (the facility-leaf shape).
            dip_at = draw(st.sampled_from([5.0, 10.0, 20.0]))
            fraction = draw(st.sampled_from([0.5, 0.7, 0.9]))
            schedule = (
                FaultSchedule(name=f"dip-{index}")
                .budget_drop(dip_at, fraction * 8 * 200.0)
                .budget_restore(dip_at + 10.0, 8 * 240.0)
            )
    return ClusterSpec(
        name=f"cluster-{index}",
        node_count=8,
        racks=draw(st.sampled_from([1, 2, 4])),
        nodes_per_job=2,
        jobs=draw(st.integers(2, 4)),
        iterations=draw(st.integers(3, 5)),
        spacing_s=draw(st.sampled_from([0.5, 1.0, 2.0])),
        uniform=draw(st.booleans()),
        weight=float(draw(st.integers(1, 4))),
        priority=draw(st.integers(0, 2)),
        fault_schedule=schedule,
    )


class TestFusedIdentity:
    @given(seed=st.integers(0, 2**16),
           broker_policy=st.sampled_from(["uniform", "demand", "priority"]),
           data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_fused_equals_sharded_equals_serial(self, seed, broker_policy,
                                                data):
        n_clusters = data.draw(st.integers(2, 3))
        specs = tuple(
            data.draw(cluster_specs(index=i, with_faults=True))
            for i in range(n_clusters)
        )
        config = FacilityConfig(
            clusters=specs,
            broker_policy=broker_policy,
            budget_w=0.7 * sum(s.node_count for s in specs) * 240.0,
            window_s=10.0, horizon_s=30.0, seed=seed,
        )
        serial = run_facility_simulation(config, workers=1)
        sharded = run_facility_simulation(config, workers=2)
        fused = run_facility_simulation(config, engine="fused")
        assert serial == sharded
        assert serial == fused
        assert fused.engine == "fused"
        assert serial.engine == "sharded"

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=3, deadline=None)
    def test_trace_driven_budgets_fuse_identically(self, seed):
        from repro.workload.facility import FacilityTraceConfig

        specs = tuple(
            ClusterSpec(name=f"c{i}", node_count=8, nodes_per_job=2,
                        jobs=3, iterations=4, racks=2,
                        uniform=bool(i % 2),
                        weight=float(1 + i), priority=i)
            for i in range(3)
        )
        config = FacilityConfig(
            clusters=specs, trace=FacilityTraceConfig(days=2),
            window_s=300.0, horizon_s=1200.0, seed=seed,
        )
        serial = run_facility_simulation(config, workers=1)
        fused = run_facility_simulation(config, engine="fused")
        assert serial == fused
        # The trace varies across five-minute windows, so every leaf
        # replays real BUDGET_CHANGE events through the staged pipeline
        # (degradation ladder + compliance accounting), not the no-op
        # fault-free path.
        assert len(set(serial.budgets_w)) > 1
