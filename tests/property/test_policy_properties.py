"""Property-based tests: invariants every policy must satisfy.

Generated characterizations cover arbitrary job structures and power
profiles; the properties are the contract the resource manager relies on.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.registry import POLICY_NAMES, create_policy

FLOOR = 136.0
TDP = 240.0

SYSTEM_AWARE = ("StaticCaps", "MinimizeWaste", "JobAdaptive", "MixedAdaptive")


@st.composite
def characterizations(draw):
    """A random mix characterization with 1-4 jobs of 1-6 hosts each."""
    job_sizes = draw(
        st.lists(st.integers(1, 6), min_size=1, max_size=4)
    )
    boundaries = np.concatenate([[0], np.cumsum(job_sizes)])
    n = int(boundaries[-1])
    monitor = np.array(
        draw(
            st.lists(
                st.floats(150.0, 239.0, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    shave = np.array(
        draw(
            st.lists(st.floats(0.0, 80.0, allow_nan=False), min_size=n, max_size=n)
        )
    )
    needed = np.maximum(monitor - shave, FLOOR)
    needed = np.minimum(needed, monitor)
    return MixCharacterization(
        mix_name="prop",
        job_boundaries=boundaries,
        monitor_power_w=monitor,
        needed_power_w=needed,
        needed_cap_w=np.clip(needed, FLOOR, TDP),
        min_cap_w=FLOOR,
        tdp_w=TDP,
    )


budgets_per_host = st.floats(140.0, 260.0, allow_nan=False)


class TestUniversalInvariants:
    @given(char=characterizations(), per_host=budgets_per_host,
           policy_name=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=300, deadline=None)
    def test_caps_in_rapl_range(self, char, per_host, policy_name):
        alloc = create_policy(policy_name).allocate(char, per_host * char.host_count)
        assert np.all(alloc.caps_w >= FLOOR - 1e-9)
        assert np.all(alloc.caps_w <= TDP + 1e-9)

    @given(char=characterizations(), per_host=budgets_per_host,
           policy_name=st.sampled_from(SYSTEM_AWARE))
    @settings(max_examples=300, deadline=None)
    def test_system_aware_respect_budget(self, char, per_host, policy_name):
        budget = per_host * char.host_count
        alloc = create_policy(policy_name).allocate(char, budget)
        assert alloc.within_budget(tolerance_w=1e-4), policy_name

    @given(char=characterizations(), per_host=budgets_per_host,
           policy_name=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=150, deadline=None)
    def test_deterministic(self, char, per_host, policy_name):
        policy = create_policy(policy_name)
        budget = per_host * char.host_count
        a = policy.allocate(char, budget)
        b = policy.allocate(char, budget)
        np.testing.assert_array_equal(a.caps_w, b.caps_w)

    @given(char=characterizations(), per_host=budgets_per_host)
    @settings(max_examples=150, deadline=None)
    def test_jobadaptive_silo_invariant(self, char, per_host):
        """No job's allocation exceeds its uniform job budget."""
        budget = per_host * char.host_count
        alloc = create_policy("JobAdaptive").allocate(char, budget)
        uniform = budget / char.host_count
        for j in range(char.job_count):
            block = char.job_slice(j)
            hosts = block.stop - block.start
            job_total = float(np.sum(alloc.caps_w[block]))
            # A tiny violation can come from the floor clamp when the
            # uniform share is below the RAPL floor.
            assert job_total <= max(uniform, FLOOR) * hosts + 1e-6

    @given(char=characterizations(), per_host=budgets_per_host)
    @settings(max_examples=150, deadline=None)
    def test_minimize_waste_never_exceeds_observed(self, char, per_host):
        """MinimizeWaste grants are bounded by observed power (or the
        floor, whichever is higher)."""
        budget = per_host * char.host_count
        alloc = create_policy("MinimizeWaste").allocate(char, budget)
        uniform = budget / char.host_count
        bound = np.maximum(np.maximum(char.monitor_power_w, FLOOR), 0)
        # Hosts can also simply keep their uniform share when it is below
        # their observed power.
        assert np.all(alloc.caps_w <= np.maximum(bound, min(uniform, TDP)) + 1e-6)

    @given(char=characterizations(), per_host=budgets_per_host)
    @settings(max_examples=150, deadline=None)
    def test_mixed_dominates_static_on_needed_satisfaction(self, char, per_host):
        """MixedAdaptive leaves no host further from its needed power than
        StaticCaps does, in aggregate shortfall."""
        budget = per_host * char.host_count
        mixed = create_policy("MixedAdaptive").allocate(char, budget)
        static = create_policy("StaticCaps").allocate(char, budget)
        need = char.needed_cap_w
        shortfall_mixed = float(np.sum(np.maximum(need - mixed.caps_w, 0.0)))
        shortfall_static = float(np.sum(np.maximum(need - static.caps_w, 0.0)))
        assert shortfall_mixed <= shortfall_static + 1e-6

    @given(char=characterizations(), p1=budgets_per_host, p2=budgets_per_host)
    @settings(max_examples=150, deadline=None)
    def test_mixed_adaptive_monotone_satisfaction_in_budget(self, char, p1, p2):
        """More budget never increases MixedAdaptive's aggregate needed-
        power shortfall."""
        assume(abs(p1 - p2) > 1e-6)
        lo, hi = sorted((p1, p2))
        policy = create_policy("MixedAdaptive")
        need = char.needed_cap_w
        a = policy.allocate(char, lo * char.host_count)
        b = policy.allocate(char, hi * char.host_count)
        short_a = float(np.sum(np.maximum(need - a.caps_w, 0.0)))
        short_b = float(np.sum(np.maximum(need - b.caps_w, 0.0)))
        assert short_b <= short_a + 1e-6
