"""Property-based tests: characterization invariants over random mixes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization.budgets import derive_budgets
from repro.characterization.mix_characterization import characterize_mix
from repro.sim.engine import ExecutionModel
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import INTENSITY_GRID, KernelConfig

MODEL = ExecutionModel()


@st.composite
def random_mixes(draw):
    """A mix of 1-3 jobs with random grid configurations and sizes."""
    job_count = draw(st.integers(1, 3))
    jobs = []
    for i in range(job_count):
        intensity = draw(st.sampled_from(INTENSITY_GRID))
        imbalanced = draw(st.booleans())
        if imbalanced:
            waiting = draw(st.sampled_from([0.25, 0.5, 0.75]))
            imbalance = draw(st.sampled_from([2, 3]))
        else:
            waiting, imbalance = 0.0, 1
        jobs.append(
            Job(
                name=f"j{i}",
                config=KernelConfig(
                    intensity=intensity,
                    waiting_fraction=waiting,
                    imbalance=imbalance,
                ),
                node_count=draw(st.integers(2, 8)),
            )
        )
    return WorkloadMix(name="prop", jobs=tuple(jobs))


@st.composite
def mix_cases(draw):
    mix = draw(random_mixes())
    eff = np.array(
        draw(
            st.lists(
                st.floats(0.85, 1.15, allow_nan=False),
                min_size=mix.total_nodes,
                max_size=mix.total_nodes,
            )
        )
    )
    harvest = draw(st.sampled_from([0.25, 0.5, 0.75, 1.0]))
    return mix, eff, harvest


class TestCharacterizationInvariants:
    @given(case=mix_cases())
    @settings(max_examples=120, deadline=None)
    def test_needed_never_exceeds_observed(self, case):
        mix, eff, harvest = case
        char = characterize_mix(mix, eff, MODEL, harvest_fraction=harvest)
        assert np.all(char.needed_power_w <= char.monitor_power_w + 1e-9)

    @given(case=mix_cases())
    @settings(max_examples=120, deadline=None)
    def test_powers_physical(self, case):
        mix, eff, harvest = case
        char = characterize_mix(mix, eff, MODEL, harvest_fraction=harvest)
        assert np.all(char.monitor_power_w > 0)
        assert np.all(char.monitor_power_w <= 2 * 240.0)
        assert np.all(char.needed_cap_w >= char.min_cap_w - 1e-9)
        assert np.all(char.needed_cap_w <= char.tdp_w + 1e-9)

    @given(case=mix_cases())
    @settings(max_examples=120, deadline=None)
    def test_critical_hosts_need_their_draw(self, case):
        """Hosts on the critical path always need their full draw."""
        mix, eff, harvest = case
        char = characterize_mix(mix, eff, MODEL, harvest_fraction=harvest)
        layout = mix.layout()
        # The per-job critical path is set by its slowest critical host;
        # that host's needed power equals its observed power.
        for j, job in enumerate(mix.jobs):
            block = char.job_slice(j)
            crit = layout.critical[block.start:block.stop]
            gap = (
                char.monitor_power_w[block][crit]
                - char.needed_power_w[block][crit]
            )
            assert float(np.min(gap)) >= -1e-9
            assert float(np.min(gap)) < 1.0  # someone is pinned

    @given(case=mix_cases())
    @settings(max_examples=120, deadline=None)
    def test_deeper_harvest_needs_less(self, case):
        mix, eff, _ = case
        shallow = characterize_mix(mix, eff, MODEL, harvest_fraction=0.25)
        deep = characterize_mix(mix, eff, MODEL, harvest_fraction=1.0)
        assert np.all(deep.needed_power_w <= shallow.needed_power_w + 1e-9)
        np.testing.assert_allclose(
            deep.monitor_power_w, shallow.monitor_power_w
        )

    @given(case=mix_cases())
    @settings(max_examples=120, deadline=None)
    def test_budget_ordering_always_holds(self, case):
        mix, eff, harvest = case
        char = characterize_mix(mix, eff, MODEL, harvest_fraction=harvest)
        budgets = derive_budgets(char)
        assert budgets.min_w <= budgets.ideal_w <= budgets.max_w
        assert budgets.max_w <= budgets.total_tdp_w + 1e-6

    @given(case=mix_cases())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, case):
        mix, eff, harvest = case
        a = characterize_mix(mix, eff, MODEL, harvest_fraction=harvest)
        b = characterize_mix(mix, eff, MODEL, harvest_fraction=harvest)
        np.testing.assert_array_equal(a.needed_power_w, b.needed_power_w)
        np.testing.assert_array_equal(a.monitor_power_w, b.monitor_power_w)
