"""Property-based tests: the streaming engine replays the batch loop.

The contract the tentpole rests on: feeding the streaming site engine a
pre-built arrival list (fault-free) produces *bit-identical* results to
``run_site_simulation`` — same batch records float for float, same
turnarounds, same energy, same truncation split.  Hypothesis drives
random arrival lists, budgets, policies, and round limits through both
loops and compares the full result objects.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import create_policy
from repro.faults.schedule import FaultSchedule
from repro.hardware.cluster import Cluster
from repro.hardware.variation import QUARTZ_VARIATION
from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival, run_site_simulation
from repro.stream.arrivals import replay_stream
from repro.stream.engine import SiteStreamEngine, stream_site_simulation
from repro.workload.kernel import KernelConfig

CLUSTER = Cluster(node_count=10, variation=None, seed=0)

_INTENSITIES = (0.25, 2.0, 8.0, 32.0)


@st.composite
def arrival_lists(draw):
    """1-7 arrivals with mixed shapes, times, and optional hints."""
    count = draw(st.integers(1, 7))
    # One iteration count per list: jobs co-scheduled into a batch must
    # share it (a WorkloadMix invariant, same as the batch loop).
    iterations = draw(st.integers(5, 15))
    arrivals = []
    for i in range(count):
        hint = draw(st.one_of(
            st.none(), st.floats(120.0, 260.0, allow_nan=False)
        ))
        arrivals.append(Arrival(
            time_s=draw(st.floats(0.0, 40.0, allow_nan=False)),
            request=JobRequest(
                name=f"job-{i}",
                config=KernelConfig(
                    intensity=draw(st.sampled_from(_INTENSITIES))
                ),
                node_count=draw(st.integers(1, 12)),
                iterations=iterations,
                power_hint_w=hint,
            ),
        ))
    return arrivals


policies = st.sampled_from(["StaticCaps", "MixedAdaptive", "JobAdaptive"])
budgets = st.floats(900.0, 4000.0, allow_nan=False)
seeds = st.one_of(st.none(), st.integers(0, 2**31 - 1))
round_limits = st.integers(1, 12)


class TestStreamReplayIdentity:
    @given(arrivals=arrival_lists(), policy=policies, budget=budgets,
           seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_to_batch_loop(self, arrivals, policy, budget,
                                         seed):
        """Same batches, turnarounds, energy — float for float."""
        batch = run_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget, run_seed=seed
        )
        stream = stream_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget, run_seed=seed
        )
        assert stream == batch
        assert stream.total_energy_j == batch.total_energy_j
        assert stream.job_turnaround_s == batch.job_turnaround_s

    @given(arrivals=arrival_lists(), policy=policies, budget=budgets,
           max_batches=round_limits)
    @settings(max_examples=25, deadline=None)
    def test_truncation_matches_batch_loop(self, arrivals, policy, budget,
                                           max_batches):
        """Round-limit truncation splits jobs identically in both loops."""
        batch = run_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget,
            max_batches=max_batches,
        )
        stream = stream_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget,
            max_batches=max_batches,
        )
        assert stream == batch
        # The status partition covers every arrival exactly once.
        names = {a.request.name for a in arrivals}
        reported = (set(stream.completed) | set(stream.never_admitted)
                    | set(stream.truncated))
        assert reported == names
        assert (len(stream.completed) + len(stream.never_admitted)
                + len(stream.truncated)) == len(names)

    @given(arrivals=arrival_lists(), budget=budgets)
    @settings(max_examples=15, deadline=None)
    def test_replay_does_not_consume_inputs(self, arrivals, budget):
        """Replaying twice from one arrival list gives the same answer."""
        first = stream_site_simulation(
            arrivals, CLUSTER, create_policy("StaticCaps"), budget
        )
        second = stream_site_simulation(
            arrivals, CLUSTER, create_policy("StaticCaps"), budget
        )
        assert first == second
        assert all(a.request.state.value == "pending" for a in arrivals)


# ---------------------------------------------------------------------------
# Batched concurrent physics ≡ scalar per-batch physics (rolling engine)
# ---------------------------------------------------------------------------

VARIED_CLUSTER = Cluster(node_count=10, variation=QUARTZ_VARIATION, seed=3)

all_policies = st.sampled_from([
    "StaticCaps", "MixedAdaptive", "JobAdaptive",
    "MinimizeWaste", "Precharacterized",
])


@st.composite
def arrival_specs(draw):
    """Plain-tuple arrival specs: material is built fresh per engine.

    ``replay_stream`` yields the *same* mutable ``JobRequest`` objects it
    was given, so a paired batched/scalar comparison must materialise a
    fresh arrival list for each engine from an immutable spec.  Times are
    drawn with deliberate clustering (several arrivals can share an
    instant) so quantised admission piles up concurrent in-flight
    batches — the configuration the vectorised path groups.
    """
    count = draw(st.integers(2, 8))
    iterations = draw(st.integers(4, 10))
    instants = draw(st.lists(
        st.floats(0.0, 30.0, allow_nan=False), min_size=1, max_size=4
    ))
    specs = []
    for i in range(count):
        specs.append((
            draw(st.sampled_from(instants)),
            draw(st.sampled_from(_INTENSITIES)),
            draw(st.integers(1, 5)),
            iterations,
            draw(st.one_of(
                st.none(), st.floats(120.0, 260.0, allow_nan=False)
            )),
        ))
    return tuple(specs)


def _materialise(specs):
    return [
        Arrival(
            time_s=t,
            request=JobRequest(
                name=f"job-{i}",
                config=KernelConfig(intensity=intensity),
                node_count=nodes,
                iterations=iters,
                power_hint_w=hint,
            ),
        )
        for i, (t, intensity, nodes, iters, hint) in enumerate(specs)
    ]


@st.composite
def fault_schedules(draw):
    """None, or a schedule with a budget drop and/or a node failure."""
    if draw(st.booleans()):
        return None
    schedule = FaultSchedule(name="prop-faults")
    if draw(st.booleans()):
        t = draw(st.floats(0.0, 20.0, allow_nan=False))
        schedule = schedule.budget_drop(
            t, draw(st.floats(500.0, 1500.0, allow_nan=False))
        )
        schedule = schedule.budget_restore(
            t + draw(st.floats(5.0, 40.0, allow_nan=False)), 4000.0
        )
    if draw(st.booleans()):
        t = draw(st.floats(0.0, 20.0, allow_nan=False))
        host = draw(st.integers(0, 9))
        schedule = schedule.node_failure(t, host_ids=[host])
        schedule = schedule.node_recovery(
            t + draw(st.floats(5.0, 40.0, allow_nan=False)), host_ids=[host]
        )
    return schedule if schedule.active else None


class TestBatchedPhysicsIdentity:
    """The tentpole contract: ``batched_physics=True`` is bit-identical.

    Routing concurrent in-flight batches through one stacked
    ``simulate_layout_batch`` call must reproduce the scalar per-batch
    engine float for float: same stats, same batch records, same
    turnarounds.  Hypothesis sweeps policies, budgets, clusters with and
    without hardware variation, fault schedules (which force the scalar
    fallback but must not perturb results), per-job splitting, quantised
    admission windows, and run seeds.
    """

    def _run_pair(self, specs, cluster, policy, budget, *, seed,
                  fault_schedule=None, interval=None, per_job=True):
        def run(batched):
            engine = SiteStreamEngine(
                cluster, create_policy(policy), budget,
                rolling=True, max_pending=32,
                record_jobs=True, record_batches=True,
                run_seed=seed, fault_schedule=fault_schedule,
                batched_physics=batched,
                admission_interval_s=interval,
                per_job_batches=per_job,
            )
            engine.attach_source(replay_stream(_materialise(specs)))
            stats = engine.run()
            return stats, engine

        stats_b, engine_b = run(True)
        stats_s, engine_s = run(False)
        assert stats_b == stats_s
        assert engine_b.batches == engine_s.batches
        assert engine_b.turnaround_s == engine_s.turnaround_s

    @given(specs=arrival_specs(), policy=all_policies, budget=budgets,
           seed=seeds, interval=st.sampled_from([None, 2.0, 5.0]),
           per_job=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_uniform_cluster_identity(self, specs, policy, budget, seed,
                                      interval, per_job):
        """Uniform hosts: the shuffle-free planner fast path."""
        self._run_pair(specs, CLUSTER, policy, budget, seed=seed,
                       interval=interval, per_job=per_job)

    @given(specs=arrival_specs(), policy=all_policies, budget=budgets,
           seed=seeds, interval=st.sampled_from([None, 2.0, 5.0]))
    @settings(max_examples=15, deadline=None)
    def test_varied_cluster_identity(self, specs, policy, budget, seed,
                                     interval):
        """Quartz variation: the shuffled-efficiency gather path."""
        self._run_pair(specs, VARIED_CLUSTER, policy, budget, seed=seed,
                       interval=interval)

    @given(specs=arrival_specs(), policy=all_policies, budget=budgets,
           schedule=fault_schedules(),
           interval=st.sampled_from([None, 3.0]))
    @settings(max_examples=15, deadline=None)
    def test_fault_schedule_identity(self, specs, policy, budget,
                                     schedule, interval):
        """Active faults force the scalar fallback without divergence."""
        self._run_pair(specs, CLUSTER, policy, budget, seed=7,
                       fault_schedule=schedule, interval=interval)
