"""Property-based tests: the streaming engine replays the batch loop.

The contract the tentpole rests on: feeding the streaming site engine a
pre-built arrival list (fault-free) produces *bit-identical* results to
``run_site_simulation`` — same batch records float for float, same
turnarounds, same energy, same truncation split.  Hypothesis drives
random arrival lists, budgets, policies, and round limits through both
loops and compares the full result objects.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival, run_site_simulation
from repro.stream.engine import stream_site_simulation
from repro.workload.kernel import KernelConfig

CLUSTER = Cluster(node_count=10, variation=None, seed=0)

_INTENSITIES = (0.25, 2.0, 8.0, 32.0)


@st.composite
def arrival_lists(draw):
    """1-7 arrivals with mixed shapes, times, and optional hints."""
    count = draw(st.integers(1, 7))
    # One iteration count per list: jobs co-scheduled into a batch must
    # share it (a WorkloadMix invariant, same as the batch loop).
    iterations = draw(st.integers(5, 15))
    arrivals = []
    for i in range(count):
        hint = draw(st.one_of(
            st.none(), st.floats(120.0, 260.0, allow_nan=False)
        ))
        arrivals.append(Arrival(
            time_s=draw(st.floats(0.0, 40.0, allow_nan=False)),
            request=JobRequest(
                name=f"job-{i}",
                config=KernelConfig(
                    intensity=draw(st.sampled_from(_INTENSITIES))
                ),
                node_count=draw(st.integers(1, 12)),
                iterations=iterations,
                power_hint_w=hint,
            ),
        ))
    return arrivals


policies = st.sampled_from(["StaticCaps", "MixedAdaptive", "JobAdaptive"])
budgets = st.floats(900.0, 4000.0, allow_nan=False)
seeds = st.one_of(st.none(), st.integers(0, 2**31 - 1))
round_limits = st.integers(1, 12)


class TestStreamReplayIdentity:
    @given(arrivals=arrival_lists(), policy=policies, budget=budgets,
           seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_to_batch_loop(self, arrivals, policy, budget,
                                         seed):
        """Same batches, turnarounds, energy — float for float."""
        batch = run_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget, run_seed=seed
        )
        stream = stream_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget, run_seed=seed
        )
        assert stream == batch
        assert stream.total_energy_j == batch.total_energy_j
        assert stream.job_turnaround_s == batch.job_turnaround_s

    @given(arrivals=arrival_lists(), policy=policies, budget=budgets,
           max_batches=round_limits)
    @settings(max_examples=25, deadline=None)
    def test_truncation_matches_batch_loop(self, arrivals, policy, budget,
                                           max_batches):
        """Round-limit truncation splits jobs identically in both loops."""
        batch = run_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget,
            max_batches=max_batches,
        )
        stream = stream_site_simulation(
            arrivals, CLUSTER, create_policy(policy), budget,
            max_batches=max_batches,
        )
        assert stream == batch
        # The status partition covers every arrival exactly once.
        names = {a.request.name for a in arrivals}
        reported = (set(stream.completed) | set(stream.never_admitted)
                    | set(stream.truncated))
        assert reported == names
        assert (len(stream.completed) + len(stream.never_admitted)
                + len(stream.truncated)) == len(names)

    @given(arrivals=arrival_lists(), budget=budgets)
    @settings(max_examples=15, deadline=None)
    def test_replay_does_not_consume_inputs(self, arrivals, budget):
        """Replaying twice from one arrival list gives the same answer."""
        first = stream_site_simulation(
            arrivals, CLUSTER, create_policy("StaticCaps"), budget
        )
        second = stream_site_simulation(
            arrivals, CLUSTER, create_policy("StaticCaps"), budget
        )
        assert first == second
        assert all(a.request.state.value == "pending" for a in arrivals)
