"""Property-based tests: the water-filling primitives' invariants.

Power conservation and bound respect must hold for *any* input, not just
the scenarios the policies happen to produce — these are the invariants
every policy builds on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.allocation import (
    distribute_uniform,
    distribute_weighted,
    fit_to_budget,
)

_SIZE = st.integers(min_value=1, max_value=24)


def _alloc_and_bounds(draw, size):
    alloc = draw(
        arrays(float, size, elements=st.floats(0.0, 300.0, allow_nan=False))
    )
    headroom = draw(
        arrays(float, size, elements=st.floats(0.0, 200.0, allow_nan=False))
    )
    return alloc, alloc + headroom


@st.composite
def uniform_case(draw):
    size = draw(_SIZE)
    alloc, bounds = _alloc_and_bounds(draw, size)
    pool = draw(st.floats(0.0, 5000.0, allow_nan=False))
    return pool, alloc, bounds


@st.composite
def weighted_case(draw):
    size = draw(_SIZE)
    alloc, bounds = _alloc_and_bounds(draw, size)
    weights = draw(
        arrays(float, size, elements=st.floats(0.0, 10.0, allow_nan=False))
    )
    pool = draw(st.floats(0.0, 5000.0, allow_nan=False))
    return pool, alloc, weights, bounds


class TestDistributeUniform:
    @given(uniform_case())
    @settings(max_examples=200, deadline=None)
    def test_conservation(self, case):
        pool, alloc, bounds = case
        new, leftover = distribute_uniform(pool, alloc, bounds)
        granted = float(np.sum(new - alloc))
        np.testing.assert_allclose(granted + leftover, pool, rtol=1e-9, atol=1e-6)

    @given(uniform_case())
    @settings(max_examples=200, deadline=None)
    def test_bounds_respected(self, case):
        pool, alloc, bounds = case
        new, _ = distribute_uniform(pool, alloc, bounds)
        assert np.all(new <= bounds + 1e-6)
        assert np.all(new >= alloc - 1e-9)

    @given(uniform_case())
    @settings(max_examples=200, deadline=None)
    def test_leftover_nonnegative(self, case):
        pool, alloc, bounds = case
        _, leftover = distribute_uniform(pool, alloc, bounds)
        assert leftover >= 0.0

    @given(uniform_case())
    @settings(max_examples=100, deadline=None)
    def test_leftover_only_when_saturated(self, case):
        """Leftover implies every host is at its bound."""
        pool, alloc, bounds = case
        new, leftover = distribute_uniform(pool, alloc, bounds)
        if leftover > 1e-6:
            np.testing.assert_allclose(new, bounds, atol=1e-6)


class TestDistributeWeighted:
    @given(weighted_case())
    @settings(max_examples=200, deadline=None)
    def test_conservation(self, case):
        pool, alloc, weights, bounds = case
        new, leftover = distribute_weighted(pool, alloc, weights, bounds)
        np.testing.assert_allclose(
            float(np.sum(new - alloc)) + leftover, pool, rtol=1e-9, atol=1e-6
        )

    @given(weighted_case())
    @settings(max_examples=200, deadline=None)
    def test_bounds_respected(self, case):
        pool, alloc, weights, bounds = case
        new, _ = distribute_weighted(pool, alloc, weights, bounds)
        assert np.all(new <= bounds + 1e-6)
        assert np.all(new >= alloc - 1e-9)

    @given(weighted_case())
    @settings(max_examples=200, deadline=None)
    def test_zero_weight_gets_nothing(self, case):
        pool, alloc, weights, bounds = case
        new, _ = distribute_weighted(pool, alloc, weights, bounds)
        zero = weights == 0
        np.testing.assert_allclose(new[zero], alloc[zero], atol=1e-9)


@st.composite
def fit_case(draw):
    size = draw(_SIZE)
    floor = draw(st.floats(10.0, 150.0, allow_nan=False))
    above = draw(
        arrays(float, size, elements=st.floats(0.0, 150.0, allow_nan=False))
    )
    budget = draw(st.floats(1.0, 6000.0, allow_nan=False))
    return floor + above, budget, floor


class TestFitToBudget:
    @given(fit_case())
    @settings(max_examples=200, deadline=None)
    def test_budget_or_floor(self, case):
        """Result meets the budget, unless the all-floor vector itself
        exceeds it (the infeasible case returns all-floor)."""
        targets, budget, floor = case
        out = fit_to_budget(targets, budget, floor)
        if targets.size * floor <= budget:
            assert float(np.sum(out)) <= budget + 1e-6
        else:
            np.testing.assert_allclose(out, floor)

    @given(fit_case())
    @settings(max_examples=200, deadline=None)
    def test_floor_respected(self, case):
        targets, budget, floor = case
        out = fit_to_budget(targets, budget, floor)
        assert np.all(out >= floor - 1e-9)

    @given(fit_case())
    @settings(max_examples=200, deadline=None)
    def test_never_exceeds_targets(self, case):
        targets, budget, floor = case
        out = fit_to_budget(targets, budget, floor)
        assert np.all(out <= targets + 1e-9)

    @given(fit_case())
    @settings(max_examples=200, deadline=None)
    def test_order_preserved(self, case):
        """Scaling never swaps two hosts' relative allocations."""
        targets, budget, floor = case
        out = fit_to_budget(targets, budget, floor)
        order_in = np.argsort(targets, kind="stable")
        assert np.all(np.diff(out[order_in]) >= -1e-9)
