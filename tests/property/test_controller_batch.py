"""Property-based tests: batched controller runtime == serial, bitwise.

The batched runtime's contract mirrors the batched engine's: run ``c`` of
a :class:`~repro.runtime.batch.ControllerBatch` is *bit-identical* — not
merely close — to a serial :class:`~repro.runtime.controller.Controller`
run with the same job, efficiencies, seed, and agent.  These tests pin
that for reports (``JobReport.__eq__`` is exact dataclass equality,
metadata floats included), per-epoch history samples, and final limits,
across noise-free and noisy runs, early-convergence freezing, mixed agent
groups, heterogeneous balancer options (the per-run fallback), and
fault-injected configurations.

All comparisons run under disabled telemetry: report ``telemetry``
sections carry wall-clock timings that legitimately differ between the
two runtimes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.faults.injection import RuntimeFaultInjector
from repro.faults.scenarios import SCENARIO_NAMES, STANDARD_SCENARIOS
from repro.runtime.batch import ControllerRunSpec, run_controller_batch
from repro.runtime.controller import Controller
from repro.runtime.monitor import MonitorAgent
from repro.runtime.power_balancer import BalancerOptions, PowerBalancerAgent
from repro.runtime.power_governor import PowerGovernorAgent
from repro.workload.job import Job
from repro.workload.kernel import KernelConfig


@pytest.fixture(autouse=True)
def _quiet_telemetry():
    with telemetry.disabled():
        yield


def _job(name, hosts, intensity, waiting, imbalance):
    return Job(
        name=name,
        config=KernelConfig(
            intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
        ),
        node_count=hosts,
    )


@st.composite
def run_cases(draw):
    """A batch of 1-6 heterogeneous runs sharing one host count."""
    hosts = draw(st.integers(2, 6))
    n_runs = draw(st.integers(1, 6))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    runs = []
    for i in range(n_runs):
        intensity = draw(st.sampled_from([2.0, 8.0, 16.0]))
        if draw(st.booleans()):
            waiting = draw(st.sampled_from([0.25, 0.5, 0.75]))
            imbalance = draw(st.integers(2, min(3, hosts)))
        else:
            waiting, imbalance = 0.0, 1
        job = _job(f"run-{i}", hosts, intensity, waiting, imbalance)
        eff = 1.0 + 0.05 * rng.standard_normal(hosts)
        kind = draw(st.sampled_from(["monitor", "balancer", "governor"]))
        noise = draw(st.sampled_from([0.0, 0.01]))
        seed = draw(st.integers(0, 2**31))
        runs.append((job, eff, kind, noise, seed))
    max_epochs = draw(st.integers(1, 40))
    min_epochs = draw(st.integers(1, 5))
    return hosts, runs, max_epochs, min_epochs


def _make_agent(kind, hosts, options=None):
    if kind == "monitor":
        return MonitorAgent()
    if kind == "governor":
        return PowerGovernorAgent(job_budget_w=hosts * 200.0)
    return PowerBalancerAgent(
        job_budget_w=hosts * 240.0, options=options
    )


def _assert_run_matches(controller, result, c, max_epochs, min_epochs):
    report = controller.run(max_epochs=max_epochs, min_epochs=min_epochs)
    assert report == result.reports[c]
    assert len(controller.history) == result.epochs[c]
    batch_history = result.history_for(c)
    for serial, batched in zip(controller.history, batch_history):
        assert serial.epoch == batched.epoch
        s, b = serial.sample, batched.sample
        assert s.epoch_time_s == b.epoch_time_s
        for name in (
            "host_time_s", "host_power_w", "power_limit_w",
            "host_energy_j", "mean_freq_ghz",
        ):
            np.testing.assert_array_equal(
                getattr(s, name), getattr(b, name), err_msg=name
            )
        np.testing.assert_array_equal(
            serial.limits_applied_w, batched.limits_applied_w
        )
    np.testing.assert_array_equal(
        controller.final_limits_w(), result.final_limits_w(c)
    )
    np.testing.assert_array_equal(
        controller.steady_state_sample().host_power_w,
        result.steady_state_sample(c).host_power_w,
    )


class TestBatchedEqualsSerial:
    @given(case=run_cases())
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_mixed_agents(self, case):
        hosts, runs, max_epochs, min_epochs = case
        specs = [
            ControllerRunSpec(
                job=job, efficiencies=eff, agent=_make_agent(kind, hosts),
                noise_std=noise, seed=seed,
            )
            for job, eff, kind, noise, seed in runs
        ]
        result = run_controller_batch(
            specs, max_epochs=max_epochs, min_epochs=min_epochs
        )
        for c, (job, eff, kind, noise, seed) in enumerate(runs):
            controller = Controller(
                job, eff, _make_agent(kind, hosts),
                noise_std=noise, seed=seed,
            )
            _assert_run_matches(controller, result, c, max_epochs, min_epochs)

    @given(
        seed=st.integers(0, 2**31),
        hosts=st.integers(2, 5),
        max_epochs=st.integers(5, 80),
    )
    @settings(max_examples=25, deadline=None)
    def test_early_convergence_freezes_correctly(self, seed, hosts, max_epochs):
        """Runs converging at different epochs each match their serial twin
        — the active-mask bookkeeping cannot leak between cells."""
        shapes = [(16.0, 0.75, 2), (8.0, 0.25, 2), (16.0, 0.5, 2), (2.0, 0.0, 1)]
        specs = [
            ControllerRunSpec(
                job=_job(f"c{i}", hosts, inten, wait, imb),
                efficiencies=np.ones(hosts),
                agent=PowerBalancerAgent(job_budget_w=hosts * 240.0),
                seed=seed + i,
            )
            for i, (inten, wait, imb) in enumerate(shapes)
        ]
        result = run_controller_batch(specs, max_epochs=max_epochs)
        for c, (inten, wait, imb) in enumerate(shapes):
            controller = Controller(
                _job(f"c{c}", hosts, inten, wait, imb), np.ones(hosts),
                PowerBalancerAgent(job_budget_w=hosts * 240.0),
                seed=seed + c,
            )
            _assert_run_matches(controller, result, c, max_epochs, 3)

    @given(
        gains=st.lists(
            st.sampled_from([0.3, 0.5, 0.8]), min_size=2, max_size=4
        ),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_heterogeneous_options_fall_back(self, gains, seed):
        """Balancers with differing options cannot batch; the per-run
        fallback must still be bit-identical."""
        hosts = 4
        specs = [
            ControllerRunSpec(
                job=_job(f"h{i}", hosts, 16.0, 0.5, 2),
                efficiencies=np.ones(hosts),
                agent=PowerBalancerAgent(
                    job_budget_w=hosts * 240.0,
                    options=BalancerOptions(gain=gain),
                ),
                noise_std=0.005,
                seed=seed + i,
            )
            for i, gain in enumerate(gains)
        ]
        result = run_controller_batch(specs, max_epochs=50)
        for c, gain in enumerate(gains):
            controller = Controller(
                _job(f"h{c}", hosts, 16.0, 0.5, 2), np.ones(hosts),
                PowerBalancerAgent(
                    job_budget_w=hosts * 240.0,
                    options=BalancerOptions(gain=gain),
                ),
                noise_std=0.005, seed=seed + c,
            )
            _assert_run_matches(controller, result, c, 50, 3)


class TestFaultInjectedRuns:
    @given(
        scenario=st.sampled_from(SCENARIO_NAMES),
        seed=st.integers(0, 2**31),
        noise=st.sampled_from([0.0, 0.005]),
    )
    @settings(max_examples=25, deadline=None)
    def test_injected_runs_bit_identical(self, scenario, seed, noise):
        hosts = 4
        schedule = STANDARD_SCENARIOS[scenario].build(
            hosts * 240.0, hosts, 60.0
        )
        job = _job("flt", hosts, 16.0, 0.5, 2)

        def injector():
            return RuntimeFaultInjector(schedule, seed=seed)

        specs = [
            # A clean run batches alongside the injected ones.
            ControllerRunSpec(
                job=job, efficiencies=np.ones(hosts),
                agent=PowerBalancerAgent(job_budget_w=hosts * 240.0),
                noise_std=noise, seed=seed,
            ),
            ControllerRunSpec(
                job=job, efficiencies=np.ones(hosts),
                agent=PowerBalancerAgent(job_budget_w=hosts * 240.0),
                noise_std=noise, seed=seed, fault_injector=injector(),
            ),
        ]
        result = run_controller_batch(specs, max_epochs=40)
        for c, flt in enumerate([None, injector()]):
            controller = Controller(
                job, np.ones(hosts),
                PowerBalancerAgent(job_budget_w=hosts * 240.0),
                noise_std=noise, seed=seed, fault_injector=flt,
            )
            _assert_run_matches(controller, result, c, 40, 3)


class TestBatchSemantics:
    def test_mismatched_hosts_rejected(self):
        specs = [
            ControllerRunSpec(
                job=_job("a", 3, 8.0, 0.0, 1), efficiencies=np.ones(3),
                agent=MonitorAgent(),
            ),
            ControllerRunSpec(
                job=_job("b", 4, 8.0, 0.0, 1), efficiencies=np.ones(4),
                agent=MonitorAgent(),
            ),
        ]
        with pytest.raises(ValueError, match="host count"):
            run_controller_batch(specs)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one run"):
            run_controller_batch([])

    def test_bad_efficiency_shape_rejected(self):
        with pytest.raises(ValueError, match="efficiencies"):
            ControllerRunSpec(
                job=_job("a", 3, 8.0, 0.0, 1), efficiencies=np.ones(5),
                agent=MonitorAgent(),
            )

    def test_shared_initial_limits_broadcast(self):
        hosts = 3
        init = np.array([200.0, 180.0, 220.0])
        spec = ControllerRunSpec(
            job=_job("a", hosts, 8.0, 0.0, 1), efficiencies=np.ones(hosts),
            agent=MonitorAgent(),
        )
        result = run_controller_batch(
            [spec], initial_limits_w=init, max_epochs=3, min_epochs=3
        )
        controller = Controller(
            _job("a", hosts, 8.0, 0.0, 1), np.ones(hosts), MonitorAgent()
        )
        report = controller.run(
            initial_limits_w=init, max_epochs=3, min_epochs=3
        )
        assert report == result.reports[0]

    def test_bad_initial_limit_shape_rejected(self):
        spec = ControllerRunSpec(
            job=_job("a", 3, 8.0, 0.0, 1), efficiencies=np.ones(3),
            agent=MonitorAgent(),
        )
        with pytest.raises(ValueError, match="initial limits"):
            run_controller_batch([spec], initial_limits_w=np.ones(2))

    def test_bad_epoch_budget_rejected(self):
        spec = ControllerRunSpec(
            job=_job("a", 3, 8.0, 0.0, 1), efficiencies=np.ones(3),
            agent=MonitorAgent(),
        )
        with pytest.raises(ValueError, match="max_epochs"):
            run_controller_batch([spec], max_epochs=0)
