"""Property-based tests: tracing is physics-blind and trees stay well-formed.

Two contracts pin the tracing layer:

* **Bit-identity.**  Span recording never touches a simulation RNG
  stream, so every traced entry point — ``simulate_mix``,
  ``simulate_cap_batch``, ``run_controller_batch``,
  ``run_site_simulation`` — produces *exactly* the same result with
  tracing on and off, for any workload Hypothesis draws.
* **Well-formedness.**  Whatever the instrumented stack records, the
  finished span set validates: one root per trace, no orphans, no
  cross-trace parents, child intervals nested in their parents — and the
  same holds after a cross-process merge through the parallel runner.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.parallel.runner import ParallelRunner
from repro.parallel.seeding import child_seed
from repro.runtime.batch import ControllerRunSpec, run_controller_batch
from repro.runtime.power_balancer import PowerBalancerAgent
from repro.sim.batch import simulate_cap_batch
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.telemetry import get_tracer, set_tracing, validate_span_tree
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


@pytest.fixture(autouse=True)
def _clean_tracer():
    get_tracer().clear()
    yield
    set_tracing(True)
    get_tracer().clear()
    telemetry.reset()


def _mix(hosts, intensity, waiting, imbalance, iterations):
    job = Job(
        name="prop",
        config=KernelConfig(intensity=intensity, waiting_fraction=waiting,
                            imbalance=imbalance),
        node_count=hosts,
        iterations=iterations,
    )
    return WorkloadMix(name="prop-mix", jobs=(job,))


@st.composite
def mix_cases(draw):
    hosts = draw(st.integers(2, 8))
    intensity = draw(st.sampled_from([0.25, 2.0, 8.0, 32.0]))
    if draw(st.booleans()):
        waiting = draw(st.sampled_from([0.25, 0.5, 0.75]))
        imbalance = draw(st.integers(2, min(3, hosts)))
    else:
        waiting, imbalance = 0.0, 1
    iterations = draw(st.integers(1, 20))
    noise = draw(st.sampled_from([0.0, 0.01]))
    seed = draw(st.integers(0, 2**31))
    return hosts, intensity, waiting, imbalance, iterations, noise, seed


def _traced_and_untraced(fn):
    """Run ``fn`` with tracing on, then off; return both results."""
    get_tracer().clear()
    set_tracing(True)
    traced = fn()
    set_tracing(False)
    try:
        untraced = fn()
    finally:
        set_tracing(True)
    return traced, untraced


class TestBitIdentity:
    @given(case=mix_cases())
    @settings(max_examples=25, deadline=None)
    def test_simulate_mix(self, case):
        hosts, intensity, waiting, imbalance, iterations, noise, seed = case
        mix = _mix(hosts, intensity, waiting, imbalance, iterations)
        caps = np.full(hosts, 200.0)
        eff = np.random.default_rng(seed % 997).uniform(0.9, 1.1, hosts)
        options = SimulationOptions(noise_std=noise, seed=seed)

        traced, untraced = _traced_and_untraced(
            lambda: simulate_mix(mix, caps, eff, None, options)
        )
        assert traced == untraced

    @given(case=mix_cases(), rungs=st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_simulate_cap_batch(self, case, rungs):
        hosts, intensity, waiting, imbalance, iterations, noise, seed = case
        mix = _mix(hosts, intensity, waiting, imbalance, iterations)
        eff = np.random.default_rng(seed % 997).uniform(0.9, 1.1, hosts)
        rung_caps = np.linspace(150.0, 240.0, rungs)
        caps_sw = np.broadcast_to(rung_caps[:, np.newaxis], (rungs, hosts))
        seeds = [child_seed(seed, i, f"{float(c)!r}")
                 for i, c in enumerate(rung_caps)]
        options = SimulationOptions(noise_std=noise, seed=seed)

        traced, untraced = _traced_and_untraced(
            lambda: simulate_cap_batch(mix, caps_sw, eff, options=options,
                                       seeds=seeds)
        )
        assert traced == untraced

    @given(seed=st.integers(0, 2**16), hosts=st.integers(2, 5),
           max_epochs=st.integers(2, 20))
    @settings(max_examples=10, deadline=None)
    def test_run_controller_batch(self, seed, hosts, max_epochs):
        rng = np.random.default_rng(seed)
        specs = [
            ControllerRunSpec(
                job=Job(name=f"run-{i}",
                        config=KernelConfig(intensity=float(2 ** (1 + i))),
                        node_count=hosts),
                efficiencies=1.0 + 0.05 * rng.standard_normal(hosts),
                agent=PowerBalancerAgent(job_budget_w=hosts * 200.0),
                noise_std=0.01,
                seed=seed + i,
            )
            for i in range(2)
        ]

        def run():
            return run_controller_batch(specs, max_epochs=max_epochs)

        traced, untraced = _traced_and_untraced(run)
        np.testing.assert_array_equal(traced.epochs, untraced.epochs)
        np.testing.assert_array_equal(traced.converged, untraced.converged)
        for a, b in zip(traced.reports, untraced.reports):
            # Report telemetry sections carry wall-clock timings that
            # legitimately differ between any two runs; the physics must
            # not.
            assert dataclasses.replace(a, telemetry={}) == \
                dataclasses.replace(b, telemetry={})

    @given(seed=st.integers(0, 2**16), jobs=st.integers(1, 3))
    @settings(max_examples=5, deadline=None)
    def test_run_site_simulation(self, seed, jobs, small_cluster):
        from repro.core.registry import create_policy
        from repro.manager.queue import JobRequest
        from repro.manager.site_simulation import Arrival, run_site_simulation

        nodes = 4
        cluster = small_cluster.subset(np.arange(3 * nodes))
        arrivals = [
            Arrival(
                time_s=float(i),
                request=JobRequest(
                    f"prop-job-{i}",
                    KernelConfig(intensity=float(2 ** (1 + i % 3))),
                    node_count=nodes, iterations=5,
                ),
            )
            for i in range(jobs)
        ]
        budget_w = 3 * nodes * 200.0

        def run():
            return run_site_simulation(
                arrivals, cluster, create_policy("MixedAdaptive"), budget_w,
                run_seed=seed,
            )

        traced, untraced = _traced_and_untraced(run)
        assert traced == untraced


class TestWellFormedness:
    @given(case=mix_cases())
    @settings(max_examples=15, deadline=None)
    def test_simulate_mix_spans_validate(self, case):
        hosts, intensity, waiting, imbalance, iterations, noise, seed = case
        mix = _mix(hosts, intensity, waiting, imbalance, iterations)
        get_tracer().clear()
        simulate_mix(mix, np.full(hosts, 200.0), np.ones(hosts), None,
                     SimulationOptions(noise_std=noise, seed=seed))
        spans = get_tracer().finished()
        assert spans
        assert validate_span_tree(spans) == []

    def test_grid_cell_spans_validate(self, small_grid):
        get_tracer().clear()
        small_grid.run_cell(small_grid.config.mixes[0], "ideal",
                            "MixedAdaptive")
        spans = get_tracer().finished()
        names = {s.name for s in spans}
        assert "experiments.grid.cell" in names
        assert "sim.simulate_mix" in names
        assert validate_span_tree(spans) == []

    def test_cross_process_merge_validates(self):
        get_tracer().clear()
        runner = ParallelRunner(workers=2)
        with telemetry.span("prop.fanout"):
            results = runner.map(_traced_square, list(range(6)))
        assert results == [x * x for x in range(6)]
        spans = get_tracer().finished()
        assert validate_span_tree(spans) == []
        if runner.parallel and runner.pool_failures == 0:
            # Worker spans shipped home and grafted under parallel.map.
            names = [s.name for s in spans]
            assert names.count("parallel.task") == 6
            assert "prop.worker" in names
            by_id = {s.span_id: s for s in spans}
            map_sp, = [s for s in spans if s.name == "parallel.map"]
            for task in (s for s in spans if s.name == "parallel.task"):
                assert by_id[task.parent_id] is map_sp
                assert task.trace_id == map_sp.trace_id


def _traced_square(x):
    with telemetry.span("prop.worker", x=x):
        return x * x
