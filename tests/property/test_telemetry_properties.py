"""Property-based tests: the streaming histogram's quantile guarantees.

The reservoir holds real observations, never synthetic interpolants
outside the data, so every quantile estimate must lie within the true
``[min, max]`` of the stream — for any stream, any length, any reservoir
size.  Hypothesis hunts for counterexamples.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import Histogram

finite = st.floats(-1e12, 1e12, allow_nan=False, allow_infinity=False)
streams = st.lists(finite, min_size=1, max_size=300)


class TestHistogramProperties:
    @given(xs=streams, q=st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_true_range(self, xs, q):
        h = Histogram(reservoir_size=16)
        for x in xs:
            h.observe(x)
        assert min(xs) <= h.quantile(q) <= max(xs)

    @given(xs=streams)
    @settings(max_examples=200, deadline=None)
    def test_snapshot_within_true_range(self, xs):
        h = Histogram(reservoir_size=16)
        for x in xs:
            h.observe(x)
        snap = h.snapshot()
        assert snap.count == len(xs)
        assert snap.min == min(xs)
        assert snap.max == max(xs)
        assert snap.min <= snap.p50 <= snap.p95 or np.isclose(
            snap.p50, snap.p95
        )
        assert snap.min <= snap.p50 <= snap.max
        assert snap.min <= snap.p95 <= snap.max

    @given(xs=streams)
    @settings(max_examples=150, deadline=None)
    def test_mean_matches_numpy(self, xs):
        h = Histogram()
        for x in xs:
            h.observe(x)
        np.testing.assert_allclose(h.mean, np.mean(xs), rtol=1e-9, atol=1e-6)

    @given(xs=st.lists(finite, min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_quantiles_monotone_in_q(self, xs):
        h = Histogram(reservoir_size=32)
        for x in xs:
            h.observe(x)
        qs = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0]
        values = [h.quantile(q) for q in qs]
        assert values == sorted(values)
