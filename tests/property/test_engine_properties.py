"""Property-based tests: execution-engine physics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig, INTENSITY_GRID

MODEL = ExecutionModel()


@st.composite
def kernel_configs(draw):
    intensity = draw(st.sampled_from(INTENSITY_GRID))
    imbalanced = draw(st.booleans())
    if imbalanced:
        waiting = draw(st.sampled_from([0.25, 0.5, 0.75]))
        imbalance = draw(st.sampled_from([2, 3]))
    else:
        waiting, imbalance = 0.0, 1
    return KernelConfig(
        intensity=intensity, waiting_fraction=waiting, imbalance=imbalance
    )


@st.composite
def simulation_cases(draw):
    config = draw(kernel_configs())
    nodes = draw(st.integers(2, 8))
    job = Job(name="p", config=config, node_count=nodes, iterations=4)
    mix = WorkloadMix(name="p", jobs=(job,))
    caps = np.array(
        draw(
            st.lists(
                st.floats(136.0, 240.0, allow_nan=False),
                min_size=nodes,
                max_size=nodes,
            )
        )
    )
    effs = np.array(
        draw(
            st.lists(
                st.floats(0.85, 1.15, allow_nan=False),
                min_size=nodes,
                max_size=nodes,
            )
        )
    )
    return mix, caps, effs


class TestEngineInvariants:
    @given(case=simulation_cases())
    @settings(max_examples=150, deadline=None)
    def test_times_positive_and_finite(self, case):
        mix, caps, effs = case
        res = simulate_mix(mix, caps, effs, MODEL, SimulationOptions(noise_std=0.0))
        assert np.all(res.iteration_times_s > 0)
        assert np.all(np.isfinite(res.iteration_times_s))

    @given(case=simulation_cases())
    @settings(max_examples=150, deadline=None)
    def test_energy_positive_and_finite(self, case):
        mix, caps, effs = case
        res = simulate_mix(mix, caps, effs, MODEL, SimulationOptions(noise_std=0.0))
        assert np.all(res.host_energy_j > 0)
        assert np.all(np.isfinite(res.host_energy_j))

    @given(case=simulation_cases())
    @settings(max_examples=150, deadline=None)
    def test_host_power_within_physics(self, case):
        """Mean host power never exceeds min(cap, TDP) and never drops
        below the uncore floor."""
        mix, caps, effs = case
        res = simulate_mix(mix, caps, effs, MODEL, SimulationOptions(noise_std=0.0))
        assert np.all(res.host_mean_power_w <= np.minimum(caps, 240.0) + 1e-6)
        assert np.all(res.host_mean_power_w > 20.0)

    @given(case=simulation_cases())
    @settings(max_examples=100, deadline=None)
    def test_uniform_raise_never_slows(self, case):
        """Raising every cap by 20 W never increases any job's time."""
        mix, caps, effs = case
        quiet = SimulationOptions(noise_std=0.0)
        base = simulate_mix(mix, caps, effs, MODEL, quiet)
        boosted = simulate_mix(mix, np.minimum(caps + 20.0, 240.0), effs, MODEL, quiet)
        assert np.all(
            boosted.job_elapsed_s <= base.job_elapsed_s + 1e-9
        )

    @given(case=simulation_cases())
    @settings(max_examples=100, deadline=None)
    def test_iteration_energy_sums_to_total(self, case):
        mix, caps, effs = case
        res = simulate_mix(mix, caps, effs, MODEL, SimulationOptions(noise_std=0.0))
        assert float(np.sum(res.iteration_energy_j)) == pytest.approx(
            res.total_energy_j, rel=1e-9
        )

    @given(case=simulation_cases(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_noise_preserves_work(self, case, seed):
        """Noise perturbs time, never the retired FLOPs."""
        mix, caps, effs = case
        quiet = simulate_mix(mix, caps, effs, MODEL, SimulationOptions(noise_std=0.0))
        noisy = simulate_mix(
            mix, caps, effs, MODEL, SimulationOptions(noise_std=0.01, seed=seed)
        )
        assert noisy.total_gflop == quiet.total_gflop

    @given(case=simulation_cases())
    @settings(max_examples=100, deadline=None)
    def test_job_time_is_max_host_time(self, case):
        """The BSP contract: each job's iteration time is at least every
        member host's compute time (noise-free)."""
        mix, caps, effs = case
        layout = mix.layout()
        quiet = SimulationOptions(noise_std=0.0, barrier_overhead_s=0.0)
        res = simulate_mix(mix, caps, effs, MODEL, quiet)
        caps_clamped = MODEL.power_model.clamp_cap(caps)
        freq = MODEL.frequencies(caps_clamped, layout, effs)
        t = MODEL.compute_time(freq, layout)
        job_time = res.iteration_times_s[0]
        assert np.all(t <= job_time[layout.job_index] + 1e-12)
