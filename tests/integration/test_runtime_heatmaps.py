"""Full-grid validation of the batched feedback-loop characterization.

The analytic heat maps (:func:`monitor_heatmap`, :func:`balancer_heatmap`)
are the fast path the experiments consume; the batched runtime variants
drive the *authentic* agent feedback loop for every Fig. 4/5 cell.  These
tests validate the two paths against each other at EVERY grid cell — not
a sampled subset — and pin the runtime grids bit-identical to the
per-cell serial helpers they replace.

Measured agreement on the flat reference cluster: monitor max relative
difference 1.8e-3, balancer max 1.8e-3 (mean 7.5e-4).  The asserted
tolerance of 5e-3 leaves headroom without masking regressions; it is the
figure documented in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.characterization import (
    balancer_heatmap,
    balancer_heatmap_runtime,
    balancer_power_for_config,
    monitor_heatmap,
    monitor_heatmap_runtime,
    monitor_power_for_config,
)
from repro.characterization.monitor_runs import DEFAULT_HEATMAP_INTENSITIES
from repro.experiments.resilience import controller_fault_study
from repro.hardware.cluster import Cluster
from repro.workload.kernel import WAITING_IMBALANCE_GRID, KernelConfig

#: Analytic-vs-feedback-loop agreement bound (measured max ~1.8e-3).
GRID_RTOL = 5e-3


@pytest.fixture(scope="module")
def flat_cluster():
    return Cluster(node_count=8, variation=None, seed=0)


@pytest.fixture(scope="module")
def node_ids():
    return np.arange(4)


class TestMonitorGrid:
    @pytest.fixture(scope="class")
    def grids(self, flat_cluster, node_ids):
        with telemetry.disabled():
            analytic = monitor_heatmap(flat_cluster, node_ids)
            runtime = monitor_heatmap_runtime(flat_cluster, node_ids)
        return analytic, runtime

    def test_grid_shape_and_axes(self, grids):
        analytic, runtime = grids
        assert runtime.values.shape == (
            len(DEFAULT_HEATMAP_INTENSITIES), len(WAITING_IMBALANCE_GRID)
        )
        assert runtime.intensities == analytic.intensities
        assert runtime.columns == analytic.columns
        assert "feedback loop" in runtime.title

    def test_every_cell_agrees_with_analytic(self, grids):
        analytic, runtime = grids
        rel = np.abs(runtime.values - analytic.values) / analytic.values
        assert float(np.max(rel)) < GRID_RTOL, (
            f"worst cell rel diff {float(np.max(rel)):.2e} "
            f"at {np.unravel_index(np.argmax(rel), rel.shape)}"
        )

    def test_cells_bit_identical_to_serial_helper(
        self, grids, flat_cluster, node_ids
    ):
        _, runtime = grids
        spots = [(0, 0), (3, 2), (7, 6)]
        for r, c in spots:
            config = KernelConfig(
                intensity=runtime.intensities[r],
                waiting_fraction=runtime.columns[c][0],
                imbalance=runtime.columns[c][1],
            )
            with telemetry.disabled():
                serial = monitor_power_for_config(
                    config, flat_cluster, node_ids
                )
            assert float(runtime.values[r, c]) == serial


class TestBalancerGrid:
    @pytest.fixture(scope="class")
    def grids(self, flat_cluster, node_ids):
        with telemetry.disabled():
            analytic = balancer_heatmap(flat_cluster, node_ids)
            runtime = balancer_heatmap_runtime(flat_cluster, node_ids)
        return analytic, runtime

    def test_every_cell_agrees_with_analytic(self, grids):
        analytic, runtime = grids
        rel = np.abs(runtime.values - analytic.values) / analytic.values
        assert float(np.max(rel)) < GRID_RTOL, (
            f"worst cell rel diff {float(np.max(rel)):.2e} "
            f"at {np.unravel_index(np.argmax(rel), rel.shape)}"
        )

    def test_balancer_never_exceeds_monitor(self, grids, flat_cluster, node_ids):
        """Metric (b) <= metric (a) cell-wise on the authentic path too."""
        _, runtime = grids
        with telemetry.disabled():
            monitor = monitor_heatmap_runtime(flat_cluster, node_ids)
        assert np.all(runtime.values <= monitor.values * (1.0 + GRID_RTOL))

    def test_cells_bit_identical_to_serial_helper(
        self, grids, flat_cluster, node_ids
    ):
        _, runtime = grids
        spots = [(1, 1), (5, 4)]
        for r, c in spots:
            config = KernelConfig(
                intensity=runtime.intensities[r],
                waiting_fraction=runtime.columns[c][0],
                imbalance=runtime.columns[c][1],
            )
            with telemetry.disabled():
                serial_mean, _ = balancer_power_for_config(
                    config, flat_cluster, node_ids
                )
            assert float(runtime.values[r, c]) == serial_mean


class TestControllerFaultStudy:
    @pytest.fixture(scope="class")
    def study(self):
        with telemetry.disabled():
            return controller_fault_study(
                scenarios=["budget-step", "stuck-caps", "sensor-blackout"],
                nodes=3,
                max_epochs=60,
            )

    def test_outcomes_cover_requested_scenarios(self, study):
        assert [o.scenario for o in study.outcomes] == [
            "budget-step", "stuck-caps", "sensor-blackout"
        ]
        assert study.host_count == 3
        assert study.reference_power_w > 0
        assert study.reference_epochs > 0

    def test_runtime_fault_classification(self, study):
        by_name = {o.scenario: o for o in study.outcomes}
        # Pure budget scenarios carry no runtime-injectable faults and ride
        # the batched reference physics unchanged.
        assert not by_name["budget-step"].runtime_faults
        assert by_name["budget-step"].power_delta_pct == pytest.approx(0.0)
        assert by_name["stuck-caps"].runtime_faults
        assert by_name["sensor-blackout"].runtime_faults

    def test_render_is_a_table(self, study):
        text = study.render()
        assert "fault-free" in text
        assert "stuck-caps" in text
        assert text.count("\n") >= 4
