"""Integration: the full stack driven through its public entry points."""

import numpy as np
import pytest

from repro import (
    ExperimentConfig,
    ExperimentGrid,
    check_takeaways,
    create_policy,
)
from repro.analysis.export import rows_to_csv
from repro.experiments.metrics import savings_grid


class TestPackageQuickstart:
    def test_readme_quickstart(self):
        """The README quick-start sequence runs exactly as documented."""
        grid = ExperimentGrid(ExperimentConfig.small(nodes_per_job=5, iterations=10))
        results = grid.run_all()
        report = check_takeaways(results)
        assert report.all_hold(), report.failed()

    def test_public_policy_api(self):
        policy = create_policy("MixedAdaptive")
        assert policy.system_power_aware and policy.application_aware


class TestGridConsistency:
    def test_budget_levels_order_performance(self, small_grid_results):
        """For every mix and dynamic policy, more budget is never slower
        (mean elapsed at min >= ideal >= max, to noise tolerance)."""
        for mix in {k[0] for k in small_grid_results.cells}:
            for policy in ("StaticCaps", "MixedAdaptive"):
                t_min = small_grid_results.cell(mix, "min", policy).run.result.mean_elapsed_s
                t_ideal = small_grid_results.cell(mix, "ideal", policy).run.result.mean_elapsed_s
                t_max = small_grid_results.cell(mix, "max", policy).run.result.mean_elapsed_s
                assert t_min >= t_ideal * 0.995, (mix, policy)
                assert t_ideal >= t_max * 0.995, (mix, policy)

    def test_energy_time_tradeoff_sane(self, small_grid_results):
        """No policy consumes more energy *and* more time than StaticCaps
        at the same budget (the policies never strictly lose)."""
        grid = savings_grid(small_grid_results)
        for key, savings in grid.items():
            strictly_worse = (
                savings.time_savings.mean < -0.01
                and savings.energy_savings.mean < -0.01
            )
            assert not strictly_worse, key

    def test_mean_power_within_physics(self, small_grid_results):
        """Measured powers stay inside [floor-ish, TDP] per host."""
        for cell in small_grid_results.cells.values():
            power = cell.run.result.host_mean_power_w
            assert np.all(power <= 240.0 + 1e-6)
            assert np.all(power >= 50.0)

    def test_rows_export_csv(self, small_grid_results):
        csv_text = rows_to_csv(small_grid_results.rows())
        assert csv_text.count("\n") == 91  # header + 90 cells

    def test_allocations_match_caps_run(self, small_grid_results):
        """The allocation recorded on a cell is what the simulator saw
        (for application-agnostic policies, which run uncapped by the
        runtime)."""
        cell = small_grid_results.cell("LowPower", "min", "StaticCaps")
        caps = cell.run.allocation.caps_w
        power = cell.run.result.host_mean_power_w
        assert np.all(power <= caps + 1e-6)


class TestScaleInvariance:
    def test_shapes_stable_across_scales(self):
        """Doubling the per-job node count leaves the qualitative outcome
        unchanged (per-node budgets and savings ordering)."""
        outcomes = {}
        for npj in (5, 10):
            grid = ExperimentGrid(ExperimentConfig.small(nodes_per_job=npj,
                                                         iterations=10))
            results = grid.run_all(mixes=["WastefulPower"])
            sg = savings_grid(results)
            outcomes[npj] = sg[("WastefulPower", "max", "MixedAdaptive")].energy_savings.mean
        assert outcomes[5] == pytest.approx(outcomes[10], abs=0.03)
        assert outcomes[10] > 0.05
