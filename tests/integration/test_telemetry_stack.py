"""Integration tests: telemetry emitted by real stack runs.

These tests exercise whole subsystems — the site simulation, the runtime
controller — and assert on what shows up in the global telemetry
pipeline, i.e. exactly what an operator tailing the event log or reading
the metrics snapshot would see.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival, run_site_simulation
from repro.runtime.controller import Controller
from repro.runtime.power_balancer import PowerBalancerAgent
from repro.workload.job import Job
from repro.workload.kernel import KernelConfig


@pytest.fixture(autouse=True)
def _fresh_global_state():
    """Each test reads a telemetry pipeline it alone populated."""
    telemetry.reset()
    yield
    telemetry.reset()


def _arrival(name, t, nodes=4):
    return Arrival(
        time_s=t,
        request=JobRequest(
            name=name,
            config=KernelConfig(intensity=8.0),
            node_count=nodes,
            iterations=5,
        ),
    )


class TestSiteSimulationTelemetry:
    @pytest.fixture()
    def result(self):
        cluster = Cluster(node_count=12, variation=None, seed=0)
        return run_site_simulation(
            [_arrival(f"j{i}", 0.0) for i in range(3)],
            cluster,
            create_policy("MixedAdaptive"),
            budget_w=8 * 220.0,
        )

    def test_emits_admission_and_batch_events(self, result):
        bus = telemetry.get_bus()
        admissions = bus.events(kind="admission_decision",
                                source="manager.admission")
        batches = bus.events(kind="batch_complete", source="manager.site")
        assert len(admissions) >= 1
        assert len(batches) == len(result.batches)
        assert bus.events(kind="simulation_complete",
                          source="manager.site")

    def test_utilization_gauge_nonzero(self, result):
        snap = telemetry.get_registry().snapshot()
        assert snap["gauges"]["manager.site.utilization"] > 0.0
        assert snap["counters"]["manager.site.jobs_completed"] == len(
            result.completed
        )

    def test_batch_duration_histogram_populated(self, result):
        hist = telemetry.get_registry().snapshot()["histograms"]
        duration = hist["manager.site.batch_duration_s"]
        assert duration["count"] == len(result.batches)
        assert duration["max"] > 0.0


class TestControllerTelemetry:
    def test_run_records_timer_and_events(self, execution_model):
        job = Job(
            name="probe",
            config=KernelConfig(intensity=8.0, waiting_fraction=0.5,
                                imbalance=2),
            node_count=4,
        )
        agent = PowerBalancerAgent(job_budget_w=4 * 240.0)
        controller = Controller(job, np.ones(4), agent, model=execution_model)
        report = controller.run(max_epochs=80)

        snap = telemetry.get_registry().snapshot()
        run_s = snap["histograms"]["runtime.controller.run_s"]
        assert run_s["count"] == 1
        assert run_s["max"] > 0.0
        events = telemetry.get_bus().events(kind="run_complete",
                                            source="runtime.controller")
        assert len(events) == 1
        assert events[0].payload["epochs"] == len(controller.history)
        assert report.telemetry["epochs"] == len(controller.history)

    def test_disabled_run_leaves_no_trace_and_plain_report(
        self, execution_model
    ):
        job = Job(name="quiet", config=KernelConfig(intensity=8.0),
                  node_count=4)
        agent = PowerBalancerAgent(job_budget_w=4 * 240.0)
        controller = Controller(job, np.ones(4), agent, model=execution_model)
        with telemetry.disabled():
            report = controller.run(max_epochs=40)
        assert len(telemetry.get_registry()) == 0
        assert len(telemetry.get_bus().events()) == 0
        assert report.telemetry == {}
