"""Integration: every shipped example runs clean.

Examples are documentation that executes; bit-rot there is a user-facing
bug. Each script is run in a subprocess and must exit zero with sensible
output markers.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script -> a string its output must contain.
EXPECTED = {
    "quickstart.py": "Paper takeaways, machine-checked:",
    "cluster_characterization.py": "Table III",
    "policy_comparison.py": "Measured outcomes",
    "facility_planning.py": "stranded",
    "online_replanning.py": "Caps converged: True",
    "site_operations.py": "Admission against",
    "telemetry_tour.py": "Metrics snapshot",
    "fault_tour.py": "Resilience suite",
}


@pytest.mark.parametrize("script", sorted(EXPECTED), ids=lambda s: s)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED[script] in result.stdout
    assert "Traceback" not in result.stderr


def test_readme_api_snippet():
    """The README's lower-level API walkthrough works as printed."""
    from repro import create_policy, MixBuilder
    from repro.hardware import Cluster
    from repro.manager import Scheduler, PowerManager
    from repro.characterization import derive_budgets

    cluster = Cluster(node_count=100, seed=2021)
    mix = MixBuilder(nodes_per_job=5, iterations=10).build("WastefulPower")
    scheduled = Scheduler(cluster).allocate(mix)
    manager = PowerManager()
    char = manager.characterize(scheduled)
    budgets = derive_budgets(char)
    run = manager.launch(
        scheduled, create_policy("MixedAdaptive"), budgets.ideal_w,
        characterization=char,
    )
    summary = run.result.summary()
    assert summary["total_energy_j"] > 0
    assert summary["budget_utilization"] <= 1.001
