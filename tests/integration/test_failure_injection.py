"""Failure injection: the stack under misbehaving components.

A production power stack must contain faults, not propagate them: rogue
agents, corrupt characterizations, pathological workload shapes, and
extreme budgets.  These tests inject each and assert the containment
behaviour (clamping, validation errors, graceful degradation).
"""

import numpy as np
import pytest

from repro.core.registry import default_policies
from repro.runtime.agent import Agent
from repro.runtime.controller import Controller
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig
from tests.unit.test_policies_basic import make_char


class RogueAgent(Agent):
    """An agent that returns out-of-range, even non-physical limits."""

    name = "rogue"

    def __init__(self, limits):
        self._limits = np.asarray(limits, dtype=float)

    def adjust(self, sample):
        return self._limits.copy()


class TestRogueAgent:
    def test_controller_clamps_absurd_limits(self, execution_model):
        """Limits of 10 kW and 1 W both land inside the RAPL range before
        touching the platform."""
        job = Job(name="r", config=KernelConfig(intensity=8.0), node_count=2)
        agent = RogueAgent([10_000.0, 1.0])
        ctl = Controller(job, np.ones(2), agent, model=execution_model)
        ctl.run(max_epochs=3, min_epochs=3)
        sample = ctl.steady_state_sample()
        assert sample.power_limit_w[0] == pytest.approx(240.0)
        assert sample.power_limit_w[1] == pytest.approx(136.0)

    def test_physics_stays_finite_under_rogue_limits(self, execution_model):
        job = Job(name="r", config=KernelConfig(intensity=0.25), node_count=2)
        agent = RogueAgent([1e9, 1e-9])
        ctl = Controller(job, np.ones(2), agent, model=execution_model)
        report = ctl.run(max_epochs=3, min_epochs=3)
        assert np.all(np.isfinite(report.energy_j()))
        assert np.all(report.mean_freq_ghz() > 0)


class TestCorruptCharacterization:
    def test_needed_above_monitor_still_safe(self):
        """A corrupt characterization (needed > observed) must not push
        any policy outside the RAPL range or the budget."""
        char = make_char(
            monitor=[180, 180],
            needed=[239, 239],  # nonsense: needs more than it draws
            boundaries=[0, 2],
        )
        for policy in default_policies():
            alloc = policy.allocate(char, 400.0)
            assert np.all(alloc.caps_w >= 136.0 - 1e-9)
            assert np.all(alloc.caps_w <= 240.0 + 1e-9)
            if policy.system_power_aware:
                assert alloc.within_budget(), policy.name

    def test_degenerate_equal_characterization(self):
        """All hosts identical: policies reduce to uniform allocations."""
        char = make_char(
            monitor=[200, 200, 200, 200],
            needed=[200, 200, 200, 200],
            boundaries=[0, 2, 4],
        )
        for policy in default_policies():
            alloc = policy.allocate(char, 800.0)
            assert np.ptp(alloc.caps_w) < 1e-6, policy.name


class TestPathologicalWorkloads:
    def test_single_node_mix(self, execution_model):
        mix = WorkloadMix(
            name="tiny",
            jobs=(Job(name="one", config=KernelConfig(intensity=8.0),
                      node_count=1, iterations=3),),
        )
        result = simulate_mix(
            mix, np.array([200.0]), np.ones(1), execution_model,
            SimulationOptions(noise_std=0.0),
        )
        assert result.mean_elapsed_s > 0

    def test_extreme_intensity(self, execution_model):
        """Intensity far beyond the calibration grid stays physical."""
        mix = WorkloadMix(
            name="hot",
            jobs=(Job(name="j", config=KernelConfig(intensity=10_000.0),
                      node_count=2, iterations=2),),
        )
        result = simulate_mix(
            mix, np.full(2, 240.0), np.ones(2), execution_model,
            SimulationOptions(noise_std=0.0),
        )
        assert np.all(np.isfinite(result.iteration_times_s))
        assert np.all(result.host_mean_power_w <= 240.0 + 1e-6)

    def test_tiny_work_quantum(self, execution_model):
        """Microscopic iterations: barrier overhead dominates but nothing
        degenerates."""
        config = KernelConfig(intensity=8.0, common_traffic_gb=1e-6)
        mix = WorkloadMix(
            name="micro",
            jobs=(Job(name="j", config=config, node_count=2, iterations=3),),
        )
        result = simulate_mix(
            mix, np.full(2, 200.0), np.ones(2), execution_model,
            SimulationOptions(noise_std=0.0),
        )
        assert np.all(result.iteration_times_s > 0)
        assert np.all(np.isfinite(result.host_mean_power_w))


class TestExtremeBudgets:
    def test_budget_below_floor_degenerates_uniform(self):
        """A budget below hosts x floor: every policy pins at the floor
        and the run is still well-defined (the paper: 'power caps less
        than min result in all policies producing the same
        configuration')."""
        char = make_char(
            monitor=[230, 210], needed=[220, 200], boundaries=[0, 2]
        )
        caps = {}
        for policy in default_policies():
            if not policy.system_power_aware:
                continue
            alloc = policy.allocate(char, 100.0)  # 50 W/host << 136 floor
            caps[policy.name] = alloc.caps_w
        for name, c in caps.items():
            np.testing.assert_allclose(c, 136.0, err_msg=name)

    def test_gigantic_budget_capped_at_tdp(self):
        char = make_char(
            monitor=[230, 210], needed=[220, 200], boundaries=[0, 2]
        )
        for policy in default_policies():
            alloc = policy.allocate(char, 1e9)
            assert np.all(alloc.caps_w <= 240.0 + 1e-9), policy.name


class TestRaplStress:
    def test_many_wraps_accumulate_exactly(self):
        """Hundreds of counter wraps with regular reads lose nothing."""
        from repro.hardware.rapl import RaplDomain
        from repro.hardware.msr import MsrFile

        domain = RaplDomain(MsrFile())
        total = 0.0
        rng = np.random.default_rng(0)
        for _ in range(300):
            chunk = float(rng.uniform(10_000.0, 60_000.0))
            domain.accumulate_energy(chunk)
            total += chunk
            assert domain.read_energy_j() == pytest.approx(total, rel=1e-9)

    def test_quantisation_error_bounded(self):
        """Per-accumulation quantisation never exceeds one energy unit."""
        from repro.hardware.rapl import RaplDomain
        from repro.hardware.msr import MsrFile

        domain = RaplDomain(MsrFile())
        total = 0.0
        for i in range(1000):
            domain.accumulate_energy(0.001)
            total += 0.001
        assert domain.read_energy_j() == pytest.approx(total, abs=1000 * 2**-16)
