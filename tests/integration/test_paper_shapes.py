"""Integration: quantitative agreement with the paper's published values.

These tests pin the reproduction to the numbers a reader can extract from
the paper — heat-map cells, cluster sizes, budget ranges, and the headline
savings — at the tolerances EXPERIMENTS.md documents.
"""

import numpy as np
import pytest

from repro.characterization.balancer_runs import balancer_heatmap
from repro.characterization.clustering import survey_and_cluster
from repro.characterization.monitor_runs import monitor_heatmap
from repro.experiments.metrics import savings_grid
from repro.hardware.cluster import Cluster


@pytest.fixture(scope="module")
def test_nodes():
    """100 test nodes, as in the paper's characterization runs."""
    cluster = Cluster(node_count=2000, seed=2021)
    survey = survey_and_cluster(cluster, cap_w=140.0, kappa=1.0)
    medium = survey.cluster_node_ids("medium")
    return cluster, medium[:100]


#: Fig. 4's ymm heat map, transcribed from the paper (W per node).
FIG4_PAPER = {
    (0.25, 0.0, 1): 214, (0.5, 0.0, 1): 212, (1.0, 0.0, 1): 209,
    (2.0, 0.0, 1): 213, (4.0, 0.0, 1): 223, (8.0, 0.0, 1): 232,
    (16.0, 0.0, 1): 222, (32.0, 0.0, 1): 216,
    (8.0, 0.75, 3): 222, (8.0, 0.25, 2): 231, (16.0, 0.5, 2): 220,
}

#: Selected Fig. 5 cells (W per node).
FIG5_PAPER = {
    (0.25, 0.0, 1): 214, (1.0, 0.0, 1): 207, (8.0, 0.75, 3): 191,
    (8.0, 0.25, 2): 213, (8.0, 0.5, 2): 199, (16.0, 0.75, 3): 190,
}


class TestFig4:
    @pytest.fixture(scope="class")
    def heatmap(self, test_nodes, execution_model):
        cluster, ids = test_nodes
        return monitor_heatmap(cluster, ids, model=execution_model)

    def test_balanced_column_within_3w(self, heatmap):
        """The calibration anchors: 0 %-waiting cells match to ~3 W."""
        for (intensity, waiting, imbalance), watts in FIG4_PAPER.items():
            if imbalance != 1:
                continue
            cell = heatmap.cell(intensity, waiting, imbalance)
            assert cell == pytest.approx(watts, abs=3.0), (intensity, waiting)

    def test_imbalanced_cells_within_8w(self, heatmap):
        for (intensity, waiting, imbalance), watts in FIG4_PAPER.items():
            if imbalance == 1:
                continue
            cell = heatmap.cell(intensity, waiting, imbalance)
            assert cell == pytest.approx(watts, abs=8.0), (intensity, waiting)

    def test_power_peak_at_intensity_8(self, heatmap):
        balanced = heatmap.values[:, 0]
        assert heatmap.intensities[int(np.argmax(balanced))] == 8.0

    def test_insensitive_to_imbalance(self, heatmap):
        """Row spread across waiting columns stays within ~12 W."""
        spreads = np.ptp(heatmap.values, axis=1)
        assert np.max(spreads) < 13.0


class TestFig5:
    @pytest.fixture(scope="class")
    def heatmap(self, test_nodes, execution_model):
        cluster, ids = test_nodes
        return balancer_heatmap(cluster, ids, model=execution_model)

    def test_selected_cells_within_10w(self, heatmap):
        for (intensity, waiting, imbalance), watts in FIG5_PAPER.items():
            cell = heatmap.cell(intensity, waiting, imbalance)
            assert cell == pytest.approx(watts, abs=10.0), (intensity, waiting)

    def test_vertical_bands(self, heatmap):
        """Needed power decreases monotonically with the waiting
        percentage — the paper's central Fig. 5 observation."""
        cols = list(heatmap.columns)
        c0 = cols.index((0.0, 1))
        c25 = cols.index((0.25, 2))
        c50 = cols.index((0.5, 2))
        c75 = cols.index((0.75, 2))
        for row in heatmap.values:
            assert row[c0] >= row[c25] >= row[c50] >= row[c75]

    def test_needed_below_monitor(self, heatmap, test_nodes, execution_model):
        cluster, ids = test_nodes
        monitor = monitor_heatmap(cluster, ids, model=execution_model)
        assert np.all(heatmap.values <= monitor.values + 1e-6)


class TestFig6:
    def test_cluster_sizes_match_paper(self):
        """522 / 918 / 560 within a +-5 % band."""
        cluster = Cluster(node_count=2000, seed=2021)
        survey = survey_and_cluster(cluster, cap_w=140.0, kappa=1.0)
        sizes = survey.cluster_sizes()
        assert sizes["low"] == pytest.approx(522, abs=30)
        assert sizes["medium"] == pytest.approx(918, abs=30)
        assert sizes["high"] == pytest.approx(560, abs=30)

    def test_medium_supports_paper_experiments(self):
        cluster = Cluster(node_count=2000, seed=2021)
        survey = survey_and_cluster(cluster, cap_w=140.0, kappa=1.0)
        assert survey.cluster_sizes()["medium"] >= 900


class TestHeadlines:
    """The abstract's quantitative claims, at test scale."""

    def test_up_to_7pct_time_savings(self, small_grid_results):
        grid = savings_grid(small_grid_results)
        best = max(s.time_savings.mean for s in grid.values())
        assert 0.05 <= best <= 0.12  # paper: "up to 7%"

    def test_up_to_11pct_energy_savings(self, small_grid_results):
        grid = savings_grid(small_grid_results)
        best = max(s.energy_savings.mean for s in grid.values())
        assert 0.08 <= best <= 0.16  # paper: "up to 11%"

    def test_wasteful_power_max_energy_champion(self, small_grid_results):
        """The paper's marker-(d): the big energy win is WastefulPower at
        a generous budget under MixedAdaptive."""
        grid = savings_grid(small_grid_results)
        s = grid[("WastefulPower", "max", "MixedAdaptive")]
        assert s.energy_savings.mean > 0.08

    def test_table3_budget_ranges(self, small_grid):
        """Per-node budget levels fall in the paper's Table III ranges
        (numbers scaled to per-node: paper min 151-186 W, ideal 160-197 W,
        max ~209-232 W)."""
        for mix_name in small_grid.config.mixes:
            prepared = small_grid.prepare_mix(mix_name)
            hosts = prepared.characterization.host_count
            b = prepared.budgets
            assert 140.0 <= b.min_w / hosts <= 195.0, mix_name
            assert 155.0 <= b.ideal_w / hosts <= 216.0, mix_name
            assert 205.0 <= b.max_w / hosts <= 242.0, mix_name
