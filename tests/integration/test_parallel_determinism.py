"""Parallel and cached runs must be bit-identical to serial runs.

The contract the whole parallel layer is built on: worker count, cache
hits, and replay order may change *wall-clock time* but never a single
bit of any result.
"""

import numpy as np
import pytest

from repro.experiments.grid import ExperimentConfig, ExperimentGrid
from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival, run_site_simulation
from repro.parallel import activate_cache, deactivate_cache
from repro.parallel.tasks import simulate_cap_ladder, site_replays
from repro.workload.kernel import KernelConfig


@pytest.fixture()
def tiny_grid_config():
    return ExperimentConfig.small(nodes_per_job=4, iterations=10)


def _grid_results(config, **kwargs):
    return ExperimentGrid(config).run_all(mixes=["LowPower"], **kwargs)


class TestGridDeterminism:
    def test_workers_four_matches_serial_bit_for_bit(self, tiny_grid_config):
        serial = _grid_results(tiny_grid_config, workers=1)
        pooled = _grid_results(tiny_grid_config, workers=4)
        assert set(serial.cells) == set(pooled.cells)
        for key in serial.cells:
            a = serial.cells[key].run
            b = pooled.cells[key].run
            assert a.result == b.result, key  # exact MixRunResult equality
            np.testing.assert_array_equal(a.allocation.caps_w,
                                          b.allocation.caps_w)

    def test_cached_rerun_matches_fresh_bit_for_bit(self, tiny_grid_config,
                                                    tmp_path):
        fresh = _grid_results(tiny_grid_config, workers=1)
        try:
            cache = activate_cache(cache_dir=tmp_path)
            warm_miss = _grid_results(tiny_grid_config, workers=1)
            warm_hit = _grid_results(tiny_grid_config, workers=1)
            assert cache.stats()["hits"] > 0
        finally:
            deactivate_cache()
        for key in fresh.cells:
            assert warm_miss.cells[key].run.result == fresh.cells[key].run.result
            assert warm_hit.cells[key].run.result == fresh.cells[key].run.result

    def test_disk_cache_hits_across_instances(self, tiny_grid_config, tmp_path):
        try:
            activate_cache(cache_dir=tmp_path)
            _grid_results(tiny_grid_config, workers=1)
        finally:
            deactivate_cache()
        try:
            cache = activate_cache(cache_dir=tmp_path)  # fresh memory tier
            _grid_results(tiny_grid_config, workers=1)
            assert cache.stats()["hits"] > 0
        finally:
            deactivate_cache()


class TestLadderDeterminism:
    def test_cap_ladder_worker_count_invariant(self, small_grid):
        prepared = small_grid.prepare_mix("LowPower")
        mix = prepared.scheduled.mix
        caps = [180.0, 210.0, 240.0]
        serial = simulate_cap_ladder(mix, prepared.scheduled.efficiencies,
                                     caps, workers=1)
        pooled = simulate_cap_ladder(mix, prepared.scheduled.efficiencies,
                                     caps, workers=3)
        for a, b in zip(serial, pooled):
            assert a == b


def _arrival_stream(nodes, count=4):
    return [
        Arrival(
            time_s=float(i),
            request=JobRequest(
                f"replay-job-{i}",
                KernelConfig(intensity=float(2 ** (1 + i % 3)),
                             waiting_fraction=0.25 * (i % 2),
                             imbalance=1 + i % 2),
                node_count=nodes,
                iterations=10,
            ),
        )
        for i in range(count)
    ]


class TestSiteReplayDeterminism:
    def test_replays_worker_count_invariant(self, small_grid):
        nodes = 4
        cluster = small_grid.partition.subset(np.arange(3 * nodes))
        arrivals = _arrival_stream(nodes)
        serial = site_replays(arrivals, cluster, "MixedAdaptive", 2400.0,
                              replays=3, workers=1)
        pooled = site_replays(arrivals, cluster, "MixedAdaptive", 2400.0,
                              replays=3, workers=3)
        for a, b in zip(serial, pooled):
            assert a.batches == b.batches
            assert a.total_energy_j == b.total_energy_j
            assert a.job_turnaround_s == b.job_turnaround_s

    def test_replays_use_independent_noise(self, small_grid):
        nodes = 4
        cluster = small_grid.partition.subset(np.arange(3 * nodes))
        runs = site_replays(_arrival_stream(nodes), cluster, "MixedAdaptive",
                            2400.0, replays=3, workers=1)
        energies = {r.total_energy_j for r in runs}
        assert len(energies) == 3  # distinct seeds, distinct noise

    def test_rerun_of_same_arrivals_is_identical(self, small_grid):
        """Regression: run_site_simulation used to mutate the caller's
        JobRequest lifecycle states, so a second run of the same arrival
        stream saw every job already COMPLETED and produced zero
        batches."""
        from repro.core.registry import create_policy
        from repro.manager.queue import JobState

        nodes = 4
        cluster = small_grid.partition.subset(np.arange(3 * nodes))
        arrivals = _arrival_stream(nodes)
        first = run_site_simulation(arrivals, cluster,
                                    create_policy("MixedAdaptive"), 2400.0)
        second = run_site_simulation(arrivals, cluster,
                                     create_policy("MixedAdaptive"), 2400.0)
        assert first.batches  # the stream actually ran
        assert second.batches == first.batches
        assert second.completed == first.completed
        assert all(a.request.state is JobState.PENDING for a in arrivals)

    def test_rejects_nonpositive_replays(self, small_grid):
        cluster = small_grid.partition.subset(np.arange(12))
        with pytest.raises(ValueError, match="replays"):
            site_replays(_arrival_stream(4), cluster, "MixedAdaptive",
                         2400.0, replays=0)
