"""Integration: the balancer feedback loop agrees with the analytic path.

The characterization pipeline uses an analytic balancer steady state for
speed; the runtime package implements the authentic feedback loop.  These
tests drive both against the same jobs and require agreement — the
cross-validation that justifies the fast path.
"""

import numpy as np
import pytest

from repro.characterization.balancer_runs import (
    balancer_power_for_config,
    needed_caps_for_job,
)
from repro.characterization.mix_characterization import characterize_mix
from repro.hardware.cluster import Cluster
from repro.runtime.power_balancer import BalancerOptions
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


@pytest.fixture(scope="module")
def flat_cluster_mod():
    return Cluster(node_count=16, variation=None, seed=0)


class TestAgreement:
    @pytest.mark.parametrize("waiting,imbalance", [(0.25, 2), (0.5, 2), (0.5, 3), (0.75, 3)])
    def test_imbalanced_configs(self, flat_cluster_mod, execution_model,
                                waiting, imbalance):
        """Feedback-loop steady-state power matches the analytic needed
        power within a few watts per host."""
        config = KernelConfig(
            intensity=8.0, waiting_fraction=waiting, imbalance=imbalance
        )
        ids = np.arange(8)
        job = Job(name="x", config=config, node_count=8)
        analytic = needed_caps_for_job(job, flat_cluster_mod.efficiencies[ids],
                                       execution_model)
        _, loop_power = balancer_power_for_config(
            config, flat_cluster_mod, ids, execution_model,
        )
        # Mean powers agree within 4 % — the loop quantises its cuts.
        assert np.mean(loop_power) == pytest.approx(np.mean(analytic), rel=0.04)

    def test_balanced_config_no_cuts(self, flat_cluster_mod, execution_model):
        """On a balanced job both paths report the unconstrained draw."""
        config = KernelConfig(intensity=8.0)
        ids = np.arange(8)
        mean_power, loop_power = balancer_power_for_config(
            config, flat_cluster_mod, ids, execution_model,
        )
        uncapped = execution_model.power_model.uncapped_power(config.kappa)
        assert mean_power == pytest.approx(uncapped, rel=0.02)

    def test_idealised_harvest_agreement(self, flat_cluster_mod, execution_model):
        """With harvest_fraction=1 both paths cut waiting hosts to the
        critical-path minimum."""
        config = KernelConfig(intensity=16.0, waiting_fraction=0.5, imbalance=3)
        ids = np.arange(8)
        job = Job(name="x", config=config, node_count=8)
        mix = WorkloadMix(name="x", jobs=(job,))
        eff = flat_cluster_mod.efficiencies[ids]
        analytic = characterize_mix(
            mix, eff, execution_model, harvest_fraction=1.0
        ).needed_power_w
        _, loop_power = balancer_power_for_config(
            config, flat_cluster_mod, ids, execution_model,
            options=BalancerOptions(harvest_fraction=1.0),
        )
        assert np.mean(loop_power) == pytest.approx(np.mean(analytic), rel=0.05)

    def test_loop_preserves_critical_path_time(self, flat_cluster_mod, execution_model):
        """The balancer's whole contract: iteration time at steady state
        matches the unconstrained iteration time (within its margin)."""
        from repro.runtime.controller import Controller
        from repro.runtime.power_balancer import PowerBalancerAgent

        config = KernelConfig(intensity=16.0, waiting_fraction=0.5, imbalance=2)
        job = Job(name="x", config=config, node_count=8)
        eff = flat_cluster_mod.efficiencies[:8]

        # Unconstrained iteration time.
        from repro.runtime.monitor import MonitorAgent

        mon = Controller(job, eff, MonitorAgent(), model=execution_model)
        mon.run(max_epochs=2, min_epochs=2)
        t_unconstrained = mon.steady_state_sample().epoch_time_s

        agent = PowerBalancerAgent(job_budget_w=8 * 240.0)
        ctl = Controller(job, eff, agent, model=execution_model)
        ctl.run(max_epochs=300)
        t_balanced = ctl.steady_state_sample().epoch_time_s
        assert t_balanced == pytest.approx(t_unconstrained, rel=0.03)
