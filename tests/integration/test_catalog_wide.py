"""Catalog-wide sanity: every one of the 126 configurations works.

The characterization grid (Figs. 4-5) and the mixes draw from the full
configuration catalog; this sweep runs every configuration through
characterization, budget derivation, allocation, and execution, asserting
the invariants that must hold for *any* workload a user could build.
"""

import numpy as np
import pytest

from repro.characterization.budgets import derive_budgets
from repro.characterization.mix_characterization import characterize_mix
from repro.core.registry import create_policy
from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.catalog import build_catalog
from repro.workload.job import Job, WorkloadMix

MODEL = ExecutionModel()
CATALOG = build_catalog()


@pytest.mark.parametrize(
    "config", list(CATALOG), ids=lambda c: c.label()
)
def test_config_end_to_end(config):
    """Characterize, budget, allocate, and run one configuration."""
    job = Job(name="cfg", config=config, node_count=4, iterations=2)
    mix = WorkloadMix(name="cfg", jobs=(job,))
    eff = np.ones(4)

    char = characterize_mix(mix, eff, MODEL)
    assert np.all(char.needed_power_w <= char.monitor_power_w + 1e-9)
    assert np.all(char.monitor_power_w <= 240.0 + 1e-6)

    budgets = derive_budgets(char)
    assert budgets.min_w <= budgets.ideal_w <= budgets.max_w

    policy = create_policy("MixedAdaptive")
    alloc = policy.allocate(char, budgets.ideal_w)
    assert alloc.within_budget()

    result = simulate_mix(
        mix, alloc.caps_w, eff, MODEL, SimulationOptions(noise_std=0.0),
    )
    assert np.all(np.isfinite(result.iteration_times_s))
    assert result.total_energy_j > 0
    assert result.mean_system_power_w <= budgets.ideal_w * 1.001
