"""Integration: online re-planning converges to the offline plan.

The paper emulates execution-time coordination with pre-characterization;
the online manager implements the real thing.  If both are correct they
must agree: after its first re-planning epoch, the online loop's caps
should match what the offline (pre-characterized) pipeline would program
for the same mix and budget.
"""

import numpy as np
import pytest

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager.online import OnlinePowerManager
from repro.manager.power_manager import PowerManager, apply_job_runtime
from repro.manager.scheduler import Scheduler
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


@pytest.fixture(scope="module")
def environment():
    mix = WorkloadMix(
        name="consistency",
        jobs=(
            Job(name="hungry", config=KernelConfig(intensity=32.0),
                node_count=6, iterations=40),
            Job(
                name="waster",
                config=KernelConfig(intensity=8.0, waiting_fraction=0.5,
                                    imbalance=2),
                node_count=6,
                iterations=40,
            ),
        ),
    )
    cluster = Cluster(node_count=24, seed=5)
    scheduled = Scheduler(cluster).allocate(mix)
    return scheduled


@pytest.mark.parametrize("policy_name", ["StaticCaps", "MinimizeWaste",
                                         "JobAdaptive", "MixedAdaptive"])
def test_online_matches_offline_plan(environment, policy_name):
    scheduled = environment
    budget = 12 * 195.0
    manager = PowerManager()
    char = manager.characterize(scheduled)
    policy = create_policy(policy_name)

    offline_caps = policy.allocate(char, budget).caps_w
    if policy.application_aware:
        offline_caps = apply_job_runtime(char, offline_caps)
    offline_caps = manager.model.power_model.clamp_cap(offline_caps)

    online = OnlinePowerManager(iterations_per_epoch=5)
    run = online.run(scheduled, create_policy(policy_name), budget,
                     epochs=3, noise_std=0.0)
    online_caps = run.epochs[-1].caps_w

    np.testing.assert_allclose(online_caps, offline_caps, atol=0.5)


def test_online_outcome_matches_offline_outcome(environment):
    """Beyond caps: the steady-state performance matches too."""
    scheduled = environment
    budget = 12 * 195.0
    manager = PowerManager()
    char = manager.characterize(scheduled)
    offline = manager.launch(
        scheduled, create_policy("MixedAdaptive"), budget,
        characterization=char,
    )
    per_iter_offline = offline.result.mean_elapsed_s / 40

    online = OnlinePowerManager(iterations_per_epoch=5)
    run = online.run(scheduled, create_policy("MixedAdaptive"), budget,
                     epochs=4, noise_std=0.0)
    per_iter_online = run.epochs[-1].result.mean_elapsed_s / 5

    assert per_iter_online == pytest.approx(per_iter_offline, rel=0.02)
