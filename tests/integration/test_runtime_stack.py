"""Integration: controller + agents + RAPL plumbing working together."""

import numpy as np
import pytest

from repro.hardware.node import Node
from repro.hardware.rapl import RaplPackage
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.manager.scheduler import Scheduler
from repro.runtime.controller import Controller
from repro.runtime.power_balancer import PowerBalancerAgent
from repro.runtime.power_governor import PowerGovernorAgent
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig


class TestRaplActuationPath:
    def test_controller_limits_are_programmable(self, execution_model):
        """Every limit the balancer converges to can be programmed
        through the RAPL register path bit-exactly (to quantisation)."""
        job = Job(
            name="x",
            config=KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2),
            node_count=4,
        )
        agent = PowerBalancerAgent(job_budget_w=4 * 220.0)
        ctl = Controller(job, np.ones(4), agent, model=execution_model)
        ctl.run(max_epochs=120)
        for limit in ctl.final_limits_w():
            node = Node(node_id=0)
            programmed = node.set_power_cap(float(limit))
            assert programmed == pytest.approx(limit, abs=0.25)  # 2x 1/8 W

    def test_energy_accounting_through_rapl(self, execution_model):
        """Feeding simulated energy through the RAPL accumulator and
        reading it back agrees with the simulator's total."""
        job = Job(name="x", config=KernelConfig(intensity=8.0), node_count=1,
                  iterations=3)
        from repro.runtime.monitor import MonitorAgent

        ctl = Controller(job, np.ones(1), MonitorAgent(), model=execution_model)
        report = ctl.run(max_epochs=3, min_epochs=3)
        package = RaplPackage()
        package.accumulate_node_energy(report.hosts[0].energy_j)
        assert package.read_node_energy_j() == pytest.approx(
            report.hosts[0].energy_j, rel=1e-6
        )


class TestQueueToExecution:
    def test_submission_lifecycle(self, small_cluster, execution_model):
        """Submit -> allocate -> run -> complete through the real layers."""
        queue = JobQueue()
        queue.submit(
            JobRequest(
                name="user-job",
                config=KernelConfig(intensity=16.0),
                node_count=8,
                iterations=5,
            )
        )
        request = queue.pending()[0]
        mix = WorkloadMix(name="session", jobs=(request.to_job(),))
        scheduled = Scheduler(small_cluster).allocate(mix)
        queue.mark("user-job", JobState.ALLOCATED)

        from repro.core.registry import create_policy
        from repro.manager.power_manager import PowerManager

        queue.mark("user-job", JobState.RUNNING)
        run = PowerManager(execution_model).launch(
            scheduled, create_policy("StaticCaps"), 8 * 200.0
        )
        queue.mark("user-job", JobState.COMPLETED)
        assert queue.get("user-job").state is JobState.COMPLETED
        assert run.result.mean_elapsed_s > 0


class TestGovernorVersusBalancer:
    def test_balancer_beats_governor_on_imbalanced_job(self, execution_model):
        """Same job budget: the balancer finishes iterations faster than
        the uniform governor when the job is imbalanced — GEOPM's raison
        d'etre and the paper's application-awareness premise."""
        config = KernelConfig(intensity=32.0, waiting_fraction=0.5, imbalance=2)
        job = Job(name="x", config=config, node_count=6)
        eff = np.ones(6)
        budget = 6 * 170.0

        gov = Controller(job, eff, PowerGovernorAgent(budget), model=execution_model)
        gov.run(max_epochs=3, min_epochs=3)
        t_governor = gov.steady_state_sample().epoch_time_s

        bal_agent = PowerBalancerAgent(job_budget_w=budget)
        bal = Controller(job, eff, bal_agent, model=execution_model)
        bal.run(max_epochs=200)
        t_balancer = bal.steady_state_sample().epoch_time_s

        assert t_balancer < t_governor * 0.99

    def test_balancer_no_worse_on_balanced_job(self, execution_model):
        config = KernelConfig(intensity=32.0)
        job = Job(name="x", config=config, node_count=6)
        eff = np.ones(6)
        budget = 6 * 170.0

        gov = Controller(job, eff, PowerGovernorAgent(budget), model=execution_model)
        gov.run(max_epochs=3, min_epochs=3)
        t_governor = gov.steady_state_sample().epoch_time_s

        bal = Controller(job, eff, PowerBalancerAgent(budget), model=execution_model)
        bal.run(max_epochs=100)
        t_balancer = bal.steady_state_sample().epoch_time_s
        assert t_balancer <= t_governor * 1.01
