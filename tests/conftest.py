"""Shared fixtures for the test suite.

Expensive objects (clusters, prepared grids) are session-scoped; tests
must treat them as read-only.  Anything a test mutates gets a
function-scoped fixture instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.grid import ExperimentConfig, ExperimentGrid
from repro.hardware.cluster import Cluster
from repro.hardware.cpu import QUARTZ_CPU, SocketPowerModel
from repro.hardware.node import NodePowerModel
from repro.sim.engine import ExecutionModel
from repro.workload.catalog import build_catalog
from repro.workload.mixes import MixBuilder


@pytest.fixture(scope="session")
def socket_model() -> SocketPowerModel:
    """The Quartz socket power model."""
    return SocketPowerModel(QUARTZ_CPU)


@pytest.fixture(scope="session")
def node_model() -> NodePowerModel:
    """The Quartz dual-socket node power model."""
    return NodePowerModel()


@pytest.fixture(scope="session")
def execution_model() -> ExecutionModel:
    """The default physics bundle."""
    return ExecutionModel()


@pytest.fixture(scope="session")
def small_cluster() -> Cluster:
    """A 120-node cluster with variation (read-only)."""
    return Cluster(node_count=120, seed=3)


@pytest.fixture(scope="session")
def flat_cluster() -> Cluster:
    """A 60-node cluster without variation (read-only)."""
    return Cluster(node_count=60, variation=None, seed=0)


@pytest.fixture(scope="session")
def catalog():
    """The full 126-configuration catalog."""
    return build_catalog()


@pytest.fixture(scope="session")
def mix_builder() -> MixBuilder:
    """Mix builder at test scale: 10 nodes per job."""
    return MixBuilder(nodes_per_job=10, iterations=20)


@pytest.fixture(scope="session")
def small_grid() -> ExperimentGrid:
    """A test-scale experiment grid (environment built lazily)."""
    return ExperimentGrid(ExperimentConfig.small(nodes_per_job=10, iterations=20))


@pytest.fixture(scope="session")
def small_grid_results(small_grid):
    """The full policy x mix x budget results at test scale."""
    return small_grid.run_all()


@pytest.fixture(scope="session")
def scheduled_wasteful(small_grid):
    """The WastefulPower mix, prepared (scheduled + characterized)."""
    return small_grid.prepare_mix("WastefulPower")


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh seeded RNG per test."""
    return np.random.default_rng(42)
